//! Substitutions: finite mappings from variables to terms.

use crate::atom::Atom;
use crate::term::{Term, Variable};
use std::collections::BTreeMap;
use std::fmt;

/// A substitution is a finite mapping from variables to terms.
///
/// Substitutions are used both as unifiers (variable → term, possibly another
/// variable) and as homomorphisms / assignments (variable → ground term).
///
/// Application is *not* idempotent by construction: [`Substitution::apply_term`]
/// performs a single lookup. Unifiers built by the `ontorew-unify` crate are
/// kept in triangular/resolved form so that single application suffices;
/// [`Substitution::apply_term_deep`] is available when a chain of bindings
/// must be followed.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Substitution {
    map: BTreeMap<Variable, Term>,
}

impl Substitution {
    /// The empty substitution.
    pub fn new() -> Self {
        Substitution {
            map: BTreeMap::new(),
        }
    }

    /// Build a substitution from an iterator of bindings.
    pub fn from_bindings<I: IntoIterator<Item = (Variable, Term)>>(bindings: I) -> Self {
        Substitution {
            map: bindings.into_iter().collect(),
        }
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bind `var` to `term`, replacing any previous binding.
    pub fn bind(&mut self, var: Variable, term: Term) {
        self.map.insert(var, term);
    }

    /// The binding of `var`, if any.
    pub fn get(&self, var: Variable) -> Option<Term> {
        self.map.get(&var).copied()
    }

    /// True if `var` is bound.
    pub fn binds(&self, var: Variable) -> bool {
        self.map.contains_key(&var)
    }

    /// Iterate over the bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Variable, Term)> + '_ {
        self.map.iter().map(|(v, t)| (*v, *t))
    }

    /// The bound variables (the substitution's domain).
    pub fn domain(&self) -> impl Iterator<Item = Variable> + '_ {
        self.map.keys().copied()
    }

    /// Apply the substitution to a term (single lookup).
    pub fn apply_term(&self, term: Term) -> Term {
        match term {
            Term::Variable(v) => self.get(v).unwrap_or(term),
            _ => term,
        }
    }

    /// Apply the substitution to a term, following chains of variable
    /// bindings until a fixpoint (guards against cycles by bounding the chain
    /// length by the substitution size).
    pub fn apply_term_deep(&self, term: Term) -> Term {
        let mut current = term;
        for _ in 0..=self.map.len() {
            match current {
                Term::Variable(v) => match self.get(v) {
                    Some(next) if next != current => current = next,
                    _ => return current,
                },
                _ => return current,
            }
        }
        current
    }

    /// Apply the substitution to every term of an atom.
    pub fn apply_atom(&self, atom: &Atom) -> Atom {
        Atom {
            predicate: atom.predicate,
            terms: atom.terms.iter().map(|t| self.apply_term(*t)).collect(),
        }
    }

    /// Apply the substitution (deeply) to every term of an atom.
    pub fn apply_atom_deep(&self, atom: &Atom) -> Atom {
        Atom {
            predicate: atom.predicate,
            terms: atom
                .terms
                .iter()
                .map(|t| self.apply_term_deep(*t))
                .collect(),
        }
    }

    /// Apply the substitution to a sequence of atoms.
    pub fn apply_atoms(&self, atoms: &[Atom]) -> Vec<Atom> {
        atoms.iter().map(|a| self.apply_atom(a)).collect()
    }

    /// Apply the substitution deeply to a sequence of atoms.
    pub fn apply_atoms_deep(&self, atoms: &[Atom]) -> Vec<Atom> {
        atoms.iter().map(|a| self.apply_atom_deep(a)).collect()
    }

    /// Compose two substitutions: `(self.compose(other)).apply(t)` equals
    /// `other.apply(self.apply(t))` for single-lookup application on terms in
    /// the domain of `self`, and falls back to `other`'s bindings elsewhere.
    pub fn compose(&self, other: &Substitution) -> Substitution {
        let mut out = BTreeMap::new();
        for (v, t) in &self.map {
            out.insert(*v, other.apply_term(*t));
        }
        for (v, t) in &other.map {
            out.entry(*v).or_insert(*t);
        }
        Substitution { map: out }
    }

    /// Restrict the substitution to the given variables.
    pub fn restrict(&self, vars: &[Variable]) -> Substitution {
        Substitution {
            map: self
                .map
                .iter()
                .filter(|(v, _)| vars.contains(v))
                .map(|(v, t)| (*v, *t))
                .collect(),
        }
    }

    /// Resolve every binding deeply, producing an equivalent substitution in
    /// which no bound term is itself a bound variable (unless a cycle exists).
    pub fn resolved(&self) -> Substitution {
        Substitution {
            map: self
                .map
                .iter()
                .map(|(v, t)| (*v, self.apply_term_deep(*t)))
                .collect(),
        }
    }

    /// True if every binding maps to a ground term.
    pub fn is_ground(&self) -> bool {
        self.map.values().all(Term::is_ground)
    }
}

impl fmt::Debug for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, t)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} -> {t}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl FromIterator<(Variable, Term)> for Substitution {
    fn from_iter<I: IntoIterator<Item = (Variable, Term)>>(iter: I) -> Self {
        Substitution::from_bindings(iter)
    }
}

/// Rename every variable of `atoms` to a fresh variable, returning the renamed
/// atoms together with the renaming used.
pub fn freshen_variables(atoms: &[Atom]) -> (Vec<Atom>, Substitution) {
    let mut renaming = Substitution::new();
    for a in atoms {
        for t in &a.terms {
            if let Term::Variable(v) = t {
                if !renaming.binds(*v) {
                    renaming.bind(*v, Term::fresh_variable());
                }
            }
        }
    }
    (renaming.apply_atoms(atoms), renaming)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Variable {
        Variable::new(name)
    }

    #[test]
    fn empty_substitution_is_identity() {
        let s = Substitution::new();
        let a = Atom::new("r", vec![Term::variable("X"), Term::constant("a")]);
        assert_eq!(s.apply_atom(&a), a);
        assert!(s.is_empty());
    }

    #[test]
    fn binding_and_application() {
        let mut s = Substitution::new();
        s.bind(v("X"), Term::constant("alice"));
        let a = Atom::new("r", vec![Term::variable("X"), Term::variable("Y")]);
        let b = s.apply_atom(&a);
        assert_eq!(b.terms[0], Term::constant("alice"));
        assert_eq!(b.terms[1], Term::variable("Y"));
        assert!(s.binds(v("X")));
        assert!(!s.binds(v("Y")));
    }

    #[test]
    fn deep_application_follows_chains() {
        let mut s = Substitution::new();
        s.bind(v("X"), Term::variable("Y"));
        s.bind(v("Y"), Term::constant("c"));
        assert_eq!(s.apply_term(Term::variable("X")), Term::variable("Y"));
        assert_eq!(s.apply_term_deep(Term::variable("X")), Term::constant("c"));
    }

    #[test]
    fn deep_application_terminates_on_cycles() {
        let mut s = Substitution::new();
        s.bind(v("X"), Term::variable("Y"));
        s.bind(v("Y"), Term::variable("X"));
        // Must terminate; result is one of the two variables.
        let r = s.apply_term_deep(Term::variable("X"));
        assert!(r == Term::variable("X") || r == Term::variable("Y"));
    }

    #[test]
    fn compose_applies_left_then_right() {
        let mut s1 = Substitution::new();
        s1.bind(v("X"), Term::variable("Y"));
        let mut s2 = Substitution::new();
        s2.bind(v("Y"), Term::constant("c"));
        let c = s1.compose(&s2);
        assert_eq!(c.apply_term(Term::variable("X")), Term::constant("c"));
        assert_eq!(c.apply_term(Term::variable("Y")), Term::constant("c"));
    }

    #[test]
    fn restrict_keeps_only_requested_variables() {
        let mut s = Substitution::new();
        s.bind(v("X"), Term::constant("a"));
        s.bind(v("Y"), Term::constant("b"));
        let r = s.restrict(&[v("X")]);
        assert!(r.binds(v("X")));
        assert!(!r.binds(v("Y")));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn resolved_removes_internal_chains() {
        let mut s = Substitution::new();
        s.bind(v("X"), Term::variable("Y"));
        s.bind(v("Y"), Term::constant("c"));
        let r = s.resolved();
        assert_eq!(r.get(v("X")), Some(Term::constant("c")));
        assert!(r.is_ground());
    }

    #[test]
    fn freshen_renames_consistently() {
        let atoms = vec![
            Atom::new("r", vec![Term::variable("X"), Term::variable("Y")]),
            Atom::new("s", vec![Term::variable("X")]),
        ];
        let (renamed, renaming) = freshen_variables(&atoms);
        assert_eq!(renaming.len(), 2);
        // Same original variable maps to the same fresh variable.
        assert_eq!(renamed[0].terms[0], renamed[1].terms[0]);
        // Fresh variables are new.
        assert_ne!(renamed[0].terms[0], Term::variable("X"));
    }

    #[test]
    fn from_iterator_and_iteration_round_trip() {
        let s: Substitution = vec![(v("X"), Term::constant("a"))].into_iter().collect();
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(collected, vec![(v("X"), Term::constant("a"))]);
        assert_eq!(s.domain().collect::<Vec<_>>(), vec![v("X")]);
    }

    #[test]
    fn debug_rendering_lists_bindings() {
        let mut s = Substitution::new();
        s.bind(v("X"), Term::constant("a"));
        let rendered = format!("{s:?}");
        assert!(rendered.contains("X"));
        assert!(rendered.contains("a"));
    }
}
