//! Error types of the model crate.

use std::fmt;

/// An error produced while parsing the textual ontology syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub column: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ParseError {
    /// Build a parse error at the given position.
    pub fn new(line: usize, column: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Top-level error type of the model crate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// The textual syntax could not be parsed.
    Parse(ParseError),
    /// A relation name was used with two different arities.
    ArityConflict(crate::signature::ArityConflict),
    /// A structural invariant was violated (e.g. unsafe answer variable).
    Invalid(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Parse(e) => write!(f, "{e}"),
            ModelError::ArityConflict(e) => write!(f, "{e}"),
            ModelError::Invalid(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<ParseError> for ModelError {
    fn from(e: ParseError) -> Self {
        ModelError::Parse(e)
    }
}

impl From<crate::signature::ArityConflict> for ModelError {
    fn from(e: crate::signature::ArityConflict) -> Self {
        ModelError::ArityConflict(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_displays_position() {
        let e = ParseError::new(3, 7, "unexpected token ')'");
        let s = e.to_string();
        assert!(s.contains("line 3"));
        assert!(s.contains("column 7"));
        assert!(s.contains("unexpected token"));
    }

    #[test]
    fn model_error_wraps_sources() {
        let e: ModelError = ParseError::new(1, 1, "boom").into();
        assert!(matches!(e, ModelError::Parse(_)));
        let e = ModelError::Invalid("bad".into());
        assert!(e.to_string().contains("bad"));
    }
}
