//! Instances (databases): finite sets of ground atoms over a signature.
//!
//! An [`Instance`] stores atoms whose terms are constants or labelled nulls
//! (no variables). It is the representation used by the chase, so its layout
//! is optimised for the chase's two hot operations:
//!
//! * **matching** a partially ground atom against a relation — served by
//!   eager per-column hash indexes over interned term ids
//!   ([`Instance::candidates`] picks the most selective bound column per
//!   segment and probes its posting list instead of scanning the relation);
//! * **inserting** a fact with duplicate detection — served by dense
//!   `Vec`-of-rows storage plus a hash set, both O(1) amortised.
//!
//! Since PR 5 every relation is **segmented and copy-on-write**: rows live
//! in a stack of immutable, `Arc`-shared frozen segments plus one small
//! mutable tail. [`IndexedRelation::freeze`] publishes the tail as a new
//! frozen segment (merging trailing segments LSM-style so the stack stays
//! logarithmic), after which `clone()` shares every frozen segment by
//! reference — cloning a frozen relation is O(#segments), not O(#rows).
//! That is what makes the serving layer's epoch publication and the
//! planner's incremental materializations O(batch) instead of O(store).
//!
//! The `ontorew-storage` crate builds its relational store on the same
//! [`IndexedRelation`] machinery and converts to/from this type.

use crate::atom::{Atom, Predicate};
use crate::signature::Signature;
use crate::term::Term;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::Arc;

/// One segment of a relation: a dense run of rows with eager per-column hash
/// indexes and tuple-interning duplicate detection.
///
/// Rows live in a dense `Vec` in insertion order (cache-friendly scans), and
/// every column keeps a posting list from term to row ids that is maintained
/// on insert. Because the indexes are always current, lookups need only
/// shared (`&self`) access — which is what lets the homomorphism search and
/// the parallel trigger search probe them without locking.
///
/// Duplicate detection interns whole tuples as `u64` ids: each stored row is
/// represented in the dedup structure by its 64-bit content hash mapping to
/// its interned row id — 12 bytes per row instead of a per-row `Vec<u32>`
/// bucket allocation (let alone a `HashSet<Vec<Term>>`, which would clone
/// every tuple). Rows whose hash collides with an earlier, different row
/// (vanishingly rare for 64-bit hashes) go to a small overflow list that is
/// scanned linearly; candidates are always confirmed against `rows` by
/// equality, so collisions cost time, never correctness.
#[derive(Clone, Debug, Default)]
struct Segment {
    rows: Vec<Vec<Term>>,
    /// `dedup[hash]` = interned id of the first row hashing to `hash`;
    /// candidates are confirmed against `rows` by equality.
    dedup: HashMap<u64, u32>,
    /// Rows whose hash collided with a different, earlier row: `(hash, id)`
    /// pairs, scanned linearly (almost always empty).
    dedup_overflow: Vec<(u64, u32)>,
    /// `indexes[col][term]` = ids of the rows whose column `col` is `term`.
    indexes: Vec<HashMap<Term, Vec<u32>>>,
}

/// The dedup hash of a row.
fn row_hash(row: &[Term]) -> u64 {
    let mut hasher = DefaultHasher::new();
    row.hash(&mut hasher);
    hasher.finish()
}

impl Segment {
    fn with_arity(arity: usize) -> Self {
        Segment {
            rows: Vec::new(),
            dedup: HashMap::new(),
            dedup_overflow: Vec::new(),
            indexes: vec![HashMap::new(); arity],
        }
    }

    fn len(&self) -> usize {
        self.rows.len()
    }

    fn arity(&self) -> usize {
        self.indexes.len()
    }

    /// Insert a row known (by the caller) not to be present in any *other*
    /// segment; returns `true` if it was new *to this segment*.
    fn insert_with_hash(&mut self, row: Vec<Term>, hash: u64) -> bool {
        debug_assert_eq!(row.len(), self.arity(), "row arity mismatch");
        let row_id = self.rows.len() as u32;
        match self.dedup.entry(hash) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(row_id);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                // A row with this hash exists: either it is this row (a
                // duplicate insert) or we hit a 64-bit collision and the new
                // row is interned through the overflow list.
                if self.rows[*e.get() as usize] == row || self.overflow_contains(hash, &row) {
                    return false;
                }
                self.dedup_overflow.push((hash, row_id));
            }
        }
        for (col, term) in row.iter().enumerate() {
            self.indexes[col].entry(*term).or_default().push(row_id);
        }
        self.rows.push(row);
        true
    }

    fn contains_hashed(&self, row: &[Term], hash: u64) -> bool {
        match self.dedup.get(&hash) {
            Some(&id) => self.rows[id as usize] == row || self.overflow_contains(hash, row),
            None => false,
        }
    }

    /// True if some overflow row (same hash, different first-interned row)
    /// equals `row`.
    fn overflow_contains(&self, hash: u64, row: &[Term]) -> bool {
        self.dedup_overflow
            .iter()
            .any(|&(h, id)| h == hash && self.rows[id as usize] == row)
    }

    /// Number of rows of this segment whose column `col` equals `value`.
    fn postings_len(&self, col: usize, value: &Term) -> usize {
        self.indexes[col].get(value).map(Vec::len).unwrap_or(0)
    }

    /// The probe for `pattern` against this segment: the posting list of the
    /// most selective ground column, a full scan when no column is ground,
    /// or nothing when some ground column has an empty posting list.
    fn probe(&self, pattern: &[Term]) -> SegmentProbe<'_> {
        debug_assert_eq!(pattern.len(), self.arity(), "pattern arity mismatch");
        let mut best: Option<&[u32]> = None;
        for (col, term) in pattern.iter().enumerate() {
            if term.is_ground() {
                let ids = self.indexes[col]
                    .get(term)
                    .map(|ids| ids.as_slice())
                    .unwrap_or(&[]);
                if ids.is_empty() {
                    return SegmentProbe::Empty;
                }
                if best.is_none_or(|b| ids.len() < b.len()) {
                    best = Some(ids);
                }
            }
        }
        match best {
            Some(ids) => SegmentProbe::Selected {
                rows: &self.rows,
                ids: ids.iter(),
            },
            None => SegmentProbe::All(self.rows.iter()),
        }
    }

    /// Merge two segments into one, oldest first (preserving global
    /// insertion order). The inputs hold disjoint row sets (the relation
    /// deduplicates globally on insert), so every row lands in the result.
    fn merged(older: &Segment, newer: Segment) -> Segment {
        let mut out = Segment::with_arity(older.arity());
        out.rows.reserve(older.len() + newer.len());
        for row in older.rows.iter().cloned() {
            let hash = row_hash(&row);
            out.insert_with_hash(row, hash);
        }
        for row in newer.rows {
            let hash = row_hash(&row);
            out.insert_with_hash(row, hash);
        }
        out
    }
}

/// The stored rows of one predicate: a stack of immutable, `Arc`-shared
/// frozen segments plus one mutable tail segment.
///
/// * `insert`/`contains` consult every segment's tuple-interning dedup (the
///   stack is kept logarithmic by the freeze-time merge policy below);
///   inserts always land in the tail.
/// * `clone` shares the frozen segments by reference and deep-copies only
///   the tail — O(#segments) for a frozen relation.
/// * [`IndexedRelation::freeze`] publishes the tail as a frozen segment,
///   first folding in trailing frozen segments that are no larger than the
///   accumulated batch (the classic size-tiered LSM merge), so a row is
///   re-merged O(log n) times over its life and the segment count stays
///   O(log n).
#[derive(Clone, Debug, Default)]
pub struct IndexedRelation {
    frozen: Vec<Arc<Segment>>,
    tail: Segment,
    len: usize,
}

impl IndexedRelation {
    /// An empty relation for predicates of the given arity.
    pub fn with_arity(arity: usize) -> Self {
        IndexedRelation {
            frozen: Vec::new(),
            tail: Segment::with_arity(arity),
            len: 0,
        }
    }

    /// Number of (distinct) rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The arity the relation was created with.
    pub fn arity(&self) -> usize {
        self.tail.arity()
    }

    /// Number of segments (frozen plus a non-empty tail). Kept logarithmic
    /// in the row count by the freeze-time merge policy.
    pub fn segment_count(&self) -> usize {
        self.frozen.len() + usize::from(self.tail.len() > 0)
    }

    /// Insert a row; returns `true` if it was new. All column indexes are
    /// updated eagerly; the row lands in the mutable tail segment.
    ///
    /// # Panics
    /// Panics (in debug builds) if the row arity does not match.
    pub fn insert(&mut self, row: Vec<Term>) -> bool {
        let hash = row_hash(&row);
        self.insert_with_hash(row, hash)
    }

    /// [`IndexedRelation::insert`] with the dedup hash supplied by the
    /// caller; separated out so tests can force hash collisions and exercise
    /// the overflow path.
    fn insert_with_hash(&mut self, row: Vec<Term>, hash: u64) -> bool {
        if self
            .frozen
            .iter()
            .any(|seg| seg.contains_hashed(&row, hash))
        {
            return false;
        }
        let added = self.tail.insert_with_hash(row, hash);
        if added {
            self.len += 1;
        }
        added
    }

    /// True if the relation contains the row.
    pub fn contains(&self, row: &[Term]) -> bool {
        let hash = row_hash(row);
        self.tail.contains_hashed(row, hash)
            || self.frozen.iter().any(|seg| seg.contains_hashed(row, hash))
    }

    /// Remove every row for which `doomed` returns true; returns how many
    /// rows were removed. Segments are immutable, so a removal rebuilds the
    /// whole relation from the retained rows (O(rows)) — callers batch
    /// removals so each affected relation is rebuilt once per retraction
    /// epoch, and untouched relations pay nothing.
    pub fn remove_where(&mut self, mut doomed: impl FnMut(&[Term]) -> bool) -> usize {
        if self.len == 0 {
            return 0;
        }
        let mut rebuilt = IndexedRelation::with_arity(self.arity());
        for row in self.rows() {
            if !doomed(row) {
                rebuilt.insert(row.clone());
            }
        }
        let removed = self.len - rebuilt.len();
        if removed > 0 {
            *self = rebuilt;
        }
        removed
    }

    /// Remove one row; returns `true` if it was present. A cheap membership
    /// probe guards the O(rows) rebuild, so removing an absent row costs one
    /// hash lookup.
    pub fn remove_row(&mut self, row: &[Term]) -> bool {
        if !self.contains(row) {
            return false;
        }
        self.remove_where(|r| r == row) == 1
    }

    /// Publish the mutable tail as a frozen, shareable segment, after which
    /// `clone()` shares all rows by reference (until the next insert starts
    /// a new tail).
    ///
    /// To keep the segment stack logarithmic, the new segment first absorbs
    /// trailing frozen segments that are no larger than it (size-tiered
    /// merge): frozen segments grow geometrically from oldest to newest, so
    /// each row is re-merged O(log n) times in total. Clones taken before a
    /// freeze keep their own view — merges build new segments and never
    /// mutate shared ones.
    pub fn freeze(&mut self) {
        if self.tail.len() == 0 {
            return;
        }
        let arity = self.arity();
        let mut batch = std::mem::replace(&mut self.tail, Segment::with_arity(arity));
        while let Some(last) = self.frozen.last() {
            if last.len() <= batch.len() {
                let last = self.frozen.pop().expect("just peeked");
                batch = Segment::merged(&last, batch);
            } else {
                break;
            }
        }
        self.frozen.push(Arc::new(batch));
    }

    /// True if `self` and `other` share all frozen segments by reference
    /// (the copy-on-write fast path; used by tests and debug assertions).
    pub fn shares_segments_with(&self, other: &IndexedRelation) -> bool {
        self.frozen.len() == other.frozen.len()
            && self
                .frozen
                .iter()
                .zip(other.frozen.iter())
                .all(|(a, b)| Arc::ptr_eq(a, b))
    }

    /// All rows, oldest segment first, in insertion order within a segment.
    /// (Global insertion order is preserved: freezes and merges never
    /// reorder rows across segments.)
    pub fn rows(&self) -> impl Iterator<Item = &Vec<Term>> {
        self.frozen
            .iter()
            .flat_map(|seg| seg.rows.iter())
            .chain(self.tail.rows.iter())
    }

    /// Number of rows whose column `col` equals `value`, summed over all
    /// segments (the per-segment posting lists are internal).
    pub fn postings_len(&self, col: usize, value: &Term) -> usize {
        self.frozen
            .iter()
            .map(|seg| seg.postings_len(col, value))
            .sum::<usize>()
            + self.tail.postings_len(col, value)
    }

    /// The rows that can match `pattern`, a tuple of ground terms and
    /// variables: per segment, probes the posting list of the most selective
    /// ground column, falling back to a segment scan when no column is
    /// ground.
    ///
    /// Every returned row agrees with `pattern` on the chosen column of its
    /// segment; the caller still has to check the remaining positions (and
    /// repeated variables). The returned iterator probes later segments
    /// lazily from the borrowed pattern — no allocation per call, however
    /// many segments back the relation (this is the per-atom hot path of
    /// every join and homomorphism search).
    pub fn candidates<'a>(&'a self, pattern: &'a [Term]) -> Candidates<'a> {
        let indexed = pattern.iter().any(Term::is_ground);
        match self.frozen.split_first() {
            None => Candidates {
                current: self.tail.probe(pattern),
                remaining: &[],
                tail: None,
                pattern,
                scan: false,
                indexed,
            },
            Some((first, rest)) => Candidates {
                current: first.probe(pattern),
                remaining: rest,
                tail: Some(&self.tail),
                pattern,
                scan: false,
                indexed,
            },
        }
    }

    /// Exact number of rows matching `pattern` (ground positions equal,
    /// repeated variables agree). Unlike [`IndexedRelation::candidates`],
    /// which over-approximates per segment by a single column, this filters
    /// every candidate — it is the "cheap exact length" primitive the
    /// variable-at-a-time join planner sizes its supports with.
    pub fn match_count(&self, pattern: &[Term]) -> usize {
        if pattern.iter().all(Term::is_ground) {
            return usize::from(self.contains(pattern));
        }
        self.candidates(pattern)
            .filter(|row| pattern_matches(pattern, row))
            .count()
    }

    /// True if at least one row matches `pattern` — the early-exit existence
    /// probe the generic join uses to semijoin-filter candidate values.
    pub fn contains_match(&self, pattern: &[Term]) -> bool {
        if pattern.iter().all(Term::is_ground) {
            return self.contains(pattern);
        }
        self.candidates(pattern)
            .any(|row| pattern_matches(pattern, row))
    }

    /// The distinct values of column `col` among the rows matching
    /// `pattern`, sorted ascending — a per-atom candidate posting list in
    /// the form [`intersect_sorted`] consumes.
    ///
    /// When `pattern` is unconstrained (no ground column, no repeated
    /// variable), the values are read straight off the per-segment column
    /// indexes — O(distinct values), never touching the rows.
    pub fn matching_values(&self, pattern: &[Term], col: usize) -> Vec<Term> {
        debug_assert!(col < self.arity());
        let mut values: Vec<Term> = if unconstrained_pattern(pattern) {
            self.frozen
                .iter()
                .map(|seg| &seg.indexes[col])
                .chain(std::iter::once(&self.tail.indexes[col]))
                .flat_map(|index| index.keys().copied())
                .collect()
        } else {
            self.candidates(pattern)
                .filter(|row| pattern_matches(pattern, row))
                .map(|row| row[col])
                .collect()
        };
        values.sort_unstable();
        values.dedup();
        values
    }

    /// A cheap upper bound on [`IndexedRelation::match_count`]: the smallest
    /// posting list among the pattern's ground columns (summed over
    /// segments), or the relation size when no column is ground. O(arity ×
    /// segments) hash probes, no row access.
    pub fn match_bound(&self, pattern: &[Term]) -> usize {
        let mut best = self.len;
        for (col, term) in pattern.iter().enumerate() {
            if term.is_ground() {
                best = best.min(self.postings_len(col, term));
                if best == 0 {
                    return 0;
                }
            }
        }
        best
    }

    /// A full scan of the relation presented as a [`Candidates`] iterator
    /// (the index-ablation path of the query evaluator).
    pub fn scan_candidates(&self) -> Candidates<'_> {
        match self.frozen.split_first() {
            None => Candidates {
                current: SegmentProbe::All(self.tail.rows.iter()),
                remaining: &[],
                tail: None,
                pattern: &[],
                scan: true,
                indexed: false,
            },
            Some((first, rest)) => Candidates {
                current: SegmentProbe::All(first.rows.iter()),
                remaining: rest,
                tail: Some(&self.tail),
                pattern: &[],
                scan: true,
                indexed: false,
            },
        }
    }
}

/// True if `row` matches `pattern`: ground positions are equal and repeated
/// variables take equal values. This is the full per-row filter that
/// [`IndexedRelation::candidates`] leaves to its caller, as a standalone
/// predicate (no substitution allocated).
pub fn pattern_matches(pattern: &[Term], row: &[Term]) -> bool {
    debug_assert_eq!(pattern.len(), row.len());
    for (i, term) in pattern.iter().enumerate() {
        if term.is_ground() {
            if *term != row[i] {
                return false;
            }
        } else if let Some(j) = pattern[..i].iter().position(|p| p == term) {
            if row[i] != row[j] {
                return false;
            }
        }
    }
    true
}

/// True if `pattern` constrains nothing: no ground column and no repeated
/// variable — every row of the relation matches.
fn unconstrained_pattern(pattern: &[Term]) -> bool {
    pattern
        .iter()
        .enumerate()
        .all(|(i, term)| !term.is_ground() && !pattern[..i].contains(term))
}

/// Intersect two ascending-sorted, deduplicated term slices into a new
/// sorted vector — the merge step of the variable-at-a-time generic join
/// (per-variable intersection of per-atom candidate value lists).
pub fn intersect_sorted(a: &[Term], b: &[Term]) -> Vec<Term> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// The probe of one segment: how [`Candidates`] walks it.
enum SegmentProbe<'a> {
    /// No row of the segment can match (an empty posting list).
    Empty,
    /// Segment scan: no column of the pattern was ground.
    All(std::slice::Iter<'a, Vec<Term>>),
    /// Posting list of the segment's most selective ground column.
    Selected {
        /// The segment's dense row storage.
        rows: &'a [Vec<Term>],
        /// Ids of the candidate rows within `rows`.
        ids: std::slice::Iter<'a, u32>,
    },
}

impl<'a> SegmentProbe<'a> {
    fn next(&mut self) -> Option<&'a Vec<Term>> {
        match self {
            SegmentProbe::Empty => None,
            SegmentProbe::All(rows) => rows.next(),
            SegmentProbe::Selected { rows, ids } => ids.next().map(|&id| &rows[id as usize]),
        }
    }

    fn remaining(&self) -> usize {
        match self {
            SegmentProbe::Empty => 0,
            SegmentProbe::All(rows) => rows.len(),
            SegmentProbe::Selected { ids, .. } => ids.len(),
        }
    }
}

/// Iterator over the candidate rows of an index probe, walking the
/// per-segment probes of a relation (see [`IndexedRelation::candidates`] and
/// [`Instance::candidates`]). Segments after the first are probed lazily
/// from the borrowed pattern when the iterator reaches them, so
/// constructing one never allocates.
pub struct Candidates<'a> {
    current: SegmentProbe<'a>,
    /// Frozen segments not yet probed.
    remaining: &'a [Arc<Segment>],
    /// The tail segment, probed last (`None` once consumed or absent).
    tail: Option<&'a Segment>,
    /// The probe pattern (unused in scan mode).
    pattern: &'a [Term],
    /// True for a full scan: later segments are scanned, not probed.
    scan: bool,
    indexed: bool,
}

impl<'a> Candidates<'a> {
    /// A probe with no candidates (unknown predicate).
    pub fn empty() -> Self {
        Candidates {
            current: SegmentProbe::Empty,
            remaining: &[],
            tail: None,
            pattern: &[],
            scan: false,
            indexed: false,
        }
    }

    /// True if the probe pattern had a ground column, i.e. segments are
    /// served from their posting lists rather than scanned; what the
    /// evaluator's instrumentation counts.
    pub fn used_index(&self) -> bool {
        self.indexed
    }

    fn probe_segment(&self, segment: &'a Segment) -> SegmentProbe<'a> {
        if self.scan {
            SegmentProbe::All(segment.rows.iter())
        } else {
            segment.probe(self.pattern)
        }
    }
}

impl<'a> Iterator for Candidates<'a> {
    type Item = &'a Vec<Term>;

    fn next(&mut self) -> Option<&'a Vec<Term>> {
        loop {
            if let Some(row) = self.current.next() {
                return Some(row);
            }
            if let Some((next, rest)) = self.remaining.split_first() {
                self.current = self.probe_segment(next);
                self.remaining = rest;
                continue;
            }
            match self.tail.take() {
                Some(tail) => self.current = self.probe_segment(tail),
                None => return None,
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // `Selected` probes over-count nothing (posting lists are exact for
        // their column) but the caller still filters rows, so only the upper
        // bound is meaningful — and it is only known once every segment has
        // been probed.
        if self.remaining.is_empty() && self.tail.is_none() {
            (0, Some(self.current.remaining()))
        } else {
            (0, None)
        }
    }
}

/// A finite set of ground atoms, grouped by predicate and indexed per column.
#[derive(Clone, Default, Serialize, Deserialize)]
pub struct Instance {
    relations: BTreeMap<Predicate, IndexedRelation>,
    size: usize,
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Self {
        Instance::default()
    }

    /// Build an instance from an iterator of ground atoms.
    ///
    /// # Panics
    /// Panics if some atom contains a variable.
    pub fn from_atoms<I: IntoIterator<Item = Atom>>(atoms: I) -> Self {
        let mut inst = Instance::new();
        for a in atoms {
            inst.insert(a);
        }
        inst
    }

    /// Insert a ground atom; returns `true` if it was not already present.
    ///
    /// # Panics
    /// Panics if the atom contains a variable.
    pub fn insert(&mut self, atom: Atom) -> bool {
        assert!(
            atom.is_ground(),
            "cannot insert non-ground atom {atom} into an instance"
        );
        let added = self
            .relations
            .entry(atom.predicate)
            .or_insert_with(|| IndexedRelation::with_arity(atom.predicate.arity))
            .insert(atom.terms);
        if added {
            self.size += 1;
        }
        added
    }

    /// Insert a fact given by predicate name and constant names.
    pub fn insert_fact(&mut self, predicate: &str, constants: &[&str]) -> bool {
        self.insert(Atom::fact(predicate, constants))
    }

    /// Freeze every relation (see [`IndexedRelation::freeze`]): publish all
    /// mutable tails as `Arc`-shared segments, so the next `clone()` of this
    /// instance is O(#relations + #segments) instead of O(#facts).
    pub fn freeze(&mut self) {
        for rel in self.relations.values_mut() {
            rel.freeze();
        }
    }

    /// Remove a batch of ground atoms; returns how many were present (and
    /// are now gone). Atoms are grouped by predicate so each affected
    /// relation is rebuilt exactly once (segments are immutable; see
    /// [`IndexedRelation::remove_where`]); relations not named in the batch
    /// are untouched and keep sharing their segments.
    pub fn remove_atoms<'a, I: IntoIterator<Item = &'a Atom>>(&mut self, atoms: I) -> usize {
        let mut by_predicate: BTreeMap<Predicate, std::collections::HashSet<&'a [Term]>> =
            BTreeMap::new();
        for atom in atoms {
            by_predicate
                .entry(atom.predicate)
                .or_default()
                .insert(&atom.terms);
        }
        let mut removed = 0usize;
        for (predicate, doomed) in by_predicate {
            if let Some(rel) = self.relations.get_mut(&predicate) {
                let dropped = rel.remove_where(|row| doomed.contains(row));
                removed += dropped;
                self.size -= dropped;
            }
        }
        removed
    }

    /// Remove one ground atom; returns `true` if it was present.
    pub fn remove(&mut self, atom: &Atom) -> bool {
        match self.relations.get_mut(&atom.predicate) {
            Some(rel) => {
                let removed = rel.remove_row(&atom.terms);
                if removed {
                    self.size -= 1;
                }
                removed
            }
            None => false,
        }
    }

    /// True if the instance contains the given ground atom.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.contains_tuple(atom.predicate, &atom.terms)
    }

    /// True if the instance contains the tuple under `predicate`.
    pub fn contains_tuple(&self, predicate: Predicate, tuple: &[Term]) -> bool {
        self.relations
            .get(&predicate)
            .map(|r| r.contains(tuple))
            .unwrap_or(false)
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.size
    }

    /// True if the instance has no facts.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Number of facts for the given predicate.
    pub fn relation_size(&self, predicate: Predicate) -> usize {
        self.relations
            .get(&predicate)
            .map(IndexedRelation::len)
            .unwrap_or(0)
    }

    /// The stored relation of `predicate`, if it has any rows. Grants direct
    /// access to the per-column indexes.
    pub fn relation(&self, predicate: Predicate) -> Option<&IndexedRelation> {
        self.relations.get(&predicate).filter(|r| !r.is_empty())
    }

    /// The predicates that have at least one fact.
    pub fn predicates(&self) -> impl Iterator<Item = Predicate> + '_ {
        self.relations
            .iter()
            .filter(|(_, rel)| !rel.is_empty())
            .map(|(p, _)| *p)
    }

    /// The signature induced by the instance.
    pub fn signature(&self) -> Signature {
        self.predicates().collect()
    }

    /// Iterate over the tuples of a predicate (insertion order).
    pub fn tuples(&self, predicate: Predicate) -> impl Iterator<Item = &Vec<Term>> + '_ {
        self.relations
            .get(&predicate)
            .into_iter()
            .flat_map(|rel| rel.rows())
    }

    /// The tuples of `atom.predicate` that can match `atom` (whose terms may
    /// be variables): probes the most selective per-column index of each
    /// segment, falling back to a segment scan only when no term is ground.
    /// The iterator borrows `atom` (later segments are probed lazily).
    pub fn candidates<'a>(&'a self, atom: &'a Atom) -> Candidates<'a> {
        match self.relations.get(&atom.predicate) {
            Some(rel) => rel.candidates(&atom.terms),
            None => Candidates::empty(),
        }
    }

    /// Iterate over every fact as an [`Atom`].
    pub fn atoms(&self) -> impl Iterator<Item = Atom> + '_ {
        self.relations.iter().flat_map(|(p, rel)| {
            rel.rows().map(move |t| Atom {
                predicate: *p,
                terms: t.clone(),
            })
        })
    }

    /// True if `other` is a subset of `self`.
    pub fn contains_instance(&self, other: &Instance) -> bool {
        other.atoms().all(|a| self.contains(&a))
    }

    /// Add every fact of `other` into `self`.
    pub fn extend_from(&mut self, other: &Instance) {
        for (p, rel) in &other.relations {
            let target = self
                .relations
                .entry(*p)
                .or_insert_with(|| IndexedRelation::with_arity(p.arity));
            for row in rel.rows() {
                if target.insert(row.clone()) {
                    self.size += 1;
                }
            }
        }
    }

    /// The set of constants appearing in the instance (the active domain,
    /// excluding labelled nulls).
    pub fn constants(&self) -> BTreeSet<crate::term::Constant> {
        self.relations
            .values()
            .flat_map(|rel| rel.rows())
            .flatten()
            .filter_map(Term::as_constant)
            .collect()
    }

    /// The set of labelled nulls appearing in the instance.
    pub fn nulls(&self) -> BTreeSet<crate::term::Null> {
        self.relations
            .values()
            .flat_map(|rel| rel.rows())
            .flatten()
            .filter_map(Term::as_null)
            .collect()
    }

    /// True if the instance contains no labelled nulls (i.e. it is a plain
    /// database of constants).
    pub fn is_null_free(&self) -> bool {
        self.nulls().is_empty()
    }
}

impl PartialEq for Instance {
    /// Set equality: same facts, regardless of insertion order.
    fn eq(&self, other: &Self) -> bool {
        if self.size != other.size {
            return false;
        }
        self.relations.iter().all(|(p, rel)| {
            rel.is_empty()
                || other
                    .relations
                    .get(p)
                    .is_some_and(|o| rel.len() == o.len() && rel.rows().all(|row| o.contains(row)))
        })
    }
}

impl Eq for Instance {}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Instance ({} facts):", self.size)?;
        for a in self.atoms() {
            writeln!(f, "  {a}")?;
        }
        Ok(())
    }
}

impl FromIterator<Atom> for Instance {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        Instance::from_atoms(iter)
    }
}

impl Extend<Atom> for Instance {
    fn extend<I: IntoIterator<Item = Atom>>(&mut self, iter: I) {
        for a in iter {
            self.insert(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Null;

    #[test]
    fn insert_and_contains() {
        let mut db = Instance::new();
        assert!(db.insert_fact("teaches", &["alice", "db101"]));
        assert!(!db.insert_fact("teaches", &["alice", "db101"]));
        assert!(db.contains(&Atom::fact("teaches", &["alice", "db101"])));
        assert!(!db.contains(&Atom::fact("teaches", &["bob", "db101"])));
        assert_eq!(db.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-ground atom")]
    fn variables_are_rejected() {
        let mut db = Instance::new();
        db.insert(Atom::new("r", vec![Term::variable("X")]));
    }

    #[test]
    fn relation_size_and_predicates() {
        let mut db = Instance::new();
        db.insert_fact("r", &["a", "b"]);
        db.insert_fact("r", &["b", "c"]);
        db.insert_fact("s", &["a"]);
        assert_eq!(db.relation_size(Predicate::new("r", 2)), 2);
        assert_eq!(db.relation_size(Predicate::new("s", 1)), 1);
        assert_eq!(db.relation_size(Predicate::new("t", 1)), 0);
        assert_eq!(db.predicates().count(), 2);
        assert_eq!(db.signature().len(), 2);
    }

    #[test]
    fn match_primitives_agree_with_scans() {
        let mut db = Instance::new();
        for (x, y) in [("a", "b"), ("a", "c"), ("b", "b"), ("c", "a"), ("c", "c")] {
            db.insert_fact("e", &[x, y]);
        }
        // Freeze so both frozen segments and the tail are exercised.
        db.freeze();
        db.insert_fact("e", &["d", "a"]);
        let rel = db.relation(Predicate::new("e", 2)).unwrap();

        let var = Term::variable("X");
        let other = Term::variable("Y");
        let a = Term::constant("a");
        let b = Term::constant("b");

        // match_count: ground, half-ground, repeated-variable patterns.
        assert_eq!(rel.match_count(&[a, b]), 1);
        assert_eq!(rel.match_count(&[a, var]), 2);
        assert_eq!(rel.match_count(&[var, other]), 6);
        assert_eq!(rel.match_count(&[var, var]), 2); // (b,b) and (c,c)
        assert_eq!(rel.match_count(&[b, a]), 0);

        // contains_match mirrors match_count > 0.
        assert!(rel.contains_match(&[a, var]));
        assert!(rel.contains_match(&[var, var]));
        assert!(!rel.contains_match(&[b, a]));

        // matching_values: sorted, deduplicated column projections.
        let firsts = rel.matching_values(&[var, other], 0);
        assert_eq!(firsts.len(), 4);
        assert!(firsts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(rel.matching_values(&[a, var], 1), {
            let mut v = vec![Term::constant("b"), Term::constant("c")];
            v.sort_unstable();
            v
        });
        assert_eq!(rel.matching_values(&[var, var], 0).len(), 2);

        // match_bound is a sound upper bound on match_count.
        for pattern in [
            vec![a, b],
            vec![a, var],
            vec![var, other],
            vec![var, var],
            vec![b, a],
        ] {
            assert!(rel.match_bound(&pattern) >= rel.match_count(&pattern));
        }
        // An absent ground value zeroes the bound immediately.
        assert_eq!(rel.match_bound(&[Term::constant("zz"), a]), 0);
    }

    #[test]
    fn pattern_matching_and_intersection_helpers() {
        let a = Term::constant("a");
        let b = Term::constant("b");
        let c = Term::constant("c");
        let x = Term::variable("X");
        let y = Term::variable("Y");

        assert!(pattern_matches(&[a, x], &[a, b]));
        assert!(!pattern_matches(&[a, x], &[b, b]));
        assert!(pattern_matches(&[x, x], &[c, c]));
        assert!(!pattern_matches(&[x, x], &[a, c]));
        assert!(pattern_matches(&[x, y], &[a, c]));

        assert_eq!(intersect_sorted(&[a, b, c], &[b, c]), vec![b, c]);
        assert_eq!(intersect_sorted(&[a], &[b]), Vec::<Term>::new());
        assert_eq!(intersect_sorted(&[], &[a]), Vec::<Term>::new());
    }

    #[test]
    fn atoms_round_trip() {
        let mut db = Instance::new();
        db.insert_fact("r", &["a", "b"]);
        db.insert_fact("s", &["c"]);
        let copy: Instance = db.atoms().collect();
        assert_eq!(db, copy);
    }

    #[test]
    fn containment_and_extension() {
        let mut small = Instance::new();
        small.insert_fact("r", &["a", "b"]);
        let mut big = small.clone();
        big.insert_fact("s", &["c"]);
        assert!(big.contains_instance(&small));
        assert!(!small.contains_instance(&big));
        let mut grown = small.clone();
        grown.extend_from(&big);
        assert_eq!(grown, big);
        assert_eq!(grown.len(), 2);
    }

    #[test]
    fn constants_and_nulls() {
        let mut db = Instance::new();
        db.insert_fact("r", &["a", "b"]);
        db.insert(Atom {
            predicate: Predicate::new("r", 2),
            terms: vec![Term::constant("a"), Term::Null(Null(42))],
        });
        assert_eq!(db.constants().len(), 2);
        assert_eq!(db.nulls().len(), 1);
        assert!(!db.is_null_free());
    }

    #[test]
    fn extend_counts_only_new_facts() {
        let mut a = Instance::new();
        a.insert_fact("r", &["x", "y"]);
        let mut b = Instance::new();
        b.insert_fact("r", &["x", "y"]);
        b.insert_fact("r", &["y", "z"]);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn remove_rebuilds_the_relation_consistently() {
        let mut db = Instance::new();
        db.insert_fact("r", &["a", "b"]);
        db.insert_fact("r", &["b", "c"]);
        db.insert_fact("s", &["a"]);
        db.freeze();
        assert!(db.remove(&Atom::fact("r", &["a", "b"])));
        assert!(!db.remove(&Atom::fact("r", &["a", "b"])));
        assert_eq!(db.len(), 2);
        assert!(!db.contains(&Atom::fact("r", &["a", "b"])));
        assert!(db.contains(&Atom::fact("r", &["b", "c"])));
        // The rebuilt relation still answers index probes.
        let probe = Atom::new("r", vec![Term::variable("X"), Term::constant("c")]);
        assert_eq!(db.candidates(&probe).count(), 1);
        // Reinsertion after removal works (dedup state was rebuilt).
        assert!(db.insert_fact("r", &["a", "b"]));
        assert_eq!(db.len(), 3);
    }

    #[test]
    fn remove_atoms_batches_per_relation() {
        let mut db = Instance::new();
        for i in 0..10 {
            db.insert_fact("r", &[&format!("x{i}"), "y"]);
        }
        db.insert_fact("s", &["z"]);
        let batch = [
            Atom::fact("r", &["x1", "y"]),
            Atom::fact("r", &["x2", "y"]),
            Atom::fact("r", &["absent", "y"]),
            Atom::fact("t", &["nope"]),
        ];
        assert_eq!(db.remove_atoms(batch.iter()), 2);
        assert_eq!(db.len(), 9);
        assert_eq!(db.relation_size(Predicate::new("r", 2)), 8);
        assert_eq!(db.relation_size(Predicate::new("s", 1)), 1);
    }

    #[test]
    fn emptied_relations_disappear_from_accessors() {
        let mut db = Instance::new();
        db.insert_fact("r", &["a"]);
        db.insert_fact("s", &["b"]);
        assert!(db.remove(&Atom::fact("r", &["a"])));
        assert_eq!(db.predicates().count(), 1);
        assert!(db.relation(Predicate::new("r", 1)).is_none());
        let mut copy = Instance::new();
        copy.insert_fact("s", &["b"]);
        assert_eq!(db, copy);
    }

    #[test]
    fn tuples_iteration() {
        let mut db = Instance::new();
        db.insert_fact("r", &["a", "b"]);
        db.insert_fact("r", &["c", "d"]);
        let p = Predicate::new("r", 2);
        assert_eq!(db.tuples(p).count(), 2);
        assert_eq!(db.tuples(Predicate::new("zzz", 2)).count(), 0);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let mut a = Instance::new();
        a.insert_fact("r", &["a", "b"]);
        a.insert_fact("r", &["c", "d"]);
        let mut b = Instance::new();
        b.insert_fact("r", &["c", "d"]);
        b.insert_fact("r", &["a", "b"]);
        assert_eq!(a, b);
        b.insert_fact("s", &["x"]);
        assert_ne!(a, b);
    }

    #[test]
    fn candidates_probe_the_most_selective_column() {
        let mut db = Instance::new();
        for i in 0..10 {
            db.insert_fact("edge", &["hub", &format!("n{i}")]);
        }
        db.insert_fact("edge", &["n3", "hub"]);
        // Pattern edge("hub", X): the index on column 0 serves 10 candidates.
        let probe = Atom::new("edge", vec![Term::constant("hub"), Term::variable("X")]);
        assert_eq!(db.candidates(&probe).count(), 10);
        // Pattern edge(X, "hub"): column 1 is more selective (1 candidate).
        let probe = Atom::new("edge", vec![Term::variable("X"), Term::constant("hub")]);
        assert_eq!(db.candidates(&probe).count(), 1);
        // Fully ground pattern that matches nothing: empty, not a scan.
        let probe = Atom::fact("edge", &["nope", "hub"]);
        assert_eq!(db.candidates(&probe).count(), 0);
        // No ground column: full scan.
        let probe = Atom::new("edge", vec![Term::variable("X"), Term::variable("Y")]);
        assert_eq!(db.candidates(&probe).count(), 11);
        // Unknown predicate: empty.
        let probe = Atom::new("zzz", vec![Term::variable("X")]);
        assert_eq!(db.candidates(&probe).count(), 0);
    }

    #[test]
    fn candidates_all_agree_with_pattern_column() {
        let mut db = Instance::new();
        db.insert_fact("r", &["a", "b"]);
        db.insert_fact("r", &["a", "c"]);
        db.insert_fact("r", &["d", "b"]);
        let probe = Atom::new("r", vec![Term::constant("a"), Term::variable("Y")]);
        for row in db.candidates(&probe) {
            assert_eq!(row[0], Term::constant("a"));
        }
    }

    #[test]
    fn indexed_relation_maintains_postings_on_insert() {
        let mut rel = IndexedRelation::with_arity(2);
        assert!(rel.insert(vec![Term::constant("a"), Term::constant("b")]));
        assert!(!rel.insert(vec![Term::constant("a"), Term::constant("b")]));
        assert!(rel.insert(vec![Term::constant("a"), Term::constant("c")]));
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.postings_len(0, &Term::constant("a")), 2);
        assert_eq!(rel.postings_len(1, &Term::constant("b")), 1);
        assert_eq!(rel.postings_len(1, &Term::constant("zzz")), 0);
        assert!(rel.contains(&[Term::constant("a"), Term::constant("c")]));
    }

    #[test]
    fn forced_hash_collisions_go_through_the_overflow_list() {
        let mut rel = IndexedRelation::with_arity(1);
        let a = vec![Term::constant("a")];
        let b = vec![Term::constant("b")];
        let c = vec![Term::constant("c")];
        // All three rows interned under the same 64-bit id: the first takes
        // the dedup slot, the others go to the overflow list.
        assert!(rel.insert_with_hash(a.clone(), 7));
        assert!(rel.insert_with_hash(b.clone(), 7));
        assert!(rel.insert_with_hash(c.clone(), 7));
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.tail.dedup_overflow.len(), 2);
        // Duplicates of both the slot row and the overflow rows are caught.
        assert!(!rel.insert_with_hash(a.clone(), 7));
        assert!(!rel.insert_with_hash(b.clone(), 7));
        assert!(!rel.insert_with_hash(c.clone(), 7));
        assert_eq!(rel.len(), 3);
        // Per-column postings were still maintained for overflow rows.
        assert_eq!(rel.postings_len(0, &Term::constant("b")), 1);
        // Colliding rows survive a freeze, and the dedup still rejects
        // duplicates afterwards, now through the frozen segment. (Real
        // `contains` calls hash the row themselves, so only the forced-hash
        // entry points are meaningful here.)
        rel.freeze();
        assert!(!rel.insert_with_hash(b, 7));
        assert!(!rel.insert_with_hash(c, 7));
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.rows().count(), 3);
    }

    #[test]
    fn freeze_publishes_the_tail_and_clones_share_segments() {
        let mut rel = IndexedRelation::with_arity(1);
        for i in 0..8 {
            rel.insert(vec![Term::constant(&format!("c{i}"))]);
        }
        assert_eq!(rel.segment_count(), 1, "everything lives in the tail");
        rel.freeze();
        assert_eq!(rel.segment_count(), 1, "one frozen segment, empty tail");
        let copy = rel.clone();
        assert!(copy.shares_segments_with(&rel), "clone shares the segment");
        assert_eq!(copy.len(), 8);
        // Divergence after cloning: inserts land in private tails.
        let mut grown = rel.clone();
        grown.insert(vec![Term::constant("new")]);
        assert_eq!(grown.len(), 9);
        assert_eq!(rel.len(), 8);
        assert!(!rel.contains(&[Term::constant("new")]));
        assert!(grown.shares_segments_with(&rel), "frozen part still shared");
    }

    #[test]
    fn freeze_merges_size_tiered_so_segments_stay_logarithmic() {
        let mut rel = IndexedRelation::with_arity(1);
        // 64 single-row commits: without merging this would be 64 segments.
        for i in 0..64 {
            rel.insert(vec![Term::constant(&format!("c{i}"))]);
            rel.freeze();
        }
        assert_eq!(rel.len(), 64);
        assert!(
            rel.segment_count() <= 8,
            "size-tiered merging keeps the stack logarithmic, got {}",
            rel.segment_count()
        );
        // All rows still reachable through indexes and scans.
        assert_eq!(rel.rows().count(), 64);
        assert_eq!(rel.postings_len(0, &Term::constant("c17")), 1);
        assert_eq!(rel.candidates(&[Term::constant("c17")]).count(), 1);
    }

    #[test]
    fn candidates_chain_across_frozen_segments_and_tail() {
        let mut rel = IndexedRelation::with_arity(2);
        rel.insert(vec![Term::constant("a"), Term::constant("b")]);
        rel.freeze();
        rel.insert(vec![Term::constant("a"), Term::constant("c")]);
        rel.freeze();
        rel.insert(vec![Term::constant("a"), Term::constant("d")]);
        // Index probe on column 0 finds rows in every segment.
        let pattern = vec![Term::constant("a"), Term::variable("Y")];
        let candidates = rel.candidates(&pattern);
        assert!(candidates.used_index());
        assert_eq!(candidates.count(), 3);
        // Unindexed scans also cross segments.
        let pattern = vec![Term::variable("X"), Term::variable("Y")];
        assert_eq!(rel.candidates(&pattern).count(), 3);
        assert_eq!(rel.scan_candidates().count(), 3);
        // Insertion order is preserved across segments.
        let rows: Vec<&Vec<Term>> = rel.rows().collect();
        assert_eq!(rows[0][1], Term::constant("b"));
        assert_eq!(rows[2][1], Term::constant("d"));
    }

    #[test]
    fn duplicates_are_detected_across_segments() {
        let mut rel = IndexedRelation::with_arity(1);
        rel.insert(vec![Term::constant("a")]);
        rel.freeze();
        assert!(!rel.insert(vec![Term::constant("a")]));
        assert!(rel.insert(vec![Term::constant("b")]));
        rel.freeze();
        assert!(!rel.insert(vec![Term::constant("a")]));
        assert!(!rel.insert(vec![Term::constant("b")]));
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn instance_freeze_makes_clones_share_storage() {
        let mut db = Instance::new();
        for i in 0..10 {
            db.insert_fact("r", &[&format!("a{i}"), "b"]);
        }
        db.insert_fact("s", &["c"]);
        db.freeze();
        let copy = db.clone();
        assert_eq!(copy, db);
        for p in db.predicates() {
            assert!(db
                .relation(p)
                .unwrap()
                .shares_segments_with(copy.relation(p).unwrap()));
        }
        // The clone can keep growing without touching the original.
        let mut grown = copy.clone();
        grown.insert_fact("r", &["new", "b"]);
        assert_eq!(grown.len(), 12);
        assert_eq!(db.len(), 11);
    }

    #[test]
    fn sorted_atoms_round_trip_preserves_equality() {
        let mut db = Instance::new();
        db.insert_fact("r", &["b", "a"]);
        db.insert_fact("r", &["a", "b"]);
        db.insert_fact("s", &["c"]);
        let mut atoms: Vec<Atom> = db.atoms().collect();
        atoms.sort();
        assert_eq!(db, Instance::from_atoms(atoms));
    }
}
