//! Instances (databases): finite sets of ground atoms over a signature.
//!
//! An [`Instance`] stores atoms whose terms are constants or labelled nulls
//! (no variables). It is the representation used by the chase; the
//! `ontorew-storage` crate offers an indexed relational store for efficient
//! query evaluation and converts to/from this type.

use crate::atom::{Atom, Predicate};
use crate::signature::Signature;
use crate::term::Term;
use serde::{Deserialize, Serialize};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A finite set of ground atoms, grouped by predicate.
#[derive(Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    relations: BTreeMap<Predicate, BTreeSet<Vec<Term>>>,
    size: usize,
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Self {
        Instance::default()
    }

    /// Build an instance from an iterator of ground atoms.
    ///
    /// # Panics
    /// Panics if some atom contains a variable.
    pub fn from_atoms<I: IntoIterator<Item = Atom>>(atoms: I) -> Self {
        let mut inst = Instance::new();
        for a in atoms {
            inst.insert(a);
        }
        inst
    }

    /// Insert a ground atom; returns `true` if it was not already present.
    ///
    /// # Panics
    /// Panics if the atom contains a variable.
    pub fn insert(&mut self, atom: Atom) -> bool {
        assert!(
            atom.is_ground(),
            "cannot insert non-ground atom {atom} into an instance"
        );
        let added = self
            .relations
            .entry(atom.predicate)
            .or_default()
            .insert(atom.terms);
        if added {
            self.size += 1;
        }
        added
    }

    /// Insert a fact given by predicate name and constant names.
    pub fn insert_fact(&mut self, predicate: &str, constants: &[&str]) -> bool {
        self.insert(Atom::fact(predicate, constants))
    }

    /// True if the instance contains the given ground atom.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.relations
            .get(&atom.predicate)
            .map(|tuples| tuples.contains(&atom.terms))
            .unwrap_or(false)
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.size
    }

    /// True if the instance has no facts.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Number of facts for the given predicate.
    pub fn relation_size(&self, predicate: Predicate) -> usize {
        self.relations
            .get(&predicate)
            .map(BTreeSet::len)
            .unwrap_or(0)
    }

    /// The predicates that have at least one fact.
    pub fn predicates(&self) -> impl Iterator<Item = Predicate> + '_ {
        self.relations
            .iter()
            .filter(|(_, tuples)| !tuples.is_empty())
            .map(|(p, _)| *p)
    }

    /// The signature induced by the instance.
    pub fn signature(&self) -> Signature {
        self.predicates().collect()
    }

    /// Iterate over the tuples of a predicate.
    pub fn tuples(&self, predicate: Predicate) -> impl Iterator<Item = &Vec<Term>> + '_ {
        self.relations
            .get(&predicate)
            .into_iter()
            .flat_map(|tuples| tuples.iter())
    }

    /// Iterate over every fact as an [`Atom`].
    pub fn atoms(&self) -> impl Iterator<Item = Atom> + '_ {
        self.relations.iter().flat_map(|(p, tuples)| {
            tuples.iter().map(move |t| Atom {
                predicate: *p,
                terms: t.clone(),
            })
        })
    }

    /// True if `other` is a subset of `self`.
    pub fn contains_instance(&self, other: &Instance) -> bool {
        other.atoms().all(|a| self.contains(&a))
    }

    /// Add every fact of `other` into `self`.
    pub fn extend_from(&mut self, other: &Instance) {
        for (p, tuples) in &other.relations {
            match self.relations.entry(*p) {
                Entry::Vacant(e) => {
                    self.size += tuples.len();
                    e.insert(tuples.clone());
                }
                Entry::Occupied(mut e) => {
                    for t in tuples {
                        if e.get_mut().insert(t.clone()) {
                            self.size += 1;
                        }
                    }
                }
            }
        }
    }

    /// The set of constants appearing in the instance (the active domain,
    /// excluding labelled nulls).
    pub fn constants(&self) -> BTreeSet<crate::term::Constant> {
        self.relations
            .values()
            .flatten()
            .flatten()
            .filter_map(Term::as_constant)
            .collect()
    }

    /// The set of labelled nulls appearing in the instance.
    pub fn nulls(&self) -> BTreeSet<crate::term::Null> {
        self.relations
            .values()
            .flatten()
            .flatten()
            .filter_map(Term::as_null)
            .collect()
    }

    /// True if the instance contains no labelled nulls (i.e. it is a plain
    /// database of constants).
    pub fn is_null_free(&self) -> bool {
        self.nulls().is_empty()
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Instance ({} facts):", self.size)?;
        for a in self.atoms() {
            writeln!(f, "  {a}")?;
        }
        Ok(())
    }
}

impl FromIterator<Atom> for Instance {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        Instance::from_atoms(iter)
    }
}

impl Extend<Atom> for Instance {
    fn extend<I: IntoIterator<Item = Atom>>(&mut self, iter: I) {
        for a in iter {
            self.insert(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Null;

    #[test]
    fn insert_and_contains() {
        let mut db = Instance::new();
        assert!(db.insert_fact("teaches", &["alice", "db101"]));
        assert!(!db.insert_fact("teaches", &["alice", "db101"]));
        assert!(db.contains(&Atom::fact("teaches", &["alice", "db101"])));
        assert!(!db.contains(&Atom::fact("teaches", &["bob", "db101"])));
        assert_eq!(db.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-ground atom")]
    fn variables_are_rejected() {
        let mut db = Instance::new();
        db.insert(Atom::new("r", vec![Term::variable("X")]));
    }

    #[test]
    fn relation_size_and_predicates() {
        let mut db = Instance::new();
        db.insert_fact("r", &["a", "b"]);
        db.insert_fact("r", &["b", "c"]);
        db.insert_fact("s", &["a"]);
        assert_eq!(db.relation_size(Predicate::new("r", 2)), 2);
        assert_eq!(db.relation_size(Predicate::new("s", 1)), 1);
        assert_eq!(db.relation_size(Predicate::new("t", 1)), 0);
        assert_eq!(db.predicates().count(), 2);
        assert_eq!(db.signature().len(), 2);
    }

    #[test]
    fn atoms_round_trip() {
        let mut db = Instance::new();
        db.insert_fact("r", &["a", "b"]);
        db.insert_fact("s", &["c"]);
        let copy: Instance = db.atoms().collect();
        assert_eq!(db, copy);
    }

    #[test]
    fn containment_and_extension() {
        let mut small = Instance::new();
        small.insert_fact("r", &["a", "b"]);
        let mut big = small.clone();
        big.insert_fact("s", &["c"]);
        assert!(big.contains_instance(&small));
        assert!(!small.contains_instance(&big));
        let mut grown = small.clone();
        grown.extend_from(&big);
        assert_eq!(grown, big);
        assert_eq!(grown.len(), 2);
    }

    #[test]
    fn constants_and_nulls() {
        let mut db = Instance::new();
        db.insert_fact("r", &["a", "b"]);
        db.insert(Atom {
            predicate: Predicate::new("r", 2),
            terms: vec![Term::constant("a"), Term::Null(Null(42))],
        });
        assert_eq!(db.constants().len(), 2);
        assert_eq!(db.nulls().len(), 1);
        assert!(!db.is_null_free());
    }

    #[test]
    fn extend_counts_only_new_facts() {
        let mut a = Instance::new();
        a.insert_fact("r", &["x", "y"]);
        let mut b = Instance::new();
        b.insert_fact("r", &["x", "y"]);
        b.insert_fact("r", &["y", "z"]);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn tuples_iteration() {
        let mut db = Instance::new();
        db.insert_fact("r", &["a", "b"]);
        db.insert_fact("r", &["c", "d"]);
        let p = Predicate::new("r", 2);
        assert_eq!(db.tuples(p).count(), 2);
        assert_eq!(db.tuples(Predicate::new("zzz", 2)).count(), 0);
    }
}
