//! Relational signatures (schemas).

use crate::atom::Predicate;
use crate::symbols::Symbol;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A relational signature: a finite set of predicates with fixed arities.
///
/// The signature of an ontology is derived from its rules; the signature of a
/// database must be contained in the signature of the ontology it is paired
/// with. Arity conflicts (the same relation name used with two different
/// arities) are detected at insertion time.
#[derive(Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    arities: BTreeMap<Symbol, usize>,
}

/// Error raised when a relation name is declared with two different arities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArityConflict {
    /// The conflicting relation name.
    pub name: Symbol,
    /// The arity already registered.
    pub existing: usize,
    /// The arity of the conflicting declaration.
    pub new: usize,
}

impl fmt::Display for ArityConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "relation {} declared with arity {} but already has arity {}",
            self.name, self.new, self.existing
        )
    }
}

impl std::error::Error for ArityConflict {}

impl Signature {
    /// An empty signature.
    pub fn new() -> Self {
        Signature::default()
    }

    /// Register a predicate; errors on arity conflict.
    pub fn add(&mut self, predicate: Predicate) -> Result<(), ArityConflict> {
        match self.arities.get(&predicate.name) {
            Some(&existing) if existing != predicate.arity => Err(ArityConflict {
                name: predicate.name,
                existing,
                new: predicate.arity,
            }),
            _ => {
                self.arities.insert(predicate.name, predicate.arity);
                Ok(())
            }
        }
    }

    /// Register every predicate in the iterator; errors on the first conflict.
    pub fn add_all<I: IntoIterator<Item = Predicate>>(
        &mut self,
        predicates: I,
    ) -> Result<(), ArityConflict> {
        for p in predicates {
            self.add(p)?;
        }
        Ok(())
    }

    /// The arity of `name`, if registered.
    pub fn arity_of(&self, name: Symbol) -> Option<usize> {
        self.arities.get(&name).copied()
    }

    /// True if `predicate` (name and arity) is part of the signature.
    pub fn contains(&self, predicate: Predicate) -> bool {
        self.arity_of(predicate.name) == Some(predicate.arity)
    }

    /// Number of registered predicates.
    pub fn len(&self) -> usize {
        self.arities.len()
    }

    /// True if no predicate is registered.
    pub fn is_empty(&self) -> bool {
        self.arities.is_empty()
    }

    /// The maximum arity over all registered predicates (0 if empty).
    pub fn max_arity(&self) -> usize {
        self.arities.values().copied().max().unwrap_or(0)
    }

    /// Iterate over the predicates of the signature.
    pub fn predicates(&self) -> impl Iterator<Item = Predicate> + '_ {
        self.arities.iter().map(|(name, arity)| Predicate {
            name: *name,
            arity: *arity,
        })
    }

    /// True if `other` is a sub-signature of `self`.
    pub fn contains_signature(&self, other: &Signature) -> bool {
        other.predicates().all(|p| self.contains(p))
    }

    /// The union of two signatures; errors on arity conflict.
    pub fn union(&self, other: &Signature) -> Result<Signature, ArityConflict> {
        let mut out = self.clone();
        out.add_all(other.predicates())?;
        Ok(out)
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.predicates().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Predicate> for Signature {
    /// Builds a signature, panicking on arity conflicts; use [`Signature::add_all`]
    /// for fallible construction.
    fn from_iter<I: IntoIterator<Item = Predicate>>(iter: I) -> Self {
        let mut s = Signature::new();
        s.add_all(iter).expect("arity conflict building signature");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut s = Signature::new();
        s.add(Predicate::new("r", 2)).unwrap();
        s.add(Predicate::new("s", 3)).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.arity_of(Symbol::intern("r")), Some(2));
        assert!(s.contains(Predicate::new("s", 3)));
        assert!(!s.contains(Predicate::new("s", 2)));
        assert_eq!(s.max_arity(), 3);
    }

    #[test]
    fn duplicate_consistent_declarations_are_fine() {
        let mut s = Signature::new();
        s.add(Predicate::new("r", 2)).unwrap();
        assert!(s.add(Predicate::new("r", 2)).is_ok());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn arity_conflicts_are_rejected() {
        let mut s = Signature::new();
        s.add(Predicate::new("r", 2)).unwrap();
        let err = s.add(Predicate::new("r", 3)).unwrap_err();
        assert_eq!(err.existing, 2);
        assert_eq!(err.new, 3);
        assert!(err.to_string().contains("already has arity"));
    }

    #[test]
    fn union_and_containment() {
        let a: Signature = vec![Predicate::new("r", 2)].into_iter().collect();
        let b: Signature = vec![Predicate::new("s", 1)].into_iter().collect();
        let u = a.union(&b).unwrap();
        assert!(u.contains_signature(&a));
        assert!(u.contains_signature(&b));
        assert!(!a.contains_signature(&u));
    }

    #[test]
    fn empty_signature_properties() {
        let s = Signature::new();
        assert!(s.is_empty());
        assert_eq!(s.max_arity(), 0);
        assert_eq!(s.predicates().count(), 0);
    }
}
