//! Predicates and atoms.

use crate::symbols::Symbol;
use crate::term::{Constant, Term, Variable};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A relation symbol together with its arity, e.g. `teaches/2`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Predicate {
    /// The relation name.
    pub name: Symbol,
    /// The number of argument positions.
    pub arity: usize,
}

impl Predicate {
    /// A predicate with the given name and arity.
    pub fn new(name: &str, arity: usize) -> Self {
        Predicate {
            name: Symbol::intern(name),
            arity,
        }
    }

    /// The predicate's name as a string.
    pub fn name_str(&self) -> &'static str {
        self.name.as_str()
    }
}

impl fmt::Debug for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

/// An atom `r(t1, ..., tk)`: a predicate applied to a list of terms.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Atom {
    /// The relation symbol of the atom.
    pub predicate: Predicate,
    /// The argument terms; `terms.len() == predicate.arity`.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Build an atom from a predicate name and terms; the arity is inferred
    /// from the number of terms.
    pub fn new(predicate: &str, terms: Vec<Term>) -> Self {
        Atom {
            predicate: Predicate::new(predicate, terms.len()),
            terms,
        }
    }

    /// Build an atom over an existing [`Predicate`].
    ///
    /// # Panics
    /// Panics if the number of terms does not match the predicate arity.
    pub fn from_predicate(predicate: Predicate, terms: Vec<Term>) -> Self {
        assert_eq!(
            predicate.arity,
            terms.len(),
            "arity mismatch constructing atom over {predicate}"
        );
        Atom { predicate, terms }
    }

    /// Build a ground atom from constant names, e.g.
    /// `Atom::fact("teaches", &["alice", "db101"])`.
    pub fn fact(predicate: &str, constants: &[&str]) -> Self {
        Atom::new(
            predicate,
            constants.iter().map(|c| Term::constant(c)).collect(),
        )
    }

    /// The arity of the atom's predicate.
    pub fn arity(&self) -> usize {
        self.predicate.arity
    }

    /// The variables occurring in this atom, in order of first occurrence and
    /// without duplicates.
    pub fn variables(&self) -> Vec<Variable> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Variable(v) = t {
                if seen.insert(*v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// The set of variables occurring in this atom.
    pub fn variable_set(&self) -> BTreeSet<Variable> {
        self.terms.iter().filter_map(|t| t.as_variable()).collect()
    }

    /// The constants occurring in this atom, without duplicates.
    pub fn constants(&self) -> BTreeSet<Constant> {
        self.terms.iter().filter_map(|t| t.as_constant()).collect()
    }

    /// True if the atom contains no variables.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(Term::is_ground)
    }

    /// True if some variable occurs more than once among the atom's terms.
    pub fn has_repeated_variables(&self) -> bool {
        let mut seen = BTreeSet::new();
        for t in &self.terms {
            if let Term::Variable(v) = t {
                if !seen.insert(*v) {
                    return true;
                }
            }
        }
        false
    }

    /// True if the atom contains at least one constant.
    pub fn has_constants(&self) -> bool {
        self.terms.iter().any(Term::is_constant)
    }

    /// The 0-based positions (indices) at which `v` occurs in this atom.
    pub fn positions_of(&self, v: Variable) -> Vec<usize> {
        self.terms
            .iter()
            .enumerate()
            .filter(|(_, t)| t.as_variable() == Some(v))
            .map(|(i, _)| i)
            .collect()
    }

    /// The number of occurrences of variable `v` in this atom.
    pub fn occurrences_of(&self, v: Variable) -> usize {
        self.positions_of(v).len()
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate.name)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// Collect every variable occurring in a slice of atoms, in order of first
/// occurrence and without duplicates.
pub fn variables_of(atoms: &[Atom]) -> Vec<Variable> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for a in atoms {
        for t in &a.terms {
            if let Term::Variable(v) = t {
                if seen.insert(*v) {
                    out.push(*v);
                }
            }
        }
    }
    out
}

/// Collect every constant occurring in a slice of atoms.
pub fn constants_of(atoms: &[Atom]) -> BTreeSet<Constant> {
    atoms.iter().flat_map(|a| a.constants()).collect()
}

/// Collect every predicate occurring in a slice of atoms.
pub fn predicates_of(atoms: &[Atom]) -> BTreeSet<Predicate> {
    atoms.iter().map(|a| a.predicate).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(pred: &str, args: &[&str]) -> Atom {
        Atom::new(
            pred,
            args.iter()
                .map(|a| {
                    if a.chars().next().unwrap().is_uppercase() {
                        Term::variable(a)
                    } else {
                        Term::constant(a)
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn predicate_carries_name_and_arity() {
        let p = Predicate::new("teaches", 2);
        assert_eq!(p.name_str(), "teaches");
        assert_eq!(p.arity, 2);
        assert_eq!(format!("{p}"), "teaches/2");
    }

    #[test]
    fn atom_infers_arity_from_terms() {
        let a = atom("r", &["X", "Y", "Z"]);
        assert_eq!(a.arity(), 3);
        assert_eq!(a.predicate, Predicate::new("r", 3));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn from_predicate_checks_arity() {
        Atom::from_predicate(Predicate::new("r", 2), vec![Term::variable("X")]);
    }

    #[test]
    fn variables_are_deduplicated_in_order() {
        let a = atom("r", &["X", "Y", "X"]);
        assert_eq!(a.variables(), vec![Variable::new("X"), Variable::new("Y")]);
        assert!(a.has_repeated_variables());
    }

    #[test]
    fn ground_and_constant_detection() {
        let a = Atom::fact("teaches", &["alice", "db101"]);
        assert!(a.is_ground());
        assert!(a.has_constants());
        assert!(!a.has_repeated_variables());
        let b = atom("r", &["X", "alice"]);
        assert!(!b.is_ground());
        assert!(b.has_constants());
    }

    #[test]
    fn positions_and_occurrences() {
        let a = atom("t", &["X", "X", "Y"]);
        assert_eq!(a.positions_of(Variable::new("X")), vec![0, 1]);
        assert_eq!(a.occurrences_of(Variable::new("X")), 2);
        assert_eq!(a.occurrences_of(Variable::new("Z")), 0);
    }

    #[test]
    fn display_renders_datalog_syntax() {
        let a = atom("r", &["X", "alice"]);
        assert_eq!(format!("{a}"), "r(X, \"alice\")");
    }

    #[test]
    fn helpers_over_atom_slices() {
        let atoms = vec![atom("r", &["X", "Y"]), atom("s", &["Y", "alice"])];
        assert_eq!(
            variables_of(&atoms),
            vec![Variable::new("X"), Variable::new("Y")]
        );
        assert_eq!(constants_of(&atoms).len(), 1);
        assert_eq!(predicates_of(&atoms).len(), 2);
    }

    #[test]
    fn zero_arity_atoms_are_allowed() {
        let a = Atom::new("q", vec![]);
        assert_eq!(a.arity(), 0);
        assert!(a.is_ground());
        assert_eq!(format!("{a}"), "q()");
    }
}
