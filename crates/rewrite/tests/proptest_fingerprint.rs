//! Property-based tests for the canonical query/program fingerprints: any
//! α-renamed and/or atom-permuted variant of a CQ must produce the identical
//! fingerprint, and structurally distinct queries must produce distinct ones
//! (fingerprints equal exactly when canonical texts are equal).

use ontorew_model::prelude::*;
use ontorew_rewrite::fingerprint::canonical_query_text;
use ontorew_rewrite::{fingerprint_program, fingerprint_query};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn variable_pool() -> Vec<&'static str> {
    vec!["X", "Y", "Z", "W", "U", "V"]
}

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        prop::sample::select(variable_pool()).prop_map(Term::variable),
        prop::sample::select(vec!["a", "b", "c"]).prop_map(Term::constant),
    ]
}

fn atom_strategy() -> impl Strategy<Value = Atom> {
    (
        prop::sample::select(vec!["r", "s", "t", "edge", "p"]),
        prop::collection::vec(term_strategy(), 1..4),
    )
        .prop_map(|(p, terms)| Atom::new(&format!("{p}{}", terms.len()), terms))
}

/// A random CQ: 1–5 atoms, answer variables = up to two of the body
/// variables (in order of first occurrence), boolean when variable-free.
fn query_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    (prop::collection::vec(atom_strategy(), 1..5), 0usize..3).prop_map(|(body, answers)| {
        let vars = ontorew_model::atom::variables_of(&body);
        let answer_vars: Vec<Variable> = vars.into_iter().take(answers).collect();
        ConjunctiveQuery::new(answer_vars, body)
    })
}

/// Produce an α-renamed, atom-permuted variant of `query`, driven by `seed`.
fn variant_of(query: &ConjunctiveQuery, seed: u64) -> ConjunctiveQuery {
    let mut rng = StdRng::seed_from_u64(seed);
    // Bijectively rename every variable into a fresh namespace, with the
    // name assignment order shuffled so the renaming is "random".
    let vars = query.variables();
    let mut numbers: Vec<usize> = (0..vars.len()).collect();
    shuffle(&mut numbers, &mut rng);
    let mut renaming = Substitution::new();
    for (v, n) in vars.iter().zip(numbers) {
        renaming.bind(*v, Term::variable(&format!("Renamed{n}")));
    }
    let renamed = query.apply(&renaming);
    // Permute the body atoms.
    let mut body = renamed.body.clone();
    shuffle(&mut body, &mut rng);
    ConjunctiveQuery {
        name: renamed.name,
        answer_vars: renamed.answer_vars,
        body,
    }
}

/// Fisher–Yates, driven by the vendored rng.
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// A random simple TGD over the same vocabulary.
fn rule_strategy() -> impl Strategy<Value = Tgd> {
    (
        prop::collection::vec(atom_strategy(), 1..3),
        prop::collection::vec(atom_strategy(), 1..2),
    )
        .prop_map(|(body, head)| Tgd {
            label: None,
            body,
            head,
        })
}

proptest! {
    /// The satellite property from the issue: α-renamed / atom-permuted
    /// variants of a CQ produce identical fingerprints.
    #[test]
    fn variants_share_the_fingerprint(query in query_strategy(), seed in 0u64..1_000_000) {
        let variant = variant_of(&query, seed);
        prop_assert_eq!(
            fingerprint_query(&query),
            fingerprint_query(&variant),
            "query {} and variant {} disagree",
            query,
            variant
        );
    }

    /// Two independent random variants of the same query also agree (the
    /// fingerprint is a function of the equivalence class, not of the
    /// starting spelling).
    #[test]
    fn variant_of_variant_is_stable(query in query_strategy(), s1 in 0u64..1_000_000, s2 in 0u64..1_000_000) {
        let a = variant_of(&query, s1);
        let b = variant_of(&a, s2);
        prop_assert_eq!(fingerprint_query(&a), fingerprint_query(&b));
    }

    /// Distinct queries get distinct fingerprints: fingerprints are equal
    /// exactly when canonical texts are equal, so there is no collapsing
    /// beyond the intended equivalence.
    #[test]
    fn fingerprints_separate_distinct_queries(a in query_strategy(), b in query_strategy()) {
        let same_class = canonical_query_text(&a) == canonical_query_text(&b);
        prop_assert_eq!(
            same_class,
            fingerprint_query(&a) == fingerprint_query(&b),
            "queries {} and {} break the class/fingerprint correspondence",
            a,
            b
        );
    }

    /// Program fingerprints ignore rule order, labels and per-rule variable
    /// spellings.
    #[test]
    fn program_fingerprint_is_presentation_invariant(
        rules in prop::collection::vec(rule_strategy(), 1..5),
        seed in 0u64..1_000_000,
    ) {
        let program = TgdProgram::from_rules(rules.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        // Relabel, rename per-rule, and shuffle the rule order.
        let mut scrambled: Vec<Tgd> = rules
            .iter()
            .enumerate()
            .map(|(i, rule)| {
                let mut renaming = Substitution::new();
                let vars = ontorew_model::atom::variables_of(
                    &rule.body
                        .iter()
                        .chain(rule.head.iter())
                        .cloned()
                        .collect::<Vec<_>>(),
                );
                let mut numbers: Vec<usize> = (0..vars.len()).collect();
                shuffle(&mut numbers, &mut rng);
                for (v, n) in vars.iter().zip(numbers) {
                    renaming.bind(*v, Term::variable(&format!("Rv{n}")));
                }
                let mut body = renaming.apply_atoms(&rule.body);
                shuffle(&mut body, &mut rng);
                Tgd {
                    label: Some(ontorew_model::symbols::Symbol::intern(&format!("L{i}"))),
                    body,
                    head: renaming.apply_atoms(&rule.head),
                }
            })
            .collect();
        shuffle(&mut scrambled, &mut rng);
        prop_assert_eq!(
            fingerprint_program(&program),
            fingerprint_program(&TgdProgram::from_rules(scrambled))
        );
    }
}
