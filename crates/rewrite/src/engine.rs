//! The UCQ rewriting engine.
//!
//! Given a TGD program `P` and a CQ (or UCQ) `q`, the engine saturates the
//! set of conjunctive queries reachable from `q` by rewriting and
//! factorization steps (see [`crate::step`]). When the saturation terminates,
//! the resulting UCQ `q'` is a *perfect rewriting*: for every database `D`,
//! `cert(q, P, D) = ans(q', D)` — exactly Definition 1 of the paper. The
//! termination of this saturation is what the paper's SWR and WR classes
//! guarantee; on programs outside those classes the engine stops at a
//! configurable depth and reports the rewriting as incomplete (a sound
//! approximation, cf. §7 of the paper and the query-pattern work it cites).

use crate::rq::RQuery;
use crate::step::{factorizations, rewrite_with_rule};
use ontorew_model::prelude::*;
use ontorew_telemetry::{global_registry, span, Counter, Histogram};
use ontorew_unify::prune_ucq;
use serde::Serialize;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, OnceLock};

/// Cached registry handles for the rewriting saturation loop.
struct RewriteMetrics {
    rewrites: Arc<Counter>,
    steps: Arc<Counter>,
    ucq_before_prune: Arc<Histogram>,
    ucq_after_prune: Arc<Histogram>,
}

fn rewrite_metrics() -> &'static RewriteMetrics {
    static METRICS: OnceLock<RewriteMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global_registry();
        RewriteMetrics {
            rewrites: r.counter("rewrite_runs_total", "UCQ rewriting runs.", &[]),
            steps: r.counter(
                "rewrite_steps_total",
                "Rewriting steps (rule applications) across all runs.",
                &[],
            ),
            ucq_before_prune: r.histogram(
                "rewrite_ucq_disjuncts_before_prune",
                "Disjuncts entering subsumption pruning.",
                &[],
            ),
            ucq_after_prune: r.histogram(
                "rewrite_ucq_disjuncts_after_prune",
                "Disjuncts after subsumption pruning (final UCQ size).",
                &[],
            ),
        }
    })
}

/// Configuration of a rewriting run.
#[derive(Clone, Copy, Debug)]
pub struct RewriteConfig {
    /// Maximum rewriting depth (number of steps from the input query).
    pub max_depth: usize,
    /// Maximum number of (canonical) conjunctive queries generated; the run
    /// stops once the bound is exceeded.
    pub max_queries: usize,
    /// Whether factorization steps are applied (required for completeness in
    /// general; can be disabled for ablation experiments).
    pub factorize: bool,
    /// Whether the final UCQ is pruned by containment (subsumption) in
    /// addition to the always-on canonical-form deduplication.
    pub prune_subsumed: bool,
}

impl Default for RewriteConfig {
    /// Budgets sized for practical saturations. The *query* budget is the
    /// real work bound: terminating workloads in the tree generate at most
    /// ~80 canonical queries (chains of length `n` generate `n + 1`), while
    /// non-FO-rewritable programs grow their frontier exponentially with
    /// depth (see the supply-chain suite) and therefore hit the query budget
    /// long before any plausible depth bound — the depth limit is only a
    /// backstop for linear-growth divergence. Runs that hit either budget
    /// report `complete = false`.
    fn default() -> Self {
        RewriteConfig {
            max_depth: 25,
            max_queries: 500,
            factorize: true,
            prune_subsumed: true,
        }
    }
}

impl RewriteConfig {
    /// Budgets sized for a specific program (the ROADMAP's "size-aware
    /// default"). The flat [`RewriteConfig::default`] budget of 500 canonical
    /// queries is right for small ontologies but silently cuts off wide class
    /// hierarchies: a hierarchy with `r` subclass rules legitimately rewrites
    /// a single class atom into `r + 1` disjuncts, and a `k`-atom query
    /// multiplies those choices. This constructor scales the query budget
    /// with the program's rule count and maximum predicate arity (each rule
    /// can specialise each atom position), and the depth bound with the rule
    /// count (a chain of `n` rules needs depth `n`), while keeping the flat
    /// defaults as floors so toy programs behave exactly as before. Divergent
    /// programs still terminate promptly — their frontier grows
    /// exponentially, so even the scaled budget is hit in well under a
    /// second, and `complete = false` is reported as always.
    ///
    /// The planner (`ontorew-plan`), the OBDA facade and the serving layer
    /// all use this heuristic when no explicit budget is configured.
    pub fn for_program(program: &TgdProgram) -> Self {
        let rules = program.len().max(1);
        let arity = program.max_arity().max(1);
        let max_queries = (rules.saturating_mul(arity).saturating_mul(8)).clamp(500, 20_000);
        let max_depth = (rules + 5).clamp(25, 500);
        RewriteConfig {
            max_depth,
            max_queries,
            ..RewriteConfig::default()
        }
    }

    /// A configuration with the given depth bound.
    pub fn with_depth(max_depth: usize) -> Self {
        RewriteConfig {
            max_depth,
            ..RewriteConfig::default()
        }
    }

    /// Disable subsumption pruning (canonical deduplication still applies).
    pub fn without_pruning(mut self) -> Self {
        self.prune_subsumed = false;
        self
    }

    /// Disable factorization steps.
    pub fn without_factorization(mut self) -> Self {
        self.factorize = false;
        self
    }

    /// Set the query budget.
    pub fn with_max_queries(mut self, max_queries: usize) -> Self {
        self.max_queries = max_queries;
        self
    }
}

/// Statistics of a rewriting run.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct RewriteStats {
    /// Rewriting steps applied (including ones whose result was a duplicate).
    pub steps: usize,
    /// Factorization steps applied.
    pub factorizations: usize,
    /// Distinct (canonical) queries generated, including the input.
    pub generated: usize,
    /// Maximum depth reached.
    pub depth_reached: usize,
    /// Disjuncts in the final (pruned) rewriting.
    pub final_disjuncts: usize,
}

/// The result of rewriting a query under a program.
#[derive(Clone, Debug)]
pub struct Rewriting {
    /// The disjuncts whose answers are plain variable tuples, as a UCQ.
    pub ucq: UnionOfConjunctiveQueries,
    /// Disjuncts in which some answer position became a fixed constant
    /// (possible only when rule heads contain constants). They are evaluated
    /// by the answering front-end in `crate::answer`.
    pub grounded: Vec<RQuery>,
    /// True if the saturation reached a fixpoint within its budget, i.e. the
    /// UCQ is a *perfect* rewriting.
    pub complete: bool,
    /// Run statistics.
    pub stats: RewriteStats,
}

impl Rewriting {
    /// Total number of disjuncts (variable-answer and grounded).
    pub fn len(&self) -> usize {
        self.ucq.len() + self.grounded.len()
    }

    /// Never true: the input query itself is always a disjunct.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Rewrite a conjunctive query under a program.
pub fn rewrite(
    program: &TgdProgram,
    query: &ConjunctiveQuery,
    config: &RewriteConfig,
) -> Rewriting {
    rewrite_ucq(
        program,
        &UnionOfConjunctiveQueries::singleton(query.clone()),
        config,
    )
}

/// Rewrite a union of conjunctive queries under a program.
pub fn rewrite_ucq(
    program: &TgdProgram,
    query: &UnionOfConjunctiveQueries,
    config: &RewriteConfig,
) -> Rewriting {
    let metrics = rewrite_metrics();
    metrics.rewrites.inc();
    let mut rewrite_span = span("rewrite");
    let mut stats = RewriteStats::default();
    let mut seen: HashMap<String, RQuery> = HashMap::new();
    let mut queue: VecDeque<(RQuery, usize)> = VecDeque::new();
    // The step machinery resolves a piece of query atoms against one head
    // atom at a time. When a rule's head atoms share an existential variable,
    // a query join spanning those head atoms cannot be resolved by any single
    // step, so reaching a fixpoint does not guarantee a perfect rewriting;
    // report such runs as incomplete (the result stays a sound
    // under-approximation, and the OBDA facade falls back accordingly).
    let cross_atom_existentials = program.iter().any(|rule| {
        rule.head.len() >= 2
            && rule.existential_head_variables().iter().any(|e| {
                rule.head
                    .iter()
                    .filter(|a| a.variable_set().contains(e))
                    .count()
                    >= 2
            })
    });
    let mut complete = !cross_atom_existentials;

    for q in &query.disjuncts {
        let rq = RQuery::from_cq(q).condense().canonical();
        let key = rq.canonical_key();
        if seen.insert(key, rq.clone()).is_none() {
            queue.push_back((rq, 0));
        }
    }
    stats.generated = seen.len();

    while let Some((current, depth)) = queue.pop_front() {
        stats.depth_reached = stats.depth_reached.max(depth);
        if depth >= config.max_depth {
            complete = false;
            continue;
        }

        let mut produced: Vec<RQuery> = Vec::new();
        for (rule_index, rule) in program.iter().enumerate() {
            for step in rewrite_with_rule(&current, rule, rule_index) {
                stats.steps += 1;
                produced.push(step.query);
            }
        }
        if config.factorize {
            for factored in factorizations(&current) {
                stats.factorizations += 1;
                produced.push(factored);
            }
        }

        for new_query in produced {
            // Condensation keeps the saturation finite: see
            // [`RQuery::condense`]. The condensed query is equivalent, so
            // neither soundness nor completeness is affected.
            let canonical = new_query.condense().canonical();
            let key = canonical.canonical_key();
            if seen.contains_key(&key) {
                continue;
            }
            if seen.len() >= config.max_queries {
                complete = false;
                continue;
            }
            seen.insert(key, canonical.clone());
            queue.push_back((canonical, depth + 1));
        }
    }
    stats.generated = seen.len();

    // Split variable-answer disjuncts from grounded ones.
    let mut cq_disjuncts: Vec<ConjunctiveQuery> = Vec::new();
    let mut grounded: Vec<RQuery> = Vec::new();
    for rq in seen.into_values() {
        match rq.to_cq() {
            Some(cq) => cq_disjuncts.push(cq),
            None => grounded.push(rq),
        }
    }
    // Deterministic output order.
    cq_disjuncts.sort_by_key(|q| format!("{q}"));
    grounded.sort();

    // Subsumption pruning runs a containment (homomorphism) check per
    // candidate pair; since `prune_ucq` buckets disjuncts by their predicate
    // signature (only signature-compatible pairs can subsume), the expensive
    // checks are near-linear on hierarchy-shaped rewritings and the limit can
    // sit well above the old quadratic-era 512. A budget-cut run of a
    // divergent program can still return tens of thousands of disjuncts,
    // where even bucketed pruning costs more than the evaluation it saves.
    // Canonical deduplication has already happened either way.
    const PRUNE_DISJUNCT_LIMIT: usize = 4096;
    let before_prune = cq_disjuncts.len();
    let ucq = if cq_disjuncts.is_empty() {
        // Degenerate case: every disjunct is grounded. Keep the original
        // query so the UCQ stays well-formed (it is still a sound disjunct).
        query.clone()
    } else {
        let raw = UnionOfConjunctiveQueries::new(cq_disjuncts);
        if config.prune_subsumed && raw.len() <= PRUNE_DISJUNCT_LIMIT {
            prune_ucq(&raw)
        } else {
            raw
        }
    };
    stats.final_disjuncts = ucq.len() + grounded.len();
    metrics.steps.add(stats.steps as u64);
    metrics.ucq_before_prune.observe(before_prune as u64);
    metrics.ucq_after_prune.observe(ucq.len() as u64);
    rewrite_span.attr("steps", stats.steps);
    rewrite_span.attr("depth", stats.depth_reached);
    rewrite_span.attr("before_prune", before_prune);
    rewrite_span.attr("disjuncts", stats.final_disjuncts);

    Rewriting {
        ucq,
        grounded,
        complete,
        stats,
    }
}

/// Rewrite and keep only the sizes per depth — used by the unbounded-rewriting
/// experiment (Example 2 / Figure 2 of the paper) to show how the number of
/// generated CQs grows with the depth bound.
pub fn rewriting_growth(
    program: &TgdProgram,
    query: &ConjunctiveQuery,
    depths: &[usize],
) -> Vec<(usize, usize, bool)> {
    depths
        .iter()
        .map(|&depth| {
            let r = rewrite(
                program,
                query,
                &RewriteConfig::with_depth(depth).without_pruning(),
            );
            (depth, r.stats.generated, r.complete)
        })
        .collect()
}

/// Helper for tests and benchmarks: the set of canonical keys of a rewriting's
/// disjuncts.
pub fn disjunct_keys(rewriting: &Rewriting) -> HashSet<String> {
    let mut keys: HashSet<String> = rewriting
        .ucq
        .disjuncts
        .iter()
        .map(|q| RQuery::from_cq(q).canonical_key())
        .collect();
    for g in &rewriting.grounded {
        keys.insert(g.canonical_key());
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::{parse_program, parse_query};

    #[test]
    fn hierarchy_rewriting_enumerates_subclasses() {
        let p = parse_program(
            "[R1] student(X) -> person(X).\n\
             [R2] professor(X) -> person(X).\n\
             [R3] phd(X) -> student(X).",
        )
        .unwrap();
        let q = parse_query("q(X) :- person(X)").unwrap();
        let r = rewrite(&p, &q, &RewriteConfig::default());
        assert!(r.complete);
        // person, student, professor, phd
        assert_eq!(r.ucq.len(), 4);
        assert!(r.grounded.is_empty());
    }

    #[test]
    fn existential_rule_rewriting_for_boolean_query() {
        let p = parse_program("[R1] person(X) -> hasParent(X, Y).").unwrap();
        let q = parse_query("q() :- hasParent(Z, W)").unwrap();
        let r = rewrite(&p, &q, &RewriteConfig::default());
        assert!(r.complete);
        assert_eq!(r.ucq.len(), 2); // hasParent(Z, W) ∨ person(Z)
    }

    #[test]
    fn open_answer_variable_blocks_existential_rewriting() {
        let p = parse_program("[R1] person(X) -> hasParent(X, Y).").unwrap();
        let q = parse_query("q(Z, W) :- hasParent(Z, W)").unwrap();
        let r = rewrite(&p, &q, &RewriteConfig::default());
        assert!(r.complete);
        assert_eq!(r.ucq.len(), 1); // only the original query
    }

    #[test]
    fn join_query_over_hierarchy() {
        let p = parse_program(
            "[R1] gradStudent(X) -> student(X).\n\
             [R2] teaches(X, C) -> course(C).",
        )
        .unwrap();
        let q = parse_query("q(X) :- student(X), attends(X, C), course(C)").unwrap();
        let r = rewrite(&p, &q, &RewriteConfig::default());
        assert!(r.complete);
        // student can be specialised to gradStudent; course(C) can be
        // specialised to teaches(_, C): 2 × 2 = 4 disjuncts.
        assert_eq!(r.ucq.len(), 4);
    }

    #[test]
    fn example1_of_the_paper_terminates() {
        let p = parse_program(
            "[R1] s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3).\n\
             [R2] v(Y1, Y2), q(Y2) -> s(Y1, Y3, Y2).\n\
             [R3] r(Y1, Y2) -> v(Y1, Y2).",
        )
        .unwrap();
        let q = parse_query("ans(X, Z) :- r(X, Z)").unwrap();
        let r = rewrite(&p, &q, &RewriteConfig::default());
        // The paper proves SWR sets are FO-rewritable; the saturation must
        // reach a fixpoint.
        assert!(r.complete);
        assert!(r.ucq.len() >= 2);
    }

    #[test]
    fn example2_of_the_paper_does_not_terminate_and_grows() {
        let p = parse_program(
            "[R1] t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).\n\
             [R2] s(Y1, Y1, Y2) -> r(Y2, Y3).",
        )
        .unwrap();
        let q = parse_query(r#"q() :- r("a", X)"#).unwrap();
        let growth = rewriting_growth(&p, &q, &[1, 3, 5, 7]);
        // The number of generated CQs strictly increases with the depth bound
        // (the "unbounded chain" of existential join variables of Example 2).
        assert!(growth.windows(2).all(|w| w[1].1 > w[0].1));
        // And the rewriting at the largest depth is still incomplete.
        assert!(!growth.last().unwrap().2);
    }

    #[test]
    fn example3_of_the_paper_terminates() {
        let p = parse_program(
            "[R1] r(Y1, Y2) -> t(Y3, Y1, Y1).\n\
             [R2] s(Y1, Y2, Y3) -> r(Y1, Y2).\n\
             [R3] u(Y1), t(Y1, Y1, Y2) -> s(Y1, Y1, Y2).",
        )
        .unwrap();
        // The paper argues this set is FO-rewritable although the rules look
        // mutually recursive: the recursion is only apparent.
        let q = parse_query("ans(A, B) :- s(A, A, B)").unwrap();
        let r = rewrite(&p, &q, &RewriteConfig::default());
        assert!(r.complete);
    }

    #[test]
    fn grounded_disjuncts_are_reported_separately() {
        let p = parse_program("[R1] visited(X) -> city(rome).").unwrap();
        let q = parse_query("q(C) :- city(C)").unwrap();
        let r = rewrite(&p, &q, &RewriteConfig::default());
        assert!(r.complete);
        assert_eq!(r.ucq.len(), 1);
        assert_eq!(r.grounded.len(), 1);
        assert!(r.grounded[0].has_grounded_answer());
    }

    #[test]
    fn depth_zero_returns_only_the_input() {
        let p = parse_program("[R1] student(X) -> person(X).").unwrap();
        let q = parse_query("q(X) :- person(X)").unwrap();
        let r = rewrite(&p, &q, &RewriteConfig::with_depth(0));
        assert!(!r.complete);
        assert_eq!(r.ucq.len(), 1);
    }

    #[test]
    fn query_budget_stops_the_run() {
        let p = parse_program(
            "[R1] t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).\n\
             [R2] s(Y1, Y1, Y2) -> r(Y2, Y3).",
        )
        .unwrap();
        let q = parse_query(r#"q() :- r("a", X)"#).unwrap();
        let config = RewriteConfig::default().with_max_queries(5);
        let r = rewrite(&p, &q, &config);
        assert!(!r.complete);
        assert!(r.stats.generated <= 5);
    }

    #[test]
    fn stats_are_populated() {
        let p = parse_program("[R1] student(X) -> person(X).").unwrap();
        let q = parse_query("q(X) :- person(X)").unwrap();
        let r = rewrite(&p, &q, &RewriteConfig::default());
        assert_eq!(r.stats.final_disjuncts, 2);
        assert!(r.stats.steps >= 1);
        assert!(r.stats.generated >= 2);
        assert!(r.stats.depth_reached >= 1);
    }

    #[test]
    fn size_aware_budget_scales_with_the_program() {
        // A toy program keeps the flat floors.
        let small = parse_program("[R1] student(X) -> person(X).").unwrap();
        let config = RewriteConfig::for_program(&small);
        assert_eq!(config.max_queries, 500);
        assert_eq!(config.max_depth, 25);

        // A wide hierarchy scales the query budget past the flat default
        // (and the depth bound with the rule count), but stays capped.
        let mut wide = String::new();
        for i in 0..120 {
            wide.push_str(&format!("[W{i}] sub{i}(X, Y) -> top(X, Y).\n"));
        }
        let wide = parse_program(&wide).unwrap();
        let config = RewriteConfig::for_program(&wide);
        assert_eq!(config.max_queries, 120 * 2 * 8);
        assert_eq!(config.max_depth, 125);
        assert!(RewriteConfig::for_program(&wide).max_queries <= 20_000);
    }

    #[test]
    fn size_aware_budget_completes_a_hierarchy_the_flat_budget_cuts_off() {
        // 600 direct subclasses of one class: the perfect rewriting has 601
        // disjuncts, which the flat 500-query budget cannot reach.
        let mut text = String::new();
        for i in 0..600 {
            text.push_str(&format!("[H{i}] sub{i}(X) -> top(X).\n"));
        }
        let program = parse_program(&text).unwrap();
        let q = parse_query("q(X) :- top(X)").unwrap();
        let flat = rewrite(&program, &q, &RewriteConfig::default());
        assert!(!flat.complete, "flat budget should be exhausted");
        let sized = rewrite(&program, &q, &RewriteConfig::for_program(&program));
        assert!(sized.complete, "size-aware budget must reach the fixpoint");
        assert_eq!(sized.ucq.len(), 601);
    }

    #[test]
    fn rewriting_a_ucq_accumulates_disjuncts() {
        let p = parse_program("[R1] student(X) -> person(X).").unwrap();
        let q1 = parse_query("q(X) :- person(X)").unwrap();
        let q2 = parse_query("q(X) :- employee(X)").unwrap();
        let ucq = UnionOfConjunctiveQueries::new(vec![q1, q2]);
        let r = rewrite_ucq(&p, &ucq, &RewriteConfig::default());
        assert!(r.complete);
        assert_eq!(r.ucq.len(), 3);
    }

    #[test]
    fn factorization_is_needed_for_some_rewritings() {
        // q() :- member(U, W), member(V, W) under project(P) -> member(P, G):
        // with factorization the two atoms can also first be unified and then
        // rewritten; without it the two-atom piece still handles this case, so
        // both configurations terminate, but the factorizing run must generate
        // at least as many queries.
        let p = parse_program("[R1] project(P) -> member(P, G).").unwrap();
        let q = parse_query("q() :- member(U, W), member(V, W)").unwrap();
        let with = rewrite(&p, &q, &RewriteConfig::default());
        let without = rewrite(&p, &q, &RewriteConfig::default().without_factorization());
        assert!(with.complete && without.complete);
        assert!(with.stats.generated >= without.stats.generated);
        // Both must contain the fully rewritten disjunct q() :- project(U).
        let keys_with = disjunct_keys(&with);
        assert!(keys_with.iter().any(|k| k.contains("project")));
    }
}
