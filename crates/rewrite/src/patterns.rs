//! Query patterns and approximation for non-FO-rewritable programs.
//!
//! §7 of the paper observes that for an arbitrary TGD set we may end up in one
//! of three situations: (i) the set is (provably) WR, (ii) we cannot tell,
//! (iii) the set is not WR. For (ii) and (iii) it points to approximation
//! techniques based on *query patterns* (Civili & Rosati, RR 2012).
//!
//! A **query pattern** abstracts a conjunctive query the same way the
//! position graph abstracts atoms: each atom is reduced to its predicate plus,
//! per argument position, whether the position holds a *bound* term (an answer
//! variable, a constant, or a join variable shared with another atom) or a
//! *free* term (an existential variable local to the atom). The set of
//! patterns reachable during rewriting is finite, so tracking pattern
//! recurrence gives both
//!
//! * a cheap divergence heuristic ([`PatternAnalysis::recurrent_patterns`] —
//!   a pattern produced at ever increasing depths signals an unbounded chain
//!   like the one of the paper's Example 2), and
//! * a sound bounded approximation ([`approximate_rewrite`]) whose coverage
//!   can be cross-checked against the chase.

use crate::engine::{rewrite, RewriteConfig, Rewriting};
use crate::rq::RQuery;
use crate::step::{factorizations, rewrite_with_rule};
use ontorew_model::prelude::*;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Whether an argument position of a pattern atom is bound or free.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArgKind {
    /// Answer variable, constant, or variable shared with another atom.
    Bound,
    /// Existential variable local to its atom.
    Free,
}

/// The pattern of a single atom: its predicate plus the bound/free shape of
/// its argument positions.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AtomPattern {
    /// The predicate of the atom.
    pub predicate: Predicate,
    /// Bound/free classification of each argument position.
    pub args: Vec<ArgKind>,
}

/// The pattern of a conjunctive query: the multiset (stored sorted) of its
/// atom patterns.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryPattern {
    /// Sorted atom patterns.
    pub atoms: Vec<AtomPattern>,
}

impl QueryPattern {
    /// Extract the pattern of an internal rewriting query.
    pub fn of_rquery(query: &RQuery) -> Self {
        let answer_vars: BTreeSet<Variable> = query
            .answer
            .iter()
            .filter_map(|t| t.as_variable())
            .collect();
        // Count occurrences of each variable across atoms.
        let mut atom_count: BTreeMap<Variable, usize> = BTreeMap::new();
        for atom in &query.body {
            for v in atom.variable_set() {
                *atom_count.entry(v).or_insert(0) += 1;
            }
        }
        let mut atoms: Vec<AtomPattern> = query
            .body
            .iter()
            .map(|atom| AtomPattern {
                predicate: atom.predicate,
                args: atom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Variable(v) => {
                            let shared_across_atoms = atom_count.get(v).copied().unwrap_or(0) > 1;
                            let repeated_within_atom = atom.occurrences_of(*v) > 1;
                            if answer_vars.contains(v)
                                || shared_across_atoms
                                || repeated_within_atom
                            {
                                ArgKind::Bound
                            } else {
                                ArgKind::Free
                            }
                        }
                        _ => ArgKind::Bound,
                    })
                    .collect(),
            })
            .collect();
        atoms.sort();
        QueryPattern { atoms }
    }

    /// Extract the pattern of a public conjunctive query.
    pub fn of_cq(query: &ConjunctiveQuery) -> Self {
        QueryPattern::of_rquery(&RQuery::from_cq(query))
    }

    /// Number of atom patterns.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if the pattern has no atoms (cannot happen for well-formed CQs).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }
}

/// Result of tracking query patterns during a (depth-bounded) rewriting.
#[derive(Clone, Debug)]
pub struct PatternAnalysis {
    /// Every query pattern observed, with the depths at which a *new*
    /// (canonically distinct) query with that pattern was generated.
    pub observed: BTreeMap<QueryPattern, Vec<usize>>,
    /// Every atom pattern observed, with the depths at which it appeared in a
    /// newly generated query.
    pub atom_observed: BTreeMap<AtomPattern, Vec<usize>>,
    /// Depth bound used for the exploration.
    pub depth: usize,
    /// Whether the exploration saturated before the depth bound.
    pub saturated: bool,
}

impl PatternAnalysis {
    /// Atom patterns that keep being regenerated at three or more different
    /// depths — the signature of an unbounded chain (cf. Example 2 of the
    /// paper, where the `s(bound, bound, bound)` and `r(bound, free)` shapes
    /// reappear at every other level).
    pub fn recurrent_patterns(&self) -> Vec<&AtomPattern> {
        self.atom_observed
            .iter()
            .filter(|(_, depths)| {
                let distinct: BTreeSet<usize> = depths.iter().copied().collect();
                distinct.len() >= 3
            })
            .map(|(p, _)| p)
            .collect()
    }

    /// A heuristic verdict: `true` when the exploration saturated and no
    /// pattern is recurrent — evidence (not proof) that the rewriting of this
    /// query is finite.
    pub fn looks_fo_rewritable(&self) -> bool {
        self.saturated && self.recurrent_patterns().is_empty()
    }
}

/// Explore the rewriting space of `query` under `program` up to `depth`,
/// recording the query patterns generated at each depth.
pub fn analyze_patterns(
    program: &TgdProgram,
    query: &ConjunctiveQuery,
    depth: usize,
) -> PatternAnalysis {
    let mut observed: BTreeMap<QueryPattern, Vec<usize>> = BTreeMap::new();
    let mut atom_observed: BTreeMap<AtomPattern, Vec<usize>> = BTreeMap::new();
    let record = |q: &RQuery,
                  d: usize,
                  observed: &mut BTreeMap<QueryPattern, Vec<usize>>,
                  atom_observed: &mut BTreeMap<AtomPattern, Vec<usize>>| {
        let pattern = QueryPattern::of_rquery(q);
        for atom_pattern in &pattern.atoms {
            atom_observed
                .entry(atom_pattern.clone())
                .or_default()
                .push(d);
        }
        observed.entry(pattern).or_default().push(d);
    };
    let mut seen: HashMap<String, usize> = HashMap::new();
    let mut queue: VecDeque<(RQuery, usize)> = VecDeque::new();
    let start = RQuery::from_cq(query).canonical();
    record(&start, 0, &mut observed, &mut atom_observed);
    seen.insert(start.canonical_key(), 0);
    queue.push_back((start, 0));
    let mut saturated = true;

    while let Some((current, d)) = queue.pop_front() {
        if d >= depth {
            saturated = false;
            continue;
        }
        let mut produced: Vec<RQuery> = Vec::new();
        for (rule_index, rule) in program.iter().enumerate() {
            for step in rewrite_with_rule(&current, rule, rule_index) {
                produced.push(step.query);
            }
        }
        for f in factorizations(&current) {
            produced.push(f);
        }
        for p in produced {
            let canonical = p.canonical();
            let key = canonical.canonical_key();
            if seen.contains_key(&key) {
                continue;
            }
            seen.insert(key, d + 1);
            record(&canonical, d + 1, &mut observed, &mut atom_observed);
            queue.push_back((canonical, d + 1));
        }
    }

    PatternAnalysis {
        observed,
        atom_observed,
        depth,
        saturated,
    }
}

/// A sound, depth-bounded approximation of the perfect rewriting, together
/// with the pattern analysis that justifies (or disclaims) its completeness.
#[derive(Clone, Debug)]
pub struct ApproximateRewriting {
    /// The (possibly partial) rewriting.
    pub rewriting: Rewriting,
    /// The pattern analysis of the same exploration depth.
    pub analysis: PatternAnalysis,
}

impl ApproximateRewriting {
    /// True if the approximation is in fact exact.
    pub fn is_exact(&self) -> bool {
        self.rewriting.complete
    }
}

/// Compute a sound approximation of the rewriting of `query` under `program`
/// with the given depth bound (cf. §7 of the paper: what to do when the set is
/// not, or not known to be, WR).
pub fn approximate_rewrite(
    program: &TgdProgram,
    query: &ConjunctiveQuery,
    depth: usize,
) -> ApproximateRewriting {
    let rewriting = rewrite(program, query, &RewriteConfig::with_depth(depth));
    let analysis = analyze_patterns(program, query, depth);
    ApproximateRewriting {
        rewriting,
        analysis,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::{parse_program, parse_query};

    #[test]
    fn pattern_extraction_classifies_positions() {
        let q = parse_query("q(X) :- r(X, Y), s(Y, Z)").unwrap();
        let p = QueryPattern::of_cq(&q);
        assert_eq!(p.len(), 2);
        // r(X, Y): X answer -> Bound, Y shared join -> Bound.
        // s(Y, Z): Y Bound, Z local existential -> Free.
        let r_pattern = p
            .atoms
            .iter()
            .find(|a| a.predicate == Predicate::new("r", 2))
            .unwrap();
        assert_eq!(r_pattern.args, vec![ArgKind::Bound, ArgKind::Bound]);
        let s_pattern = p
            .atoms
            .iter()
            .find(|a| a.predicate == Predicate::new("s", 2))
            .unwrap();
        assert_eq!(s_pattern.args, vec![ArgKind::Bound, ArgKind::Free]);
    }

    #[test]
    fn constants_count_as_bound() {
        let q = parse_query(r#"q() :- r("a", X)"#).unwrap();
        let p = QueryPattern::of_cq(&q);
        assert_eq!(p.atoms[0].args, vec![ArgKind::Bound, ArgKind::Free]);
    }

    #[test]
    fn repeated_variable_in_one_atom_is_bound() {
        let q = parse_query("q() :- t(Z, Z, W)").unwrap();
        let p = QueryPattern::of_cq(&q);
        assert_eq!(
            p.atoms[0].args,
            vec![ArgKind::Bound, ArgKind::Bound, ArgKind::Free]
        );
    }

    #[test]
    fn fo_rewritable_program_looks_fo_rewritable() {
        let p = parse_program(
            "[R1] student(X) -> person(X).\n\
             [R2] professor(X) -> person(X).",
        )
        .unwrap();
        let q = parse_query("q(X) :- person(X)").unwrap();
        let analysis = analyze_patterns(&p, &q, 10);
        assert!(analysis.saturated);
        assert!(analysis.looks_fo_rewritable());
    }

    #[test]
    fn example2_shows_recurrent_patterns() {
        let p = parse_program(
            "[R1] t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).\n\
             [R2] s(Y1, Y1, Y2) -> r(Y2, Y3).",
        )
        .unwrap();
        let q = parse_query(r#"q() :- r("a", X)"#).unwrap();
        let analysis = analyze_patterns(&p, &q, 8);
        assert!(!analysis.saturated);
        assert!(!analysis.recurrent_patterns().is_empty());
        assert!(!analysis.looks_fo_rewritable());
    }

    #[test]
    fn approximate_rewriting_is_exact_on_terminating_inputs() {
        let p = parse_program("[R1] student(X) -> person(X).").unwrap();
        let q = parse_query("q(X) :- person(X)").unwrap();
        let approx = approximate_rewrite(&p, &q, 10);
        assert!(approx.is_exact());
        assert_eq!(approx.rewriting.ucq.len(), 2);
    }

    #[test]
    fn approximate_rewriting_is_sound_on_diverging_inputs() {
        let p = parse_program(
            "[R1] t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).\n\
             [R2] s(Y1, Y1, Y2) -> r(Y2, Y3).",
        )
        .unwrap();
        let q = parse_query(r#"q() :- r("a", X)"#).unwrap();
        let approx = approximate_rewrite(&p, &q, 4);
        assert!(!approx.is_exact());
        // Soundness check against the chase on a database where the answer is
        // derivable within the bound.
        let mut db = Instance::new();
        db.insert_fact("s", &["c", "c", "a"]);
        let store = ontorew_storage::RelationalStore::from_instance(&db);
        let answers = crate::answer::evaluate_rewriting(&approx.rewriting, &q, &store);
        assert!(answers.as_boolean());
        let certain =
            ontorew_chase::certain_answers(&p, &db, &q, &ontorew_chase::ChaseConfig::default());
        assert!(certain.answers.as_boolean());
    }

    #[test]
    fn pattern_space_is_finite_even_when_queries_diverge() {
        let p = parse_program(
            "[R1] t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).\n\
             [R2] s(Y1, Y1, Y2) -> r(Y2, Y3).",
        )
        .unwrap();
        let q = parse_query(r#"q() :- r("a", X)"#).unwrap();
        let shallow = analyze_patterns(&p, &q, 4);
        let deep = analyze_patterns(&p, &q, 7);
        // Queries keep growing but patterns do not explode the same way: the
        // number of *distinct* patterns grows much more slowly than the number
        // of distinct queries.
        assert!(deep.observed.len() >= shallow.observed.len());
        assert!(deep.observed.len() < 200);
    }
}
