//! The internal query representation used by the rewriting engine.
//!
//! During rewriting an answer position can become bound to a constant (when a
//! TGD head contains constants), so the engine works with answer *terms*
//! rather than answer variables. [`RQuery`] is that internal form; it converts
//! losslessly from a [`ConjunctiveQuery`] and back whenever every answer term
//! is still a variable.

use ontorew_model::prelude::*;
use std::collections::BTreeMap;
use std::fmt;

/// A conjunctive query with answer *terms* (variables or constants).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RQuery {
    /// The answer terms, in output order.
    pub answer: Vec<Term>,
    /// The body atoms.
    pub body: Vec<Atom>,
}

impl RQuery {
    /// Build from a public conjunctive query.
    pub fn from_cq(q: &ConjunctiveQuery) -> Self {
        RQuery {
            answer: q.answer_vars.iter().map(|v| Term::Variable(*v)).collect(),
            body: q.body.clone(),
        }
    }

    /// Convert back to a public conjunctive query, if every answer term is a
    /// variable occurring in the body.
    pub fn to_cq(&self) -> Option<ConjunctiveQuery> {
        let mut answer_vars = Vec::with_capacity(self.answer.len());
        for t in &self.answer {
            match t {
                Term::Variable(v) => answer_vars.push(*v),
                _ => return None,
            }
        }
        let body_vars: std::collections::BTreeSet<Variable> =
            ontorew_model::atom::variables_of(&self.body)
                .into_iter()
                .collect();
        if !answer_vars.iter().all(|v| body_vars.contains(v)) {
            return None;
        }
        Some(ConjunctiveQuery::new(answer_vars, self.body.clone()))
    }

    /// True if some answer term is a constant (the disjunct cannot be
    /// expressed as a plain CQ and needs the grounded evaluation path).
    pub fn has_grounded_answer(&self) -> bool {
        self.answer.iter().any(|t| !t.is_variable())
    }

    /// Apply a substitution to answer terms and body.
    pub fn apply(&self, subst: &Substitution) -> RQuery {
        RQuery {
            answer: self
                .answer
                .iter()
                .map(|t| subst.apply_term_deep(*t))
                .collect(),
            body: subst.apply_atoms_deep(&self.body),
        }
    }

    /// The variables of the body.
    pub fn variables(&self) -> Vec<Variable> {
        ontorew_model::atom::variables_of(&self.body)
    }

    /// Number of body atoms.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// True if the body is empty (never produced by the engine).
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Canonically rename the query: answer variables first, then body
    /// variables in order of first occurrence, to `X0, X1, ...`; body atoms
    /// are then sorted. The result is used as a deduplication key, so two
    /// queries that are equal up to variable renaming and atom order map to
    /// the same canonical form (the renaming is recomputed after sorting until
    /// a fixpoint, bounded to a few iterations).
    pub fn canonical(&self) -> RQuery {
        let mut current = self.clone();
        for _ in 0..3 {
            let renamed = current.rename_in_order();
            let mut body = renamed.body.clone();
            body.sort();
            body.dedup();
            let next = RQuery {
                answer: renamed.answer,
                body,
            };
            if next == current {
                break;
            }
            current = next;
        }
        current
    }

    fn rename_in_order(&self) -> RQuery {
        let mut mapping: BTreeMap<Variable, Term> = BTreeMap::new();
        let mut counter = 0usize;
        let mut rename = |v: Variable, mapping: &mut BTreeMap<Variable, Term>| {
            if let std::collections::btree_map::Entry::Vacant(e) = mapping.entry(v) {
                e.insert(Term::variable(&format!("X{counter}")));
                counter += 1;
            }
        };
        for t in &self.answer {
            if let Term::Variable(v) = t {
                rename(*v, &mut mapping);
            }
        }
        for a in &self.body {
            for t in &a.terms {
                if let Term::Variable(v) = t {
                    rename(*v, &mut mapping);
                }
            }
        }
        let subst = Substitution::from_bindings(mapping);
        // The mapping is a bijective α-renaming, so it must be applied
        // *shallowly*: its target names reuse the `X<n>` namespace, so a
        // query already canonically named yields cyclic chains like
        // {X3→X1, X1→X2, X2→X3}, and the deep application of
        // [`RQuery::apply`] (meant for MGU chains) would follow them and
        // collapse distinct variables — corrupting the disjunct, not just
        // the dedup key.
        RQuery {
            answer: self.answer.iter().map(|t| subst.apply_term(*t)).collect(),
            body: subst.apply_atoms(&self.body),
        }
    }

    /// Remove redundant atoms: an atom is dropped when a substitution of its
    /// *purely local* existential variables (variables occurring in no other
    /// atom and in no answer position) maps it onto another body atom. The
    /// result is a retract of the query — equivalent to it (each query maps
    /// homomorphically into the other fixing the answer), just smaller.
    ///
    /// Rewriting steps keep minting such atoms (e.g. a fresh `t(Y)` with
    /// isolated existential `Y` per application of a rule with a `t` body
    /// atom), and without condensation the saturation would enumerate an
    /// infinite chain `t(Y1)`, `t(Y1), t(Y2)`, ... of pairwise inequivalent
    /// spellings of the same query, never reaching the fixpoint the paper's
    /// SWR/WR theorems promise.
    pub fn condense(&self) -> RQuery {
        let mut body = self.body.clone();
        body.sort();
        body.dedup();
        loop {
            let mut removed = None;
            'candidates: for i in 0..body.len() {
                // Variables of body[i] that occur nowhere else.
                let answer_vars: Vec<Variable> =
                    self.answer.iter().filter_map(Term::as_variable).collect();
                let is_local = |v: Variable| {
                    !answer_vars.contains(&v)
                        && body
                            .iter()
                            .enumerate()
                            .all(|(j, a)| j == i || !a.variable_set().contains(&v))
                };
                for j in 0..body.len() {
                    if i == j || body[j].predicate != body[i].predicate {
                        continue;
                    }
                    // Try θ on the local variables with θ(body[i]) = body[j].
                    let mut theta: BTreeMap<Variable, Term> = BTreeMap::new();
                    let mut ok = true;
                    for (s, t) in body[i].terms.iter().zip(body[j].terms.iter()) {
                        match s {
                            Term::Variable(v) if is_local(*v) => match theta.get(v) {
                                Some(bound) if bound != t => {
                                    ok = false;
                                    break;
                                }
                                Some(_) => {}
                                None => {
                                    theta.insert(*v, *t);
                                }
                            },
                            other if other == t => {}
                            _ => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        removed = Some(i);
                        break 'candidates;
                    }
                }
            }
            match removed {
                Some(i) => {
                    body.remove(i);
                }
                None => break,
            }
        }
        RQuery {
            answer: self.answer.clone(),
            body,
        }
    }

    /// A hashable canonical key: the exact canonical serialization from
    /// [`crate::fingerprint`], identical for any α-renamed and/or
    /// atom-permuted variant of the query. The engine's saturation loop
    /// depends on this exactness — with an order-sensitive key, α-equivalent
    /// duplicates would keep re-entering the queue and rewriting fixpoints
    /// that the paper's SWR/WR theorems promise would never be reached.
    pub fn canonical_key(&self) -> String {
        crate::fingerprint::canonical_rquery_text(self)
    }
}

impl fmt::Display for RQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q(")?;
        for (i, t) in self.answer.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for RQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::parse_query;

    fn v(n: &str) -> Term {
        Term::variable(n)
    }

    #[test]
    fn round_trip_with_cq() {
        let q = parse_query("q(X) :- r(X, Y), s(Y)").unwrap();
        let rq = RQuery::from_cq(&q);
        assert_eq!(rq.answer, vec![v("X")]);
        let back = rq.to_cq().unwrap();
        assert_eq!(back.answer_vars, q.answer_vars);
        assert_eq!(back.body, q.body);
    }

    #[test]
    fn grounded_answer_cannot_become_a_cq() {
        let rq = RQuery {
            answer: vec![Term::constant("a")],
            body: vec![Atom::new("r", vec![v("Y")])],
        };
        assert!(rq.has_grounded_answer());
        assert!(rq.to_cq().is_none());
    }

    #[test]
    fn answer_variable_dropped_from_body_cannot_become_a_cq() {
        let rq = RQuery {
            answer: vec![v("X")],
            body: vec![Atom::new("r", vec![v("Y")])],
        };
        assert!(rq.to_cq().is_none());
    }

    #[test]
    fn condense_drops_atoms_redundant_modulo_local_existentials() {
        // t(Z) and t(W) are spellings of the same constraint: W is local.
        let q = RQuery::from_cq(&parse_query("q(X) :- r(X, Y), t(Z), t(W)").unwrap());
        let condensed = q.condense();
        assert_eq!(condensed.len(), 2);
        // s(X, A, Z) with local A maps onto s(X, B, Z) with local B.
        let q = RQuery::from_cq(&parse_query("q(X) :- s(X, A, Z), s(X, B, Z), u(Z)").unwrap());
        assert_eq!(q.condense().len(), 2);
    }

    #[test]
    fn condense_keeps_atoms_whose_variables_are_shared() {
        // Y joins r and s: nothing is redundant.
        let q = RQuery::from_cq(&parse_query("q(X) :- r(X, Y), s(Y), s(Z)").unwrap());
        // s(Z) maps onto s(Y) (Z local) — but s(Y) itself must stay.
        let condensed = q.condense();
        assert_eq!(condensed.len(), 2);
        // Answer variables are never treated as local.
        let q = RQuery::from_cq(&parse_query("q(A, B) :- r(A, C), r(B, C)").unwrap());
        assert_eq!(q.condense().len(), 2);
        // A local variable used twice must map consistently: here W would
        // need both W->Y and W->c, and Y cannot absorb the constant either.
        let q = RQuery::from_cq(&parse_query(r#"q(X) :- r(X, W, W), r(X, Y, "c")"#).unwrap());
        assert_eq!(q.condense().len(), 2);
        // But a doubled local variable can absorb a more general atom:
        // r(X, Y, Z) maps onto r(X, W, W) via Y->W, Z->W.
        let q = RQuery::from_cq(&parse_query("q(X) :- r(X, W, W), r(X, Y, Z)").unwrap());
        let condensed = q.condense();
        assert_eq!(condensed.len(), 1);
        assert_eq!(condensed.body[0].terms[1], condensed.body[0].terms[2]);
    }

    #[test]
    fn canonical_form_is_renaming_invariant() {
        let a = RQuery::from_cq(&parse_query("q(X) :- r(X, Y), s(Y)").unwrap());
        let b = RQuery::from_cq(&parse_query("q(A) :- s(B), r(A, B)").unwrap());
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn canonical_form_distinguishes_different_queries() {
        let a = RQuery::from_cq(&parse_query("q(X) :- r(X, Y)").unwrap());
        let b = RQuery::from_cq(&parse_query("q(X) :- r(Y, X)").unwrap());
        assert_ne!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn canonical_form_deduplicates_repeated_atoms() {
        let rq = RQuery {
            answer: vec![v("X")],
            body: vec![
                Atom::new("r", vec![v("X"), v("Y")]),
                Atom::new("r", vec![v("X"), v("Y")]),
            ],
        };
        assert_eq!(rq.canonical().len(), 1);
    }

    #[test]
    fn display_shows_answer_and_body() {
        let rq = RQuery::from_cq(&parse_query("q(X) :- r(X, Y)").unwrap());
        let s = format!("{rq}");
        assert!(s.starts_with("q(X) :- "));
        assert!(s.contains("r(X, Y)"));
    }

    #[test]
    fn apply_substitution_reaches_answer_terms() {
        let rq = RQuery::from_cq(&parse_query("q(X) :- r(X, Y)").unwrap());
        let mut s = Substitution::new();
        s.bind(Variable::new("X"), Term::constant("a"));
        let applied = rq.apply(&s);
        assert_eq!(applied.answer, vec![Term::constant("a")]);
        assert!(applied.has_grounded_answer());
    }
}
