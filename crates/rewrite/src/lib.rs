//! # ontorew-rewrite
//!
//! UCQ rewriting of conjunctive queries under tuple-generating dependencies —
//! the query-answering technique whose applicability (termination) the
//! paper's SWR and WR classes characterise.
//!
//! * [`rq`] — the internal query form used during rewriting;
//! * [`step`] — single rewriting and factorization steps (piece unification);
//! * [`engine`] — the saturation loop producing a (perfect, when it
//!   terminates) UCQ rewriting;
//! * [`answer`] — answering over a relational store by rewriting + evaluation;
//! * [`patterns`] — query patterns, divergence heuristics and sound bounded
//!   approximations for non-FO-rewritable programs (§7 of the paper);
//! * [`fingerprint`] — α-renaming- and atom-order-invariant fingerprints of
//!   queries and programs, the cache keys of the `ontorew-serve` layer.
//!
//! ```
//! use ontorew_model::{parse_program, parse_query};
//! use ontorew_rewrite::{rewrite, RewriteConfig};
//!
//! let program = parse_program("[R1] student(X) -> person(X).").unwrap();
//! let query = parse_query("q(X) :- person(X)").unwrap();
//! let rewriting = rewrite(&program, &query, &RewriteConfig::default());
//! assert!(rewriting.complete);
//! assert_eq!(rewriting.ucq.len(), 2); // person(X) ∨ student(X)
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod answer;
pub mod engine;
pub mod fingerprint;
pub mod patterns;
pub mod rq;
pub mod step;

pub use answer::{
    answer_by_rewriting, evaluate_rewriting, evaluate_rewriting_configured, RewritingAnswers,
};
pub use engine::{
    disjunct_keys, rewrite, rewrite_ucq, rewriting_growth, RewriteConfig, RewriteStats, Rewriting,
};
pub use fingerprint::{
    fingerprint_program, fingerprint_query, prepared_key, PreparedKey, ProgramFingerprint,
    QueryFingerprint,
};
pub use patterns::{
    analyze_patterns, approximate_rewrite, ApproximateRewriting, ArgKind, AtomPattern,
    PatternAnalysis, QueryPattern,
};
pub use rq::RQuery;
pub use step::{factorizations, rewrite_with_rule, RewriteStep};
