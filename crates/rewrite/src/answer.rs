//! Query answering by rewriting + evaluation over the extensional store.
//!
//! This is the OBDA answering path the paper advocates: the ontology is
//! compiled away by rewriting the query into a UCQ, which is then evaluated
//! directly over the relational data (in AC0 data complexity). When the
//! rewriting is complete the answers are exactly the certain answers.

use crate::engine::{rewrite, RewriteConfig, Rewriting};
use crate::rq::RQuery;
use ontorew_model::prelude::*;
use ontorew_storage::{
    evaluate_cq_instrumented, evaluate_ucq, evaluate_ucq_configured, AnswerSet, EvalConfig,
    RelationalStore,
};
use std::collections::BTreeMap;

/// The result of answering a query by rewriting.
#[derive(Clone, Debug)]
pub struct RewritingAnswers {
    /// The answer tuples (null-free by construction: the store holds only the
    /// source data, not chase-invented nulls).
    pub answers: AnswerSet,
    /// The rewriting that was evaluated.
    pub rewriting: Rewriting,
}

impl RewritingAnswers {
    /// True if the answers are guaranteed to be exactly the certain answers
    /// (the rewriting reached a fixpoint).
    pub fn is_exact(&self) -> bool {
        self.rewriting.complete
    }
}

/// Answer `query` over `store` under the ontology `program` by UCQ rewriting.
pub fn answer_by_rewriting(
    program: &TgdProgram,
    query: &ConjunctiveQuery,
    store: &RelationalStore,
    config: &RewriteConfig,
) -> RewritingAnswers {
    let rewriting = rewrite(program, query, config);
    let answers = evaluate_rewriting(&rewriting, query, store);
    RewritingAnswers { answers, rewriting }
}

/// Evaluate an already-computed rewriting over a store.
pub fn evaluate_rewriting(
    rewriting: &Rewriting,
    original_query: &ConjunctiveQuery,
    store: &RelationalStore,
) -> AnswerSet {
    let mut answers = AnswerSet::empty(original_query.answer_vars.clone());
    answers.union_with(&evaluate_ucq(store, &rewriting.ucq));
    for grounded in &rewriting.grounded {
        evaluate_grounded_disjunct(grounded, store, &EvalConfig::default(), &mut answers);
    }
    answers
}

/// Like [`evaluate_rewriting`], but with an explicit [`EvalConfig`] applied
/// to every disjunct — the plan executor threads the store statistics
/// through here so each disjunct's join strategy and atom order come from
/// the cost model rather than raw relation sizes.
pub fn evaluate_rewriting_configured(
    rewriting: &Rewriting,
    original_query: &ConjunctiveQuery,
    store: &RelationalStore,
    config: &EvalConfig<'_>,
) -> AnswerSet {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut answers = AnswerSet::empty(original_query.answer_vars.clone());
    answers.union_with(&evaluate_ucq_configured(
        store,
        &rewriting.ucq,
        threads,
        config,
    ));
    for grounded in &rewriting.grounded {
        evaluate_grounded_disjunct(grounded, store, config, &mut answers);
    }
    answers
}

/// Evaluate a disjunct whose answer tuple contains constants: the body is
/// evaluated as a CQ over its answer *variables* only, and each resulting row
/// is expanded into the full answer tuple with the constants filled in.
fn evaluate_grounded_disjunct(
    disjunct: &RQuery,
    store: &RelationalStore,
    config: &EvalConfig<'_>,
    answers: &mut AnswerSet,
) {
    // Collect the distinct variables appearing in answer positions.
    let mut answer_variables: Vec<Variable> = Vec::new();
    for t in &disjunct.answer {
        if let Term::Variable(v) = t {
            if !answer_variables.contains(v) {
                answer_variables.push(*v);
            }
        }
    }
    // Variables must occur in the body for the disjunct to be evaluable; a
    // disjunct violating this is dropped (it cannot produce certain answers).
    let body_vars: std::collections::BTreeSet<Variable> =
        ontorew_model::atom::variables_of(&disjunct.body)
            .into_iter()
            .collect();
    if !answer_variables.iter().all(|v| body_vars.contains(v)) {
        return;
    }
    let cq = ConjunctiveQuery::new(answer_variables.clone(), disjunct.body.clone());
    let partial = evaluate_cq_instrumented(store, &cq, config).0;
    for row in partial.iter() {
        let binding: BTreeMap<Variable, Term> = answer_variables
            .iter()
            .copied()
            .zip(row.iter().copied())
            .collect();
        let full: Vec<Term> = disjunct
            .answer
            .iter()
            .map(|t| match t {
                Term::Variable(v) => binding[v],
                other => *other,
            })
            .collect();
        answers.insert(full);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::{parse_program, parse_query};

    fn store() -> RelationalStore {
        let mut db = RelationalStore::new();
        db.insert_fact("student", &["sara"]);
        db.insert_fact("professor", &["alice"]);
        db.insert_fact("teaches", &["alice", "db101"]);
        db.insert_fact("attends", &["sara", "db101"]);
        db
    }

    #[test]
    fn answers_include_ontology_derived_tuples() {
        let p = parse_program(
            "[R1] student(X) -> person(X).\n\
             [R2] professor(X) -> person(X).",
        )
        .unwrap();
        let q = parse_query("q(X) :- person(X)").unwrap();
        let result = answer_by_rewriting(&p, &q, &store(), &RewriteConfig::default());
        assert!(result.is_exact());
        assert_eq!(result.answers.len(), 2);
        assert!(result.answers.contains_constants(&["sara"]));
        assert!(result.answers.contains_constants(&["alice"]));
    }

    #[test]
    fn existential_knowledge_answers_boolean_queries() {
        let p = parse_program("[R1] professor(X) -> teaches(X, C).").unwrap();
        let mut db = RelationalStore::new();
        db.insert_fact("professor", &["bob"]);
        let q = parse_query("q() :- teaches(Y, C)").unwrap();
        let result = answer_by_rewriting(&p, &q, &db, &RewriteConfig::default());
        assert!(result.is_exact());
        assert!(result.answers.as_boolean());
    }

    #[test]
    fn open_variables_do_not_leak_unknown_values() {
        let p = parse_program("[R1] professor(X) -> teaches(X, C).").unwrap();
        let mut db = RelationalStore::new();
        db.insert_fact("professor", &["bob"]);
        let q = parse_query("q(X, C) :- teaches(X, C)").unwrap();
        let result = answer_by_rewriting(&p, &q, &db, &RewriteConfig::default());
        assert!(result.is_exact());
        assert!(result.answers.is_empty());
    }

    #[test]
    fn grounded_disjuncts_contribute_constant_answers() {
        let p = parse_program("[R1] visited(X) -> city(rome).").unwrap();
        let mut db = RelationalStore::new();
        db.insert_fact("visited", &["marco"]);
        let q = parse_query("q(C) :- city(C)").unwrap();
        let result = answer_by_rewriting(&p, &q, &db, &RewriteConfig::default());
        assert!(result.is_exact());
        assert_eq!(result.answers.len(), 1);
        assert!(result.answers.contains_constants(&["rome"]));
    }

    #[test]
    fn rewriting_answers_match_chase_answers() {
        let p = parse_program(
            "[R1] gradStudent(X) -> student(X).\n\
             [R2] student(X) -> person(X).\n\
             [R3] teaches(X, C) -> course(C).",
        )
        .unwrap();
        let mut db = RelationalStore::new();
        db.insert_fact("gradStudent", &["gina"]);
        db.insert_fact("student", &["sara"]);
        db.insert_fact("teaches", &["alice", "db101"]);
        let q = parse_query("q(X) :- person(X)").unwrap();

        let by_rewriting = answer_by_rewriting(&p, &q, &db, &RewriteConfig::default());
        let by_chase = ontorew_chase::certain_answers(
            &p,
            &db.to_instance(),
            &q,
            &ontorew_chase::ChaseConfig::default(),
        );
        assert!(by_rewriting.is_exact());
        assert!(by_chase.complete);
        let a: Vec<_> = by_rewriting.answers.iter().cloned().collect();
        let b: Vec<_> = by_chase.answers.iter().cloned().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn deep_join_queries_match_chase_answers() {
        // Regression test: the canonical renaming used to be applied
        // *deeply*, following cyclic rename chains and collapsing distinct
        // variables — on 4-atom join queries whole expansion disjuncts were
        // corrupted and certain answers silently lost (while the rewriting
        // still claimed completeness).
        let p = parse_program(
            "[U5] student(X) -> person(X).\n\
             [U10] attends(S, C) -> student(S).\n\
             [U12] advisedBy(X, Y) -> professor(Y).",
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert_fact("advisedBy", &["gina", "alice"]);
        db.insert_fact("teaches", &["alice", "db101"]);
        db.insert_fact("attends", &["sara", "db101"]);
        let q = parse_query("q(S) :- advisedBy(S, P), teaches(P, C), attends(S2, C), person(S2)")
            .unwrap();
        let store = RelationalStore::from_instance(&db);
        let by_rewriting = answer_by_rewriting(&p, &q, &store, &RewriteConfig::default());
        let by_chase =
            ontorew_chase::certain_answers(&p, &db, &q, &ontorew_chase::ChaseConfig::default());
        assert!(by_rewriting.is_exact());
        assert!(by_chase.complete);
        assert_eq!(by_rewriting.answers.len(), 1);
        assert!(by_rewriting.answers.contains_constants(&["gina"]));
        let a: Vec<_> = by_rewriting.answers.iter().cloned().collect();
        let b: Vec<_> = by_chase.answers.iter().cloned().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn evaluate_rewriting_reuses_a_precomputed_rewriting() {
        let p = parse_program("[R1] student(X) -> person(X).").unwrap();
        let q = parse_query("q(X) :- person(X)").unwrap();
        let rewriting = rewrite(&p, &q, &RewriteConfig::default());
        let answers = evaluate_rewriting(&rewriting, &q, &store());
        assert_eq!(answers.len(), 1);
        assert!(answers.contains_constants(&["sara"]));
    }
}
