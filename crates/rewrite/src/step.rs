//! Single rewriting and factorization steps.
//!
//! A **rewriting step** (the operation approximated by the edges of the
//! paper's position graph and P-node graph) takes a query `q`, a TGD
//! `R : B → H` and an admissible piece unifier `(Q', u)` of `q` with `R`, and
//! produces the query whose body is `u(B) ∪ u(body(q) \ Q')`. Intuitively the
//! atoms of `Q'` no longer need to be found in the data — they can be
//! *generated* by `R` — so it suffices to find `R`'s body instead.
//!
//! A **factorization step** unifies two body atoms of the query with each
//! other. It never changes the query's semantics on its own (the factorized
//! query is contained in the original), but it can enable piece unifications
//! that would otherwise be blocked by the "shared existential variable"
//! condition, and is required for the completeness of UCQ rewriting.

use crate::rq::RQuery;
use ontorew_model::prelude::*;
use ontorew_unify::{piece_unifiers, unify_atoms};

/// One rewriting step: the produced query plus provenance.
#[derive(Clone, Debug)]
pub struct RewriteStep {
    /// The query produced by the step.
    pub query: RQuery,
    /// Index of the rule used (in the program's rule order).
    pub rule_index: usize,
    /// The atoms of the parent query that were resolved away (indices into the
    /// parent's body).
    pub resolved_atoms: Vec<usize>,
}

/// Apply every admissible rewriting step of `rule` (at `rule_index`) to
/// `query`, returning the produced queries.
///
/// `rule` is standardised apart internally, so callers can pass program rules
/// directly.
pub fn rewrite_with_rule(query: &RQuery, rule: &Tgd, rule_index: usize) -> Vec<RewriteStep> {
    let fresh_rule = rule.freshen();
    let answer_vars: Vec<Variable> = query
        .answer
        .iter()
        .filter_map(|t| t.as_variable())
        .collect();

    let mut steps = Vec::new();
    for pu in piece_unifiers(&query.body, &answer_vars, &fresh_rule) {
        let piece: std::collections::BTreeSet<usize> = pu.piece.iter().copied().collect();
        // Body of the new query: u(rule body) followed by u(query body \ piece).
        let mut new_body: Vec<Atom> = pu.unifier.apply_atoms_deep(&fresh_rule.body);
        for (i, atom) in query.body.iter().enumerate() {
            if !piece.contains(&i) {
                new_body.push(pu.unifier.apply_atom_deep(atom));
            }
        }
        let new_answer: Vec<Term> = query
            .answer
            .iter()
            .map(|t| pu.unifier.apply_term_deep(*t))
            .collect();
        steps.push(RewriteStep {
            query: RQuery {
                answer: new_answer,
                body: new_body,
            },
            rule_index,
            resolved_atoms: pu.piece.clone(),
        });
    }
    steps
}

/// Apply every factorization step to `query`: for every pair of distinct body
/// atoms over the same predicate that unify, produce the query obtained by
/// applying their most general unifier.
pub fn factorizations(query: &RQuery) -> Vec<RQuery> {
    let mut out = Vec::new();
    for i in 0..query.body.len() {
        for j in (i + 1)..query.body.len() {
            if query.body[i].predicate != query.body[j].predicate {
                continue;
            }
            if let Some(mgu) = unify_atoms(&query.body[i], &query.body[j]) {
                if mgu.is_empty() {
                    continue; // identical atoms, nothing to factorize
                }
                let factored = query.apply(&mgu);
                out.push(factored);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::{parse_query, parse_tgd};

    fn rq(text: &str) -> RQuery {
        RQuery::from_cq(&parse_query(text).unwrap())
    }

    #[test]
    fn atomic_query_single_step() {
        // q(X) :- person(X) with rule student(Y) -> person(Y)
        // rewrites to q(X) :- student(X).
        let q = rq("q(X) :- person(X)");
        let rule = parse_tgd("student(Y) -> person(Y)").unwrap();
        let steps = rewrite_with_rule(&q, &rule, 0);
        assert_eq!(steps.len(), 1);
        let produced = &steps[0].query;
        assert_eq!(produced.body.len(), 1);
        assert_eq!(produced.body[0].predicate, Predicate::new("student", 1));
        // The answer variable is preserved through the unifier.
        assert_eq!(produced.body[0].terms[0], produced.answer[0]);
    }

    #[test]
    fn existential_head_blocks_step_on_answer_variable() {
        // q(X, Y) :- hasParent(X, Y) cannot be rewritten with
        // person(Z) -> hasParent(Z, W) because Y (an answer variable) would
        // have to equal the existential W.
        let q = rq("q(X, Y) :- hasParent(X, Y)");
        let rule = parse_tgd("person(Z) -> hasParent(Z, W)").unwrap();
        assert!(rewrite_with_rule(&q, &rule, 0).is_empty());
    }

    #[test]
    fn existential_head_allows_step_on_local_variable() {
        let q = rq("q(X) :- hasParent(X, Y)");
        let rule = parse_tgd("person(Z) -> hasParent(Z, W)").unwrap();
        let steps = rewrite_with_rule(&q, &rule, 3);
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].rule_index, 3);
        assert_eq!(
            steps[0].query.body[0].predicate,
            Predicate::new("person", 1)
        );
    }

    #[test]
    fn unresolved_atoms_are_carried_over() {
        // q(X) :- person(X), teaches(X, C): only person unifies with the head.
        let q = rq("q(X) :- person(X), teaches(X, C)");
        let rule = parse_tgd("student(Y) -> person(Y)").unwrap();
        let steps = rewrite_with_rule(&q, &rule, 0);
        assert_eq!(steps.len(), 1);
        let produced = &steps[0].query;
        assert_eq!(produced.body.len(), 2);
        let preds: Vec<&str> = produced
            .body
            .iter()
            .map(|a| a.predicate.name_str())
            .collect();
        assert!(preds.contains(&"student"));
        assert!(preds.contains(&"teaches"));
        assert_eq!(steps[0].resolved_atoms, vec![0]);
    }

    #[test]
    fn constants_in_query_propagate_into_the_rule_body() {
        // Example 2's first rewriting step: q() :- r("a", X) with
        // s(Y1, Y1, Y2) -> r(Y2, Y3) gives q() :- s(Y1, Y1, "a").
        let q = rq(r#"q() :- r("a", X)"#);
        let rule = parse_tgd("s(Y1, Y1, Y2) -> r(Y2, Y3)").unwrap();
        let steps = rewrite_with_rule(&q, &rule, 1);
        assert_eq!(steps.len(), 1);
        let produced = &steps[0].query;
        assert_eq!(produced.body.len(), 1);
        let atom = &produced.body[0];
        assert_eq!(atom.predicate, Predicate::new("s", 3));
        assert_eq!(atom.terms[0], atom.terms[1]);
        assert_eq!(atom.terms[2], Term::constant("a"));
    }

    #[test]
    fn constant_clash_blocks_the_step() {
        let q = rq(r#"q() :- p("a")"#);
        let rule = parse_tgd(r#"r(X) -> p("b")"#).unwrap();
        assert!(rewrite_with_rule(&q, &rule, 0).is_empty());
    }

    #[test]
    fn head_constant_grounds_an_answer_variable() {
        let q = rq("q(X) :- p(X)");
        let rule = parse_tgd(r#"r(Y) -> p("a")"#).unwrap();
        let steps = rewrite_with_rule(&q, &rule, 0);
        assert_eq!(steps.len(), 1);
        assert!(steps[0].query.has_grounded_answer());
        assert_eq!(steps[0].query.answer[0], Term::constant("a"));
    }

    #[test]
    fn two_atom_piece_is_resolved_together() {
        // q() :- member(U, W), member(V, W) with project(P) -> member(P, G):
        // the shared existential W forces the two atoms to be resolved as one
        // piece, and the produced body joins the two project atoms on nothing.
        let q = rq("q() :- member(U, W), member(V, W)");
        let rule = parse_tgd("project(P) -> member(P, G)").unwrap();
        let steps = rewrite_with_rule(&q, &rule, 0);
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].resolved_atoms, vec![0, 1]);
        let produced = &steps[0].query;
        assert_eq!(produced.body.len(), 1); // project(U) == project(V) after unification
        assert_eq!(produced.body[0].predicate, Predicate::new("project", 1));
    }

    #[test]
    fn factorization_unifies_compatible_atoms() {
        let q = rq("q(X) :- r(X, Y), r(X, Z)");
        let f = factorizations(&q);
        assert_eq!(f.len(), 1);
        let canonical = f[0].canonical();
        assert_eq!(canonical.len(), 1);
    }

    #[test]
    fn factorization_skips_incompatible_atoms() {
        let q = rq(r#"q() :- r("a", Y), r("b", Z)"#);
        assert!(factorizations(&q).is_empty());
    }

    #[test]
    fn factorization_skips_different_predicates() {
        let q = rq("q(X) :- r(X, Y), s(X, Y)");
        assert!(factorizations(&q).is_empty());
    }

    #[test]
    fn multi_head_rule_offers_steps_for_each_head_atom() {
        let q = rq("q(X) :- emp(X), mgr(X)");
        let rule = parse_tgd("person(P) -> emp(P), mgr(P)").unwrap();
        let steps = rewrite_with_rule(&q, &rule, 0);
        // emp(X) and mgr(X) each resolve against their head atom.
        assert_eq!(steps.len(), 2);
    }
}
