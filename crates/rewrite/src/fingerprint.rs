//! Canonical forms and fingerprints for queries and programs.
//!
//! The serving layer (`ontorew-serve`) caches finished rewritings keyed by
//! *what* is being rewritten, not *how it is spelled*: two conjunctive
//! queries that differ only by a bijective variable renaming (α-renaming)
//! and/or by the order of their body atoms must map to the same cache entry,
//! and likewise two programs that differ only in rule order, rule labels or
//! per-rule variable names.
//!
//! The engine-internal [`RQuery::canonical`](crate::rq::RQuery::canonical)
//! form is a cheap rename-then-sort heuristic: good enough for best-effort
//! deduplication inside one rewriting run (a miss only costs duplicate work,
//! later removed by subsumption pruning), but *not* a true canonical form —
//! atoms sort by interned symbol ids, so the fixpoint it reaches can depend
//! on the input's atom order. A cache key must be exactly invariant, so this
//! module computes one properly: the **lexicographically minimal
//! serialization** of the query over all body-atom orderings, with variables
//! numbered by first occurrence (answer variables pinned first, in answer
//! order). That minimum is found by a greedy branch-and-bound which, thanks
//! to prefix-free atom serializations, explores only tied minimal prefixes —
//! linear-ish on real queries, exponential only on highly symmetric bodies,
//! which a node budget intercepts (falling back to a coarser but still
//! order-invariant key). Fingerprints are the FNV-1a hash of that canonical
//! text, so they are stable across processes and printable in logs and on
//! the wire.

use crate::rq::RQuery;
use ontorew_model::prelude::*;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// 64-bit FNV-1a over a byte string: tiny, dependency-free and stable across
/// processes (unlike `DefaultHasher`, whose algorithm is unspecified).
fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// The fingerprint of a conjunctive query, invariant under α-renaming and
/// body-atom reordering.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryFingerprint(pub u64);

impl fmt::Display for QueryFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{:016x}", self.0)
    }
}

impl fmt::Debug for QueryFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QueryFingerprint({self})")
    }
}

/// The fingerprint of a TGD program, invariant under rule reordering, rule
/// relabelling and per-rule variable renaming.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProgramFingerprint(pub u64);

impl fmt::Display for ProgramFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{:016x}", self.0)
    }
}

impl fmt::Debug for ProgramFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProgramFingerprint({self})")
    }
}

/// The cache key of a prepared query: the pair (program, query) fingerprint.
/// A rewriting is only reusable under the exact program it was computed for.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PreparedKey {
    /// Fingerprint of the program the rewriting was computed under.
    pub program: ProgramFingerprint,
    /// Fingerprint of the (canonicalized) query.
    pub query: QueryFingerprint,
}

impl fmt::Display for PreparedKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.program, self.query)
    }
}

impl fmt::Debug for PreparedKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PreparedKey({self})")
    }
}

/// Fingerprint a conjunctive query: the hash of [`canonical_query_text`].
pub fn fingerprint_query(query: &ConjunctiveQuery) -> QueryFingerprint {
    query_identity(query).1
}

/// The canonical text of a query together with its fingerprint, computed in
/// one pass. Callers that need both — e.g. a cache that keys on the
/// fingerprint but confirms hits against the text, since a 64-bit FNV hash
/// is compact but not collision-resistant — should use this instead of
/// calling [`canonical_query_text`] and [`fingerprint_query`] separately.
pub fn query_identity(query: &ConjunctiveQuery) -> (String, QueryFingerprint) {
    let text = canonical_query_text(query);
    let fingerprint = QueryFingerprint(fnv1a(text.as_bytes()));
    (text, fingerprint)
}

/// Fingerprint a TGD program: each rule is canonicalized independently
/// (label dropped, body and head atom order and variable names abstracted
/// away), the canonical rule strings are sorted and deduplicated, and the
/// result is hashed — so rule order, labels, duplicate rules and variable
/// spellings do not affect the fingerprint.
pub fn fingerprint_program(program: &TgdProgram) -> ProgramFingerprint {
    let mut rules: Vec<String> = program.iter().map(canonical_rule_text).collect();
    rules.sort();
    rules.dedup();
    ProgramFingerprint(fnv1a(rules.join("\n").as_bytes()))
}

/// Fingerprint a (program, query) pair into a prepared-query cache key.
pub fn prepared_key(program: &TgdProgram, query: &ConjunctiveQuery) -> PreparedKey {
    PreparedKey {
        program: fingerprint_program(program),
        query: fingerprint_query(query),
    }
}

/// The canonical text of a conjunctive query: identical for any α-renamed
/// and/or body-permuted variant, distinct for structurally different queries.
/// The query name is ignored: `q(X) :- person(X)` and `people(Y) :-
/// person(Y)` are the same shape.
pub fn canonical_query_text(query: &ConjunctiveQuery) -> String {
    canonical_rquery_text(&RQuery::from_cq(query))
}

/// [`canonical_query_text`] for the rewriting engine's internal query form
/// (answer terms may be constants). This is also the engine's deduplication
/// key — see [`RQuery::canonical_key`].
pub fn canonical_rquery_text(rq: &RQuery) -> String {
    canonical_text(&rq.answer, &[(&rq.body, "")])
}

/// The canonical text of one TGD: invariant under body-atom and head-atom
/// reordering and variable renaming; the label is dropped.
pub fn canonical_rule_text(rule: &Tgd) -> String {
    canonical_text(&[], &[(&rule.body, "B"), (&rule.head, "H")])
}

/// Budget on branch-and-bound nodes. Real queries stay far below this; only
/// adversarially symmetric bodies (many interchangeable atoms) can reach it,
/// at which point the coarse fallback key keeps the result order-invariant.
const CANONICAL_NODE_BUDGET: usize = 20_000;

/// Compute the canonical serialization of `answer` plus the tagged atom
/// groups. Tags separate body from head atoms in rules; within the search
/// every atom serializes with its tag as prefix, so groups order before one
/// another lexicographically while sharing one variable numbering.
fn canonical_text(answer: &[Term], groups: &[(&[Atom], &str)]) -> String {
    // Set semantics of conjunction: drop duplicate atoms within each group
    // up front (idempotence), which also removes the most common source of
    // ties in the search.
    let mut atoms: Vec<(Atom, &str)> = Vec::new();
    for (group, tag) in groups {
        for atom in *group {
            if !atoms.iter().any(|(a, t)| t == tag && a == atom) {
                atoms.push((atom.clone(), tag));
            }
        }
    }
    // Answer variables are pinned first, in answer-tuple order (the answer
    // tuple is semantically ordered, so this is not a degree of freedom).
    let mut assignment: BTreeMap<Variable, usize> = BTreeMap::new();
    for term in answer {
        if let Term::Variable(v) = term {
            let next = assignment.len();
            assignment.entry(*v).or_insert(next);
        }
    }
    let mut header = String::from("(");
    for (i, term) in answer.iter().enumerate() {
        if i > 0 {
            header.push(',');
        }
        serialize_term(&mut header, term, &assignment);
    }
    header.push_str(") ");

    let mut search = CanonicalSearch {
        atoms,
        best: None,
        nodes: 0,
    };
    let used = vec![false; search.atoms.len()];
    search.explore(&header, &used, &assignment);
    match search.best {
        Some(best) => best,
        // Budget exhausted (pathologically symmetric body): fall back to the
        // greedy serialization — no tie branching, first minimal candidate
        // wins. Still a *faithful* serialization of the query (equal texts
        // imply α-equivalent queries, so deduplication never over-merges),
        // merely no longer guaranteed invariant under input order.
        None => greedy_text(&header, &search.atoms, &assignment),
    }
}

struct CanonicalSearch<'a> {
    atoms: Vec<(Atom, &'a str)>,
    best: Option<String>,
    nodes: usize,
}

impl CanonicalSearch<'_> {
    /// Depth-first branch-and-bound: at each level serialize every unused
    /// atom under the current variable assignment (numbering its unseen
    /// variables tentatively, in atom-local order), keep only the atoms
    /// whose serialization is lexicographically minimal, and branch on those
    /// ties. Atom serializations are prefix-free (indices are fixed-width,
    /// names are delimited), so the greedy minimal prefix is the global
    /// minimum and non-minimal branches can be discarded outright.
    fn explore(&mut self, prefix: &str, used: &[bool], assignment: &BTreeMap<Variable, usize>) {
        self.nodes += 1;
        if self.nodes > CANONICAL_NODE_BUDGET {
            self.best = None;
            return;
        }
        if used.iter().all(|&u| u) {
            match &self.best {
                Some(best) if best.as_str() <= prefix => {}
                _ => self.best = Some(prefix.to_string()),
            }
            return;
        }
        let mut min_text: Option<String> = None;
        let mut ties: Vec<usize> = Vec::new();
        for (i, (atom, tag)) in self.atoms.iter().enumerate() {
            if used[i] {
                continue;
            }
            let text = serialize_atom(atom, tag, assignment);
            match &min_text {
                Some(current) => {
                    if text < *current {
                        min_text = Some(text);
                        ties.clear();
                        ties.push(i);
                    } else if text == *current {
                        ties.push(i);
                    }
                }
                None => {
                    min_text = Some(text);
                    ties.push(i);
                }
            }
        }
        let min_text = min_text.expect("some atom is unused");
        for i in ties {
            let mut next_assignment = assignment.clone();
            for term in &self.atoms[i].0.terms {
                if let Term::Variable(v) = term {
                    let next = next_assignment.len();
                    next_assignment.entry(*v).or_insert(next);
                }
            }
            let mut next_prefix = String::with_capacity(prefix.len() + min_text.len() + 1);
            next_prefix.push_str(prefix);
            next_prefix.push_str(&min_text);
            next_prefix.push(';');
            let mut next_used = used.to_vec();
            next_used[i] = true;
            self.explore(&next_prefix, &next_used, &next_assignment);
            if self.nodes > CANONICAL_NODE_BUDGET {
                return;
            }
        }
    }
}

/// Serialize one atom under a (partial) variable assignment. Variables not
/// yet assigned are numbered tentatively, continuing from the assignment
/// size in atom-local first-occurrence order — exactly the numbers they
/// would receive if this atom were chosen next.
fn serialize_atom(atom: &Atom, tag: &str, assignment: &BTreeMap<Variable, usize>) -> String {
    let mut local: BTreeMap<Variable, usize> = BTreeMap::new();
    let mut out = String::new();
    out.push_str(tag);
    out.push_str(atom.predicate.name_str());
    out.push('(');
    for (i, term) in atom.terms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match term {
            Term::Variable(v) => {
                let id = assignment.get(v).copied().unwrap_or_else(|| {
                    let next = assignment.len() + local.len();
                    *local.entry(*v).or_insert(next)
                });
                write!(out, "?{id:04}").unwrap();
            }
            other => serialize_term(&mut out, other, assignment),
        }
    }
    out.push(')');
    out
}

fn serialize_term(out: &mut String, term: &Term, assignment: &BTreeMap<Variable, usize>) {
    match term {
        Term::Constant(c) => {
            // Escape the delimiter characters: the canonical text must be a
            // *faithful* serialization (equal texts ⇒ equal queries), which
            // an embedded unescaped quote would break — a constant spelled
            // `x","y` must not read like two constants.
            let escaped = c.name().replace('\\', "\\\\").replace('"', "\\\"");
            write!(out, "\"{escaped}\"").unwrap();
        }
        Term::Variable(v) => match assignment.get(v) {
            Some(id) => write!(out, "?{id:04}").unwrap(),
            None => write!(out, "?unbound").unwrap(),
        },
        Term::Null(n) => {
            write!(out, "_:n{}", n.id()).unwrap();
        }
    }
}

/// Greedy (branch-free) serialization used when the exact search exhausts
/// its budget: repeatedly append the lexicographically minimal unused atom
/// under the evolving assignment, first tie wins. Faithful but only
/// heuristically order-invariant.
fn greedy_text(
    header: &str,
    atoms: &[(Atom, &str)],
    assignment: &BTreeMap<Variable, usize>,
) -> String {
    let mut assignment = assignment.clone();
    let mut used = vec![false; atoms.len()];
    let mut out = String::from(header);
    for _ in 0..atoms.len() {
        let (i, text) = atoms
            .iter()
            .enumerate()
            .filter(|(i, _)| !used[*i])
            .map(|(i, (a, tag))| (i, serialize_atom(a, tag, &assignment)))
            .min_by(|(_, a), (_, b)| a.cmp(b))
            .expect("an unused atom remains");
        used[i] = true;
        for term in &atoms[i].0.terms {
            if let Term::Variable(v) = term {
                let next = assignment.len();
                assignment.entry(*v).or_insert(next);
            }
        }
        out.push_str(&text);
        out.push(';');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::{parse_program, parse_query};

    #[test]
    fn alpha_renamed_queries_share_a_fingerprint() {
        let a = parse_query("q(X) :- teaches(X, C), attends(S, C)").unwrap();
        let b = parse_query("q(T) :- teaches(T, K), attends(Z, K)").unwrap();
        assert_eq!(fingerprint_query(&a), fingerprint_query(&b));
    }

    #[test]
    fn atom_order_does_not_matter() {
        let a = parse_query("q(X) :- teaches(X, C), attends(S, C)").unwrap();
        let b = parse_query("q(X) :- attends(S, C), teaches(X, C)").unwrap();
        assert_eq!(canonical_query_text(&a), canonical_query_text(&b));
        assert_eq!(fingerprint_query(&a), fingerprint_query(&b));
    }

    #[test]
    fn renaming_and_reordering_together() {
        let a = parse_query("q(X, Y) :- r(X, Z), s(Z, Y), t(Y, X)").unwrap();
        let b = parse_query("q(A, B) :- t(B, A), s(W, B), r(A, W)").unwrap();
        assert_eq!(fingerprint_query(&a), fingerprint_query(&b));
    }

    #[test]
    fn query_name_does_not_matter() {
        let a = parse_query("q(X) :- person(X)").unwrap();
        let b = parse_query("people(X) :- person(X)").unwrap();
        assert_eq!(fingerprint_query(&a), fingerprint_query(&b));
    }

    #[test]
    fn duplicate_atoms_are_idempotent() {
        let a = parse_query("q(X) :- r(X, Y), r(X, Y)").unwrap();
        let b = parse_query("q(X) :- r(X, Y)").unwrap();
        assert_eq!(fingerprint_query(&a), fingerprint_query(&b));
    }

    #[test]
    fn different_queries_get_different_fingerprints() {
        let a = parse_query("q(X) :- person(X)").unwrap();
        let b = parse_query("q(X) :- student(X)").unwrap();
        assert_ne!(fingerprint_query(&a), fingerprint_query(&b));
        // Same atoms, different join structure.
        let c = parse_query("q(X) :- r(X, Y), s(Y, Z)").unwrap();
        let d = parse_query("q(X) :- r(X, Y), s(X, Z)").unwrap();
        assert_ne!(fingerprint_query(&c), fingerprint_query(&d));
    }

    #[test]
    fn answer_variable_choice_matters() {
        let a = parse_query("q(X) :- r(X, Y)").unwrap();
        let b = parse_query("q(Y) :- r(X, Y)").unwrap();
        assert_ne!(fingerprint_query(&a), fingerprint_query(&b));
    }

    #[test]
    fn constants_with_quotes_do_not_collide_across_arities() {
        // Without escaping, r/1 over the constant `x","y` and r/2 over
        // (`x`, `y`) would serialize identically.
        let tricky =
            ConjunctiveQuery::boolean(vec![Atom::new("r", vec![Term::constant("x\",\"y")])]);
        let plain = ConjunctiveQuery::boolean(vec![Atom::new(
            "r",
            vec![Term::constant("x"), Term::constant("y")],
        )]);
        assert_ne!(canonical_query_text(&tricky), canonical_query_text(&plain));
        assert_ne!(fingerprint_query(&tricky), fingerprint_query(&plain));
        // Backslashes are escaped too, so `a\` + `"b` ≠ `a\"` + `b`-ish games.
        let a = ConjunctiveQuery::boolean(vec![Atom::new(
            "r",
            vec![Term::constant("a\\"), Term::constant("b")],
        )]);
        let b = ConjunctiveQuery::boolean(vec![Atom::new(
            "r",
            vec![Term::constant("a"), Term::constant("\\b")],
        )]);
        assert_ne!(fingerprint_query(&a), fingerprint_query(&b));
    }

    #[test]
    fn constants_are_distinguished_from_variables() {
        let a = parse_query("q(X) :- r(X, a)").unwrap();
        let b = parse_query("q(X) :- r(X, Y)").unwrap();
        assert_ne!(fingerprint_query(&a), fingerprint_query(&b));
        let c = parse_query("q(X) :- r(X, b)").unwrap();
        assert_ne!(fingerprint_query(&a), fingerprint_query(&c));
    }

    #[test]
    fn symmetric_bodies_are_still_invariant() {
        // A 3-cycle: every rotation is an automorphism, so the search
        // branches on ties — all branches must agree on the minimum.
        let a = parse_query("q() :- r(X, Y), r(Y, Z), r(Z, X)").unwrap();
        let b = parse_query("q() :- r(C, A), r(A, B), r(B, C)").unwrap();
        assert_eq!(canonical_query_text(&a), canonical_query_text(&b));
        // ... and a 3-cycle is not a 3-chain.
        let c = parse_query("q() :- r(X, Y), r(Y, Z), r(Z, W)").unwrap();
        assert_ne!(fingerprint_query(&a), fingerprint_query(&c));
    }

    #[test]
    fn program_fingerprint_ignores_order_labels_and_variable_names() {
        let a = parse_program(
            "[R1] student(X) -> person(X).\n\
             [R2] professor(P) -> employee(P).",
        )
        .unwrap();
        let b = parse_program(
            "[Other] professor(Z) -> employee(Z).\n\
             [Names] student(W) -> person(W).",
        )
        .unwrap();
        assert_eq!(fingerprint_program(&a), fingerprint_program(&b));
    }

    #[test]
    fn program_fingerprint_separates_different_programs() {
        let a = parse_program("[R1] student(X) -> person(X).").unwrap();
        let b = parse_program("[R1] student(X) -> employee(X).").unwrap();
        assert_ne!(fingerprint_program(&a), fingerprint_program(&b));
    }

    #[test]
    fn rule_canonicalization_keeps_frontier_links() {
        // X is a frontier variable in one, not the other.
        let a = parse_tgd_text("r(X, Y) -> s(X)");
        let b = parse_tgd_text("r(X, Y) -> s(Z)");
        assert_ne!(canonical_rule_text(&a), canonical_rule_text(&b));
        // Head atom order is abstracted away.
        let c = parse_tgd_text("r(X, Y) -> s(X), t(Y)");
        let d = parse_tgd_text("r(X, Y) -> t(Y), s(X)");
        assert_eq!(canonical_rule_text(&c), canonical_rule_text(&d));
    }

    fn parse_tgd_text(text: &str) -> Tgd {
        ontorew_model::parse_tgd(text).unwrap()
    }

    #[test]
    fn prepared_key_combines_both_fingerprints() {
        let p = parse_program("[R1] student(X) -> person(X).").unwrap();
        let q = parse_query("q(X) :- person(X)").unwrap();
        let key = prepared_key(&p, &q);
        assert_eq!(key.program, fingerprint_program(&p));
        assert_eq!(key.query, fingerprint_query(&q));
        let shown = key.to_string();
        assert!(shown.starts_with('p') && shown.contains("/q"));
    }

    #[test]
    fn fingerprints_are_stable_across_calls() {
        let q = parse_query("q(X) :- person(X)").unwrap();
        assert_eq!(fingerprint_query(&q), fingerprint_query(&q));
    }
}
