//! E7: scaling of the WR membership test (P-node graph) versus the SWR test on
//! the same programs — the PTIME vs PSPACE gap discussed in §7 of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ontorew_core::{check_wr_with, is_swr, PNodeGraphConfig};
use ontorew_workloads::{chain_program, star_program};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        ontorew_bench::experiment_wr_scaling(&[4, 8, 16, 32], 4_000)
    );

    let mut group = c.benchmark_group("wr_vs_swr_check");
    group.sample_size(10);
    for rules in [4usize, 8, 16, 32] {
        let chain = chain_program(rules);
        let star = star_program(rules);
        group.bench_with_input(BenchmarkId::new("swr/chain", rules), &chain, |b, p| {
            b.iter(|| is_swr(std::hint::black_box(p)))
        });
        group.bench_with_input(BenchmarkId::new("wr/chain", rules), &chain, |b, p| {
            b.iter(|| {
                check_wr_with(
                    std::hint::black_box(p),
                    &PNodeGraphConfig { max_nodes: 4_000 },
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("swr/star", rules), &star, |b, p| {
            b.iter(|| is_swr(std::hint::black_box(p)))
        });
        group.bench_with_input(BenchmarkId::new("wr/star", rules), &star, |b, p| {
            b.iter(|| {
                check_wr_with(
                    std::hint::black_box(p),
                    &PNodeGraphConfig { max_nodes: 4_000 },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
