//! E12 (ablation): the two design knobs of the rewriting engine —
//! subsumption pruning of the generated UCQ and factorization steps —
//! measured on the LUBM-style and sensor-network suites.
//!
//! Pruning trades a containment check per generated CQ for a smaller final
//! UCQ (cheaper evaluation); factorization is required for completeness in
//! general but costs extra steps. The table reports final UCQ sizes, the
//! criterion group reports rewriting wall time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ontorew_model::parse_query;
use ontorew_rewrite::{rewrite, RewriteConfig};
use ontorew_workloads::{lubm_style_ontology, sensor_network_ontology};

fn bench(c: &mut Criterion) {
    let suites = [
        (
            "lubm",
            lubm_style_ontology(),
            parse_query("q(S, C) :- takesCourse(S, C), teaches(P, C), professor(P)").unwrap(),
        ),
        (
            "sensor",
            sensor_network_ontology(),
            parse_query("q(M) :- monitors(M, E), locatedIn(E, F), facility(F)").unwrap(),
        ),
    ];

    println!("E12: rewriting ablation (disjuncts in the final UCQ / steps taken)");
    println!("suite    config                        disjuncts   steps   complete");
    for (name, ontology, query) in &suites {
        let configs = [
            ("full (prune + factorize)", RewriteConfig::default()),
            ("no pruning", RewriteConfig::default().without_pruning()),
            (
                "no factorization",
                RewriteConfig::default().without_factorization(),
            ),
            (
                "neither",
                RewriteConfig::default()
                    .without_pruning()
                    .without_factorization(),
            ),
        ];
        for (label, config) in configs {
            let rewriting = rewrite(ontology, query, &config);
            println!(
                "{name:<8} {label:<29} {:>9}   {:>5}   {}",
                rewriting.ucq.len(),
                rewriting.stats.steps,
                rewriting.complete
            );
        }
    }

    let mut group = c.benchmark_group("rewriting_ablation");
    group.sample_size(20);
    for (name, ontology, query) in &suites {
        for (label, config) in [
            ("full", RewriteConfig::default()),
            ("no_pruning", RewriteConfig::default().without_pruning()),
            (
                "no_factorization",
                RewriteConfig::default().without_factorization(),
            ),
        ] {
            group.bench_with_input(BenchmarkId::new(*name, label), &config, |b, cfg| {
                b.iter(|| rewrite(std::hint::black_box(ontology), query, cfg))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
