//! E11: chase engine scaling — the naive (full rescan) versus the semi-naive
//! (delta-driven, index-backed) chase on Datalog transitive closure and on
//! the E8 university workload, at growing sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ontorew_bench::{chain_edges, transitive_closure_program};
use ontorew_chase::{chase, ChaseConfig, ChaseStrategy};
use ontorew_core::examples::university_ontology;
use ontorew_workloads::university_abox;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        ontorew_bench::experiment_chase_scaling(&[32, 64], &[200])
    );

    let tc = transitive_closure_program();
    let mut group = c.benchmark_group("chase_scaling/transitive_closure");
    group.sample_size(10);
    for size in [32usize, 64, 128] {
        let db = chain_edges(size);
        let config = ChaseConfig::restricted(size + 2);
        group.throughput(Throughput::Elements(db.len() as u64));
        group.bench_with_input(BenchmarkId::new("semi_naive", size), &size, |b, _| {
            b.iter(|| chase(&tc, &db, &config))
        });
        group.bench_with_input(BenchmarkId::new("naive", size), &size, |b, _| {
            b.iter(|| chase(&tc, &db, &config.with_strategy(ChaseStrategy::Naive)))
        });
    }
    group.finish();

    let ontology = university_ontology();
    let mut group = c.benchmark_group("chase_scaling/university");
    group.sample_size(10);
    for students in [500usize, 2_000] {
        let db = university_abox(students, students / 10 + 1, students / 5 + 1, 17);
        group.throughput(Throughput::Elements(db.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("semi_naive", students),
            &students,
            |b, _| b.iter(|| chase(&ontology, &db, &ChaseConfig::default())),
        );
        group.bench_with_input(BenchmarkId::new("naive", students), &students, |b, _| {
            b.iter(|| chase(&ontology, &db, &ChaseConfig::naive()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
