//! E10: bounded-rewriting approximation on the non-WR Example 2 — cost of the
//! approximation per depth bound and of the query-pattern analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ontorew_core::examples::{example2, example2_query};
use ontorew_rewrite::{analyze_patterns, approximate_rewrite};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        ontorew_bench::experiment_approximation_quality(&[1, 2, 3, 4, 5])
    );

    let program = example2();
    let query = example2_query();
    let mut group = c.benchmark_group("approximation");
    group.sample_size(10);
    for depth in [2usize, 4, 6] {
        group.bench_with_input(
            BenchmarkId::new("approximate_rewrite", depth),
            &depth,
            |b, &d| b.iter(|| approximate_rewrite(&program, &query, d)),
        );
        group.bench_with_input(
            BenchmarkId::new("pattern_analysis", depth),
            &depth,
            |b, &d| b.iter(|| analyze_patterns(&program, &query, d)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
