//! E6: scaling of the PTIME SWR membership test with the number of rules,
//! across the chain, star and random families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ontorew_core::is_swr;
use ontorew_workloads::{chain_program, random_program, star_program, RandomProgramConfig};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        ontorew_bench::experiment_swr_scaling(&[10, 50, 100, 250])
    );

    let mut group = c.benchmark_group("swr_check");
    group.sample_size(20);
    for rules in [10usize, 50, 100, 250, 500] {
        group.bench_with_input(BenchmarkId::new("chain", rules), &rules, |b, &n| {
            let p = chain_program(n);
            b.iter(|| is_swr(std::hint::black_box(&p)))
        });
        group.bench_with_input(BenchmarkId::new("star", rules), &rules, |b, &n| {
            let p = star_program(n);
            b.iter(|| is_swr(std::hint::black_box(&p)))
        });
        group.bench_with_input(BenchmarkId::new("random", rules), &rules, |b, &n| {
            let p = random_program(&RandomProgramConfig {
                rules: n,
                predicates: n / 2 + 2,
                ..RandomProgramConfig::default()
            });
            b.iter(|| is_swr(std::hint::black_box(&p)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
