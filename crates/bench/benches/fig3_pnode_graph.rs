//! E3 / Figure 3: P-node graph construction and WR check for Example 2.

use criterion::{criterion_group, criterion_main, Criterion};
use ontorew_core::examples::example2;
use ontorew_core::{check_wr, PNodeGraph, PNodeGraphConfig};

fn bench(c: &mut Criterion) {
    println!("{}", ontorew_bench::experiment_fig3());

    let program = example2();
    c.bench_function("fig3/pnode_graph_build", |b| {
        b.iter(|| PNodeGraph::build(std::hint::black_box(&program), &PNodeGraphConfig::default()))
    });
    c.bench_function("fig3/wr_check", |b| {
        b.iter(|| check_wr(std::hint::black_box(&program)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
