//! E12: the serving layer — uncached `answer_by_rewriting` versus the
//! prepared-query cache path of `ontorew-serve`, on the university workload.

use criterion::{criterion_group, criterion_main, Criterion};
use ontorew_core::examples::university_ontology;
use ontorew_rewrite::{answer_by_rewriting, RewriteConfig};
use ontorew_serve::{QueryService, ServiceConfig};
use ontorew_storage::RelationalStore;
use ontorew_workloads::university_abox;

fn bench(c: &mut Criterion) {
    println!("{}", ontorew_bench::experiment_serve_throughput(500, 20, 2));

    let ontology = university_ontology();
    let data = university_abox(2_000, 201, 401, 17);
    let store = RelationalStore::from_instance(&data);
    let queries = ontorew_bench::serving_query_mix();
    let service = QueryService::new(ontology.clone(), store.clone(), ServiceConfig::default());
    // Warm the cache so the served path measures the steady state.
    for q in &queries {
        service.query(q).expect("warmup");
    }

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    group.bench_function("uncached_mix", |b| {
        b.iter(|| {
            for q in &queries {
                answer_by_rewriting(&ontology, q, &store, &RewriteConfig::default());
            }
        })
    });
    group.bench_function("served_warm_mix", |b| {
        b.iter(|| {
            for q in &queries {
                service.query(q).expect("served");
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
