//! E8: end-to-end query answering — rewriting + evaluation versus chase
//! materialization — on the university workload, sweeping the data size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ontorew_chase::{certain_answers, ChaseConfig};
use ontorew_core::examples::{university_ontology, university_query};
use ontorew_rewrite::{answer_by_rewriting, rewrite, RewriteConfig};
use ontorew_storage::RelationalStore;
use ontorew_workloads::university_abox;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        ontorew_bench::experiment_rewriting_vs_chase(&[50, 200])
    );

    let ontology = university_ontology();
    let query = university_query();
    // The rewriting itself (independent of the data size).
    c.bench_function("rewriting_vs_chase/rewrite_only", |b| {
        b.iter(|| rewrite(&ontology, &query, &RewriteConfig::default()))
    });

    let mut group = c.benchmark_group("rewriting_vs_chase/answer");
    group.sample_size(10);
    for students in [100usize, 500, 2_000] {
        let data = university_abox(students, students / 10 + 1, students / 5 + 1, 17);
        let store = RelationalStore::from_instance(&data);
        group.throughput(Throughput::Elements(data.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("rewriting", students),
            &students,
            |b, _| {
                b.iter(|| answer_by_rewriting(&ontology, &query, &store, &RewriteConfig::default()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("materialization", students),
            &students,
            |b, _| b.iter(|| certain_answers(&ontology, &data, &query, &ChaseConfig::default())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
