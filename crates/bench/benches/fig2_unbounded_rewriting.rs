//! E2 / Figure 2: the position graph of Example 2 and the growth of the
//! rewriting of `q() :- r("a", x)` with the depth bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ontorew_core::examples::{example2, example2_query};
use ontorew_rewrite::{rewrite, RewriteConfig};

fn bench(c: &mut Criterion) {
    println!("{}", ontorew_bench::experiment_fig2(&[1, 2, 3, 4, 5, 6, 7]));

    let program = example2();
    let query = example2_query();
    let mut group = c.benchmark_group("fig2/bounded_rewriting");
    group.sample_size(10);
    for depth in [1usize, 3, 5, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                rewrite(
                    std::hint::black_box(&program),
                    std::hint::black_box(&query),
                    &RewriteConfig::with_depth(depth).without_pruning(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
