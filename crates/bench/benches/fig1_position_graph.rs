//! E1 / Figure 1: position graph construction and SWR check for Example 1.

use criterion::{criterion_group, criterion_main, Criterion};
use ontorew_core::examples::example1;
use ontorew_core::{is_swr, PositionGraph};

fn bench(c: &mut Criterion) {
    // Print the reproduced figure data once, outside measurement.
    println!("{}", ontorew_bench::experiment_fig1());

    let program = example1();
    c.bench_function("fig1/position_graph_build", |b| {
        b.iter(|| PositionGraph::build(std::hint::black_box(&program)))
    });
    c.bench_function("fig1/swr_check", |b| {
        b.iter(|| is_swr(std::hint::black_box(&program)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
