//! E4 / Example 3: full classification of the paper's separation example and
//! the terminating rewriting over it.

use criterion::{criterion_group, criterion_main, Criterion};
use ontorew_core::{classify, examples::example3};
use ontorew_model::parse_query;
use ontorew_rewrite::{rewrite, RewriteConfig};

fn bench(c: &mut Criterion) {
    println!("{}", ontorew_bench::experiment_example3());

    let program = example3();
    let query = parse_query("ans(A, B) :- s(A, A, B)").unwrap();
    c.bench_function("ex3/classify_all_classes", |b| {
        b.iter(|| classify(std::hint::black_box(&program)))
    });
    c.bench_function("ex3/rewriting_terminates", |b| {
        b.iter(|| {
            let r = rewrite(
                std::hint::black_box(&program),
                std::hint::black_box(&query),
                &RewriteConfig::default(),
            );
            assert!(r.complete);
            r
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
