//! E5: class subsumption on generated simple-TGD families — every Linear /
//! Sticky draw must be SWR, every SWR draw must be WR — and the cost of the
//! full classification pipeline per program size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ontorew_core::classify;
use ontorew_workloads::{random_program, RandomProgramConfig};

fn bench(c: &mut Criterion) {
    println!("{}", ontorew_bench::experiment_class_subsumption(40, 8));

    let mut group = c.benchmark_group("class_subsumption/classify_random");
    group.sample_size(10);
    for rules in [10usize, 25, 50, 100] {
        let program = random_program(&RandomProgramConfig {
            rules,
            predicates: rules / 2 + 2,
            ..RandomProgramConfig::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(rules), &program, |b, p| {
            b.iter(|| classify(std::hint::black_box(p)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
