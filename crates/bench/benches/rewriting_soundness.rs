//! E9: the rewriting-vs-chase cross-check (Theorem 1 in executable form),
//! benchmarked end to end through the OBDA facade.

use criterion::{criterion_group, criterion_main, Criterion};
use ontorew_core::examples::{university_ontology, university_query};
use ontorew_obda::{cross_check, ObdaSystem};
use ontorew_workloads::university_abox;

fn bench(c: &mut Criterion) {
    println!("{}", ontorew_bench::experiment_rewriting_soundness());

    let system = ObdaSystem::new(university_ontology(), university_abox(80, 8, 16, 23));
    let query = university_query();
    let mut group = c.benchmark_group("rewriting_soundness");
    group.sample_size(10);
    group.bench_function("cross_check_university", |b| {
        b.iter(|| {
            let report = cross_check(&system, &query);
            assert!(report.is_consistent());
            report
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
