//! E11 (ablation): what the evaluator's optimisations buy on the OBDA hot
//! path — greedy join reordering and lazy per-column hash indexes — measured
//! on a rewritten query over the sensor-network suite.
//!
//! The rewriting-based answering loop of E8 evaluates every disjunct of the
//! rewriting over the extensional store; this ablation isolates that
//! evaluation step and toggles `EvalConfig::reorder_atoms` /
//! `EvalConfig::use_indexes`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ontorew_model::parse_query;
use ontorew_rewrite::{rewrite, RewriteConfig};
use ontorew_storage::{evaluate_cq_instrumented, EvalConfig, RelationalStore, StoreStatistics};
use ontorew_workloads::{sensor_network_abox, sensor_network_ontology};

fn bench(c: &mut Criterion) {
    let ontology = sensor_network_ontology();
    let query = parse_query("q(A, S) :- implicates(A, S), criticalAlarm(A)").unwrap();
    let rewriting = rewrite(&ontology, &query, &RewriteConfig::default());

    println!("E11: evaluator ablation on q(A, S) :- implicates(A, S), criticalAlarm(A)");
    println!("data size   config                      rows fetched   answers");
    for &measurements in &[1_000usize, 5_000, 20_000] {
        let data = sensor_network_abox(measurements / 50 + 10, 8, measurements, 7);
        let store = RelationalStore::from_instance(&data);
        let stats = StoreStatistics::collect(&store);
        let configs: [(&str, EvalConfig<'_>); 4] = [
            (
                "baseline (no planner/index)",
                EvalConfig {
                    reorder_atoms: false,
                    use_indexes: false,
                    ..EvalConfig::default()
                },
            ),
            (
                "indexes only",
                EvalConfig {
                    reorder_atoms: false,
                    use_indexes: true,
                    ..EvalConfig::default()
                },
            ),
            ("planner + indexes", EvalConfig::default()),
            (
                "planner + indexes + stats",
                EvalConfig {
                    statistics: Some(&stats),
                    ..EvalConfig::default()
                },
            ),
        ];
        for (label, config) in &configs {
            let mut fetched = 0usize;
            let mut answers = 0usize;
            for disjunct in rewriting.ucq.iter() {
                let (rows, counters) = evaluate_cq_instrumented(&store, disjunct, config);
                fetched += counters.rows_fetched;
                answers = answers.max(rows.len());
            }
            println!("{measurements:>9}   {label:<27} {fetched:>12}   {answers:>7}");
        }
    }

    let data = sensor_network_abox(200, 8, 10_000, 7);
    let store = RelationalStore::from_instance(&data);
    let stats = StoreStatistics::collect(&store);
    let mut group = c.benchmark_group("planner_ablation");
    group.sample_size(20);
    let cases: [(&str, EvalConfig<'_>); 3] = [
        (
            "no_planner_no_index",
            EvalConfig {
                reorder_atoms: false,
                use_indexes: false,
                ..EvalConfig::default()
            },
        ),
        ("planner_index", EvalConfig::default()),
        (
            "planner_index_stats",
            EvalConfig {
                statistics: Some(&stats),
                ..EvalConfig::default()
            },
        ),
    ];
    for (label, config) in cases {
        group.bench_with_input(BenchmarkId::new("ucq_eval", label), &config, |b, cfg| {
            b.iter(|| {
                let mut total = 0usize;
                for disjunct in rewriting.ucq.iter() {
                    let (rows, _) =
                        evaluate_cq_instrumented(std::hint::black_box(&store), disjunct, cfg);
                    total += rows.len();
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
