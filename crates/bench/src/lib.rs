//! # ontorew-bench
//!
//! The benchmark harness that regenerates every figure and experiment
//! (E1–E16). Each experiment is available both as a Criterion bench target
//! (`cargo bench -p ontorew-bench`) and as a plain function used by the
//! `run_experiments` binary, which prints the tables (or, with `--json`,
//! NDJSON consumed by `scripts/record_baseline.sh`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use ontorew_chase::{certain_answers, chase, ChaseConfig, ChaseStrategy};
use ontorew_core::examples::{
    example1, example2, example2_query, example3, university_ontology, university_query,
};
use ontorew_core::{
    check_wr_with, classify, is_swr, PNodeGraph, PNodeGraphConfig, PositionGraph, WrVerdict,
};
use ontorew_model::parse_query;
use ontorew_model::prelude::*;
use ontorew_obda::{cross_check, ObdaSystem, Strategy};
use ontorew_rewrite::{
    answer_by_rewriting, approximate_rewrite, rewrite, rewriting_growth, RewriteConfig,
};
use ontorew_storage::RelationalStore;
use ontorew_workloads::{
    chain_program, hierarchy_program, random_program, star_program, university_abox,
    RandomProgramConfig,
};
use std::fmt::Write as _;
use std::time::Instant;

/// E1 — Figure 1: build the position graph of Example 1 and report its shape
/// and the SWR verdict. Returns the printable table.
pub fn experiment_fig1() -> String {
    let program = example1();
    let graph = PositionGraph::build(&program);
    let mut out = String::new();
    writeln!(out, "E1 / Figure 1 — position graph of Example 1").unwrap();
    writeln!(
        out,
        "nodes={} edges={} m-edges={} s-edges={} dangerous-cycle={} SWR={}",
        graph.node_count(),
        graph.edge_count(),
        graph.m_edge_count(),
        graph.s_edge_count(),
        graph.has_dangerous_cycle(),
        is_swr(&program)
    )
    .unwrap();
    for (from, to, labels) in graph.edges() {
        let labels: Vec<String> = labels.iter().map(|l| format!("{l:?}")).collect();
        writeln!(out, "  {from} -> {to} [{}]", labels.join(",")).unwrap();
    }
    out
}

/// E2 — Figure 2 + the unbounded rewriting of Example 2: position-graph shape
/// plus the growth of the rewriting with the depth bound.
pub fn experiment_fig2(depths: &[usize]) -> String {
    let program = example2();
    let graph = PositionGraph::build(&program);
    let mut out = String::new();
    writeln!(
        out,
        "E2 / Figure 2 — position graph of Example 2 + rewriting growth"
    )
    .unwrap();
    writeln!(
        out,
        "position graph: nodes={} edges={} s-edges={} dangerous-cycle={} (the false negative)",
        graph.node_count(),
        graph.edge_count(),
        graph.s_edge_count(),
        graph.has_dangerous_cycle()
    )
    .unwrap();
    writeln!(out, "depth  generated-CQs  complete").unwrap();
    for (depth, generated, complete) in rewriting_growth(&program, &example2_query(), depths) {
        writeln!(out, "{depth:>5}  {generated:>13}  {complete}").unwrap();
    }
    out
}

/// E3 — Figure 3: build the P-node graph of Example 2 and report the
/// dangerous cycle and the WR verdict.
pub fn experiment_fig3() -> String {
    let program = example2();
    let graph = PNodeGraph::build(&program, &PNodeGraphConfig::default());
    let report = ontorew_core::check_wr(&program);
    let mut out = String::new();
    writeln!(out, "E3 / Figure 3 — P-node graph of Example 2").unwrap();
    writeln!(
        out,
        "nodes={} edges={} dangerous-cycle={} WR-verdict={:?}",
        graph.node_count(),
        graph.edge_count(),
        graph.has_dangerous_cycle(),
        report.verdict
    )
    .unwrap();
    if let Some(nodes) = graph.dangerous_nodes() {
        writeln!(out, "dangerous SCC:").unwrap();
        for n in nodes {
            writeln!(out, "  {n}").unwrap();
        }
    }
    out
}

/// E4 — Example 3: membership in every class (the separation the paper uses
/// to motivate WR).
pub fn experiment_example3() -> String {
    let report = classify(&example3());
    let mut out = String::new();
    writeln!(out, "E4 / Example 3 — class separation").unwrap();
    writeln!(
        out,
        "linear={} multilinear={} sticky={} sticky-join(adv.)={} SWR={} WR={:?} FO-rewritable={}",
        report.linear,
        report.multilinear,
        report.sticky,
        report.sticky_join,
        report.swr.is_swr,
        report.wr.verdict,
        report.fo_rewritable()
    )
    .unwrap();
    out
}

/// E5 — class subsumption on generated simple-TGD families: every Linear /
/// Multilinear / Sticky program drawn must be SWR (§5 of the paper), and every
/// SWR program must be WR.
pub fn experiment_class_subsumption(seeds: u64, rules_per_program: usize) -> String {
    let mut total = 0usize;
    let mut linear_and_swr = 0usize;
    let mut sticky_and_swr = 0usize;
    let mut swr_count = 0usize;
    let mut swr_and_wr = 0usize;
    let mut violations = 0usize;
    for seed in 0..seeds {
        let program = random_program(&RandomProgramConfig {
            rules: rules_per_program,
            predicates: 6,
            max_arity: 3,
            max_body_atoms: 2,
            existential_probability: 0.3,
            seed,
        });
        total += 1;
        let report = classify(&program);
        if report.linear || report.multilinear || report.sticky {
            if report.swr.is_swr {
                if report.linear {
                    linear_and_swr += 1;
                }
                if report.sticky {
                    sticky_and_swr += 1;
                }
            } else {
                violations += 1;
            }
        }
        if report.swr.is_swr {
            swr_count += 1;
            if report.wr.verdict == WrVerdict::WeaklyRecursive {
                swr_and_wr += 1;
            }
        }
    }
    let mut out = String::new();
    writeln!(
        out,
        "E5 — class subsumption on {total} random simple programs"
    )
    .unwrap();
    writeln!(
        out,
        "linear⊆SWR witnesses={linear_and_swr}  sticky⊆SWR witnesses={sticky_and_swr}  SWR programs={swr_count}  SWR∧WR={swr_and_wr}  subsumption violations={violations}"
    )
    .unwrap();
    out
}

/// E6 — SWR check scaling: wall-clock time of the SWR membership test on
/// chains, stars and random programs of growing size.
pub fn experiment_swr_scaling(sizes: &[usize]) -> String {
    let mut out = String::new();
    writeln!(out, "E6 — SWR (position graph) check scaling").unwrap();
    writeln!(out, "family      rules  micros  is_swr").unwrap();
    for &n in sizes {
        for (family, program) in [
            ("chain", chain_program(n)),
            ("star", star_program(n)),
            (
                "random",
                random_program(&RandomProgramConfig {
                    rules: n,
                    predicates: (n / 2).max(2),
                    ..RandomProgramConfig::default()
                }),
            ),
        ] {
            let start = Instant::now();
            let verdict = is_swr(&program);
            let micros = start.elapsed().as_micros();
            writeln!(out, "{family:<10} {n:>6} {micros:>7}  {verdict}").unwrap();
        }
    }
    out
}

/// E7 — WR check scaling vs the SWR check on the same inputs (the PTIME →
/// PSPACE gap of §7).
pub fn experiment_wr_scaling(sizes: &[usize], max_nodes: usize) -> String {
    let mut out = String::new();
    writeln!(out, "E7 — WR (P-node graph) vs SWR check scaling").unwrap();
    writeln!(out, "family      rules  swr_us    wr_us  wr_nodes  verdict").unwrap();
    for &n in sizes {
        for (family, program) in [
            ("chain", chain_program(n)),
            ("star", star_program(n)),
            (
                "hierarchy",
                hierarchy_program((n as f64).log2().ceil() as usize),
            ),
        ] {
            let start = Instant::now();
            let _ = is_swr(&program);
            let swr_us = start.elapsed().as_micros();
            let start = Instant::now();
            let report = check_wr_with(&program, &PNodeGraphConfig { max_nodes });
            let wr_us = start.elapsed().as_micros();
            writeln!(
                out,
                "{family:<10} {:>6} {swr_us:>7} {wr_us:>8} {:>9}  {:?}",
                program.len(),
                report.graph_size.0,
                report.verdict
            )
            .unwrap();
        }
    }
    out
}

/// E8 — end-to-end answering: rewriting+evaluation vs chase materialization
/// on the university workload, sweeping the ABox size.
pub fn experiment_rewriting_vs_chase(student_counts: &[usize]) -> String {
    let ontology = university_ontology();
    let query = university_query();
    let rewriting = rewrite(&ontology, &query, &RewriteConfig::default());
    let mut out = String::new();
    writeln!(
        out,
        "E8 — rewriting vs materialization (university workload)"
    )
    .unwrap();
    writeln!(
        out,
        "rewriting: {} disjuncts, complete={}",
        rewriting.ucq.len(),
        rewriting.complete
    )
    .unwrap();
    writeln!(
        out,
        "students  facts  rewrite_ms  chase_ms  chase_facts  answers"
    )
    .unwrap();
    for &students in student_counts {
        let data = university_abox(students, students / 10 + 1, students / 5 + 1, 17);
        let facts = data.len();
        let store = RelationalStore::from_instance(&data);

        let start = Instant::now();
        let by_rewriting =
            answer_by_rewriting(&ontology, &query, &store, &RewriteConfig::default());
        let rewrite_ms = start.elapsed().as_millis();

        let start = Instant::now();
        let by_chase = certain_answers(&ontology, &data, &query, &ChaseConfig::default());
        let chase_ms = start.elapsed().as_millis();

        assert_eq!(
            by_rewriting.answers.len(),
            by_chase.answers.len(),
            "strategies disagree at {students} students"
        );
        writeln!(
            out,
            "{students:>8} {facts:>6} {rewrite_ms:>11} {chase_ms:>9} {:>12} {:>8}",
            by_chase.chase.facts,
            by_rewriting.answers.len()
        )
        .unwrap();
    }
    out
}

/// A transitive-closure chain database: edges `n0 -> n1 -> ... -> n_size`.
/// Shared between the E11 experiment and the `chase_scaling` bench.
pub fn chain_edges(size: usize) -> Instance {
    let mut db = Instance::new();
    for i in 0..size {
        db.insert_fact("edge", &[&format!("n{i}"), &format!("n{}", i + 1)]);
    }
    db
}

/// The Datalog transitive-closure program used by the E11 experiment and the
/// `chase_scaling` bench.
pub fn transitive_closure_program() -> TgdProgram {
    parse_program(
        "[R1] edge(X, Y) -> path(X, Y).\n\
         [R2] path(X, Y), edge(Y, Z) -> path(X, Z).",
    )
    .expect("transitive closure parses")
}

/// E11 — chase engine scaling: wall-clock of the naive (full rescan) vs the
/// semi-naive (delta-driven, index-backed) restricted chase on Datalog
/// transitive closure and on the university workload, at growing sizes.
pub fn experiment_chase_scaling(chain_lengths: &[usize], student_counts: &[usize]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "E11 — chase engine scaling: naive vs semi-naive (restricted chase)"
    )
    .unwrap();
    writeln!(
        out,
        "workload      size   facts  naive_ms  semi_ms  speedup  chase_facts"
    )
    .unwrap();
    let mut row =
        |workload: &str, size: usize, program: &TgdProgram, db: &Instance, rounds: usize| {
            let naive_config = ChaseConfig::restricted(rounds).with_strategy(ChaseStrategy::Naive);
            let start = Instant::now();
            let naive = chase(program, db, &naive_config);
            let naive_us = start.elapsed().as_micros() as f64;
            let start = Instant::now();
            let semi = chase(program, db, &ChaseConfig::restricted(rounds));
            let semi_us = start.elapsed().as_micros() as f64;
            assert_eq!(
                naive.instance.len(),
                semi.instance.len(),
                "engines disagree on {workload} at size {size}"
            );
            writeln!(
                out,
                "{workload:<12} {size:>5} {:>7} {:>9.1} {:>8.1} {:>7.1}x {:>12}",
                db.len(),
                naive_us / 1_000.0,
                semi_us / 1_000.0,
                naive_us / semi_us.max(1.0),
                semi.instance.len()
            )
            .unwrap();
        };
    let tc = transitive_closure_program();
    for &n in chain_lengths {
        row("tc-chain", n, &tc, &chain_edges(n), n + 2);
    }
    let ontology = university_ontology();
    for &students in student_counts {
        let db = university_abox(students, students / 10 + 1, students / 5 + 1, 17);
        row("university", students, &ontology, &db, 64);
    }
    out
}

/// The E12 serving mix: multi-atom join queries with class-membership atoms
/// over the university ontology — the DL-Lite-style conjunctive shape §1 of
/// the paper motivates, where the class hierarchy makes the rewriting
/// fixpoint (not the indexed evaluation) dominate the uncached cost, so a
/// prepared-query cache has real work to amortise. Shared between E12 and
/// the `serve_throughput` bench.
pub fn serving_query_mix() -> Vec<ConjunctiveQuery> {
    [
        "q(S, P) :- advisedBy(S, P), professor(P), employee(P), person(S)",
        "q(X) :- person(X), employee(X), faculty(X)",
        "q(T, C) :- teaches(T, C), employee(T), person(T)",
        "q(S) :- advisedBy(S, P), teaches(P, C), attends(S2, C), person(S2)",
        "q(P) :- professor(P), teaches(P, C), course(C)",
    ]
    .iter()
    .map(|text| parse_query(text).expect("serving mix query parses"))
    .collect()
}

pub use ontorew_serve::percentile;

/// E12 — serving throughput: the uncached `answer_by_rewriting` path vs the
/// `ontorew-serve` query service (cold cache, then warm repeat-query
/// traffic), plus the same warm traffic through the TCP server from
/// concurrent load-generator clients. Cross-checks every path against the
/// chase ground truth before timing anything.
pub fn experiment_serve_throughput(students: usize, repeats: usize, tcp_threads: usize) -> String {
    use ontorew_serve::{serve, QueryService, ServeClient, ServerConfig, ServiceConfig};
    use std::sync::Arc;

    let ontology = university_ontology();
    let abox = university_abox(students, students / 10 + 1, students / 5 + 1, 17);
    let store = RelationalStore::from_instance(&abox);
    let queries = serving_query_mix();
    let mut out = String::new();
    writeln!(
        out,
        "E12 — concurrent query service: prepared-query cache + snapshot isolation"
    )
    .unwrap();
    writeln!(
        out,
        "university workload: students={students} facts={} mix={} queries repeats={repeats}",
        store.len(),
        queries.len()
    )
    .unwrap();

    let service = Arc::new(QueryService::new(
        ontology.clone(),
        store.clone(),
        ServiceConfig::default(),
    ));

    // Correctness first: the served answers must equal both the unserved
    // rewriting path and the chase ground truth.
    for q in &queries {
        let served = service.query(q).expect("serve answers");
        let direct = answer_by_rewriting(&ontology, q, &store, &RewriteConfig::default());
        let truth = certain_answers(&ontology, &abox, q, &ChaseConfig::default());
        assert!(served.exact && direct.is_exact() && truth.complete);
        assert!(
            served.answers.iter().eq(direct.answers.iter())
                && served.answers.iter().eq(truth.answers.iter()),
            "serving path disagrees on {q}"
        );
    }
    writeln!(
        out,
        "answers: identical across serve / answer_by_rewriting / chase on all {} queries",
        queries.len()
    )
    .unwrap();
    writeln!(
        out,
        "mode          requests      qps  p50_us  p99_us  hit_rate"
    )
    .unwrap();
    let mut row = |mode: &str, latencies: &mut Vec<u64>, hit_rate: Option<f64>| -> f64 {
        latencies.sort_unstable();
        let total_us: u64 = latencies.iter().sum();
        let qps = latencies.len() as f64 / (total_us.max(1) as f64 / 1_000_000.0);
        writeln!(
            out,
            "{mode:<12} {:>9} {:>8.0} {:>7} {:>7}  {}",
            latencies.len(),
            qps,
            percentile(latencies, 0.50),
            percentile(latencies, 0.99),
            hit_rate
                .map(|r| format!("{:>7.1}%", r * 100.0))
                .unwrap_or_else(|| "      -".to_string()),
        )
        .unwrap();
        qps
    };

    // Uncached baseline: every request pays the full rewriting fixpoint.
    let mut uncached_us: Vec<u64> = Vec::with_capacity(repeats * queries.len());
    for _ in 0..repeats {
        for q in &queries {
            let start = Instant::now();
            let result = answer_by_rewriting(&ontology, q, &store, &RewriteConfig::default());
            uncached_us.push(start.elapsed().as_micros() as u64);
            assert!(result.is_exact());
        }
    }
    let uncached_qps = row("uncached", &mut uncached_us, None);

    // Served: a fresh service so the cold pass is genuinely cold.
    let timed = Arc::new(QueryService::new(
        ontology.clone(),
        store.clone(),
        ServiceConfig::default(),
    ));
    let mut cold_us: Vec<u64> = Vec::new();
    let mut warm_us: Vec<u64> = Vec::new();
    for rep in 0..repeats {
        for q in &queries {
            let start = Instant::now();
            let response = timed.query(q).expect("serve answers");
            let us = start.elapsed().as_micros() as u64;
            assert_eq!(response.cache_hit, rep > 0, "unexpected cache state");
            if rep == 0 {
                cold_us.push(us);
            } else {
                warm_us.push(us);
            }
        }
    }
    let stats = timed.stats();
    row("serve-cold", &mut cold_us, Some(0.0));
    let warm_qps = row("serve-warm", &mut warm_us, Some(stats.cache.hit_rate()));

    // The same warm traffic through TCP, from concurrent clients.
    let handle = serve(Arc::clone(&timed), ServerConfig::default()).expect("server binds");
    let per_thread = (repeats.max(2) / 2) * queries.len();
    let wall = Instant::now();
    let threads: Vec<_> = (0..tcp_threads.max(1))
        .map(|_| {
            let addr = handle.addr();
            let texts: Vec<String> = queries.iter().map(|q| format!("{q}")).collect();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("client connects");
                let mut latencies = Vec::with_capacity(per_thread);
                for i in 0..per_thread {
                    let text = &texts[i % texts.len()];
                    let start = Instant::now();
                    let reply = client.query(text).expect("tcp query");
                    latencies.push(start.elapsed().as_micros() as u64);
                    assert!(reply.cache_hit, "tcp traffic must be warm");
                }
                client.quit().expect("quit");
                latencies
            })
        })
        .collect();
    let mut tcp_us: Vec<u64> = Vec::new();
    for t in threads {
        tcp_us.extend(t.join().expect("tcp thread"));
    }
    let wall_s = wall.elapsed().as_secs_f64();
    handle.shutdown();
    // Concurrent wall-clock throughput (not the sum of per-request times).
    tcp_us.sort_unstable();
    let tcp_qps = tcp_us.len() as f64 / wall_s.max(1e-9);
    writeln!(
        out,
        "tcp-warm x{:<2} {:>9} {:>8.0} {:>7} {:>7}  {:>7}",
        tcp_threads,
        tcp_us.len(),
        tcp_qps,
        percentile(&tcp_us, 0.50),
        percentile(&tcp_us, 0.99),
        "warm"
    )
    .unwrap();
    writeln!(
        out,
        "warm-cache speedup over uncached: {:.1}x",
        warm_qps / uncached_qps.max(1e-9)
    )
    .unwrap();
    out
}

/// E13 — planner vs forced strategies on the university mix: per query, the
/// planner-chosen plan is timed against a forced rewrite plan and a forced
/// chase plan (all three warm: plans prepared once, materializations cached
/// per data version, exactly as the serving layer executes them). Answers
/// must agree on every query; the planner must match the best forced
/// strategy, because its cost signals pick one of them. A second section
/// runs Example 2, where the forced rewriting is budget-cut (incomplete)
/// and only the planner's chase plan is exact — the trichotomy choosing
/// *correctness*, not just speed.
pub fn experiment_planner_vs_forced(students: usize, repeats: usize) -> String {
    use ontorew_plan::{PlanKind, Planner};

    let ontology = university_ontology();
    let abox = university_abox(students, students / 10 + 1, students / 5 + 1, 17);
    let store = RelationalStore::from_instance(&abox);
    let planner = Planner::new(ontology);
    let mut out = String::new();
    writeln!(
        out,
        "E13 — planner vs forced strategies (university mix, {} facts)",
        store.len()
    )
    .unwrap();
    writeln!(
        out,
        "program plan kind: {} ({})",
        planner.plan_kind(),
        planner.classification().member_classes().join(", ")
    )
    .unwrap();
    writeln!(
        out,
        "query                                          plan     chosen_us  rewrite_us  chase_us  agree  planner_best"
    )
    .unwrap();
    let median = |plan: &ontorew_plan::PreparedQuery| -> u64 {
        let mut times: Vec<u64> = (0..repeats.max(1))
            .map(|_| {
                let start = Instant::now();
                let _ = plan.execute_versioned(&store, 0);
                start.elapsed().as_micros() as u64
            })
            .collect();
        times.sort_unstable();
        times[times.len() / 2]
    };
    let mut all_agree = true;
    let mut all_best = true;
    for query in serving_query_mix() {
        let chosen = planner.prepare(&query);
        let forced_rewrite = planner
            .prepare_forced(&query, PlanKind::Rewrite)
            .expect("classifiable");
        let forced_chase = planner
            .prepare_forced(&query, PlanKind::Chase)
            .expect("classifiable");
        // Warm pass first — every plan executes once before any is timed, so
        // the shared version-0 materialization exists for all of them and
        // the hybrid's cost signals see the same warm state the forced
        // plans are timed under.
        let chosen_answers = chosen.execute_versioned(&store, 0).answers;
        let rewrite_answers = forced_rewrite.execute_versioned(&store, 0).answers;
        let chase_answers = forced_chase.execute_versioned(&store, 0).answers;
        let chosen_us = median(&chosen);
        let rewrite_us = median(&forced_rewrite);
        let chase_us = median(&forced_chase);
        let agree = chosen_answers.iter().eq(rewrite_answers.iter())
            && chosen_answers.iter().eq(chase_answers.iter());
        // "Matching" the best forced strategy allows for timer noise: the
        // planner's pick is one of the two pipelines, so anything beyond
        // 1.5x the winner would mean it picked the wrong one.
        let best = rewrite_us.min(chase_us);
        let planner_best = chosen_us <= best + best / 2 + 50;
        all_agree &= agree;
        all_best &= planner_best;
        writeln!(
            out,
            "{:<46} {:<8} {chosen_us:>9} {rewrite_us:>11} {chase_us:>9}  {agree:<5}  {planner_best}",
            format!("{query}"),
            chosen.plan().kind().to_string(),
        )
        .unwrap();
    }
    writeln!(
        out,
        "university mix: agree={all_agree} planner_matches_best={all_best}"
    )
    .unwrap();

    // Example 2: outside WR, weakly acyclic. The planner's chase plan is
    // exact; a forced rewriting is cut off at its budget and only sound.
    let planner = Planner::new(example2());
    let mut db = RelationalStore::new();
    db.insert_fact("s", &["c", "c", "a"]);
    db.insert_fact("t", &["d", "a"]);
    let query = example2_query();
    let chosen = planner.prepare(&query).execute_versioned(&db, 0);
    let forced = planner
        .prepare_forced(&query, PlanKind::Rewrite)
        .expect("classifiable")
        .execute_versioned(&db, 0);
    writeln!(
        out,
        "example2: planner plan={} exact={} answer={}; forced rewrite exact={} answer={}",
        chosen.provenance.plan,
        chosen.provenance.exact,
        chosen.answers.as_boolean(),
        forced.provenance.exact,
        forced.answers.as_boolean()
    )
    .unwrap();
    out
}

/// E14 — copy-on-write ingestion and incremental chase maintenance.
///
/// **Part A (ingestion)**: `commits` commits of `batch` facts each against
/// epoch stores preloaded to different sizes. The copy-on-write publish
/// (freeze + segment-sharing clone) is timed against the pre-PR 5 behavior
/// — a full deep clone of the working store per commit — on identical
/// batches. The COW per-commit cost must be flat in the preload size (it
/// scales with the batch and the amortised segment merges), while the
/// legacy clone grows linearly with the store.
///
/// **Part B (insert→query)**: a commit loop against chase materializations
/// of the university workload (forced chase plans, as a chase-plan tenant
/// executes them). One planner receives the insert batches as recorded
/// delta edges (the serving layer's path since PR 5) and extends its cached
/// materialization incrementally; the other gets no lineage and re-chases
/// the store from scratch on every new data version. Answers are asserted
/// identical on every iteration before anything is reported.
pub fn experiment_ingestion_incremental(
    preload_sizes: &[usize],
    commits: usize,
    batch: usize,
    students: usize,
    inserts: usize,
) -> String {
    use ontorew_plan::{MaterializationMode, PlanKind, Planner};
    use ontorew_serve::EpochStore;

    let mut out = String::new();
    writeln!(
        out,
        "E14 — copy-on-write ingestion + incremental chase maintenance"
    )
    .unwrap();

    // Part A: commit cost vs store size.
    writeln!(
        out,
        "ingestion: {commits} commits x {batch} facts (cow = freeze+share, clone = pre-PR5 deep copy)"
    )
    .unwrap();
    writeln!(
        out,
        "preload  cow_us/commit  clone_us/commit  cow_facts/s  speedup"
    )
    .unwrap();
    let mut speedup_at_largest = 0.0f64;
    for &preload in preload_sizes {
        let mut base = RelationalStore::new();
        for i in 0..preload {
            base.insert_fact("pair", &[&format!("p{i}"), &format!("q{i}")]);
        }
        let epoch_store = EpochStore::new(base.clone());
        let start = Instant::now();
        for k in 0..commits {
            let facts: Vec<Atom> = (0..batch)
                .map(|j| Atom::fact("pair", &[&format!("cow{k}_{j}"), "y"]))
                .collect();
            epoch_store.commit_facts(&facts);
        }
        let cow_us = start.elapsed().as_micros() as f64;

        // The legacy publish: mutate a working copy, then deep-clone the
        // whole store (nothing frozen, so clone() copies every row).
        let mut working = base;
        let start = Instant::now();
        for k in 0..commits {
            for j in 0..batch {
                working.insert_fact("pair", &[&format!("old{k}_{j}"), "y"]);
            }
            let published = working.clone();
            std::hint::black_box(&published);
        }
        let clone_us = start.elapsed().as_micros() as f64;

        let speedup = clone_us / cow_us.max(1.0);
        speedup_at_largest = speedup;
        writeln!(
            out,
            "{preload:>7} {:>13.1} {:>16.1} {:>12.0} {:>8.1}x",
            cow_us / commits as f64,
            clone_us / commits as f64,
            (commits * batch) as f64 / (cow_us / 1_000_000.0).max(1e-9),
            speedup
        )
        .unwrap();
    }
    writeln!(
        out,
        "commit speedup at {} preloaded facts: {speedup_at_largest:.1}x",
        preload_sizes.last().copied().unwrap_or(0)
    )
    .unwrap();

    // Part B: insert→query with and without incremental maintenance.
    let ontology = university_ontology();
    let abox = university_abox(students, students / 10 + 1, students / 5 + 1, 17);
    let query = parse_query("q(X) :- person(X)").expect("person query parses");
    let incremental_planner = Planner::new(ontology.clone());
    let scratch_planner = Planner::new(ontology);
    let inc_plan = incremental_planner
        .prepare_forced(&query, PlanKind::Chase)
        .expect("classifiable");
    let scr_plan = scratch_planner
        .prepare_forced(&query, PlanKind::Chase)
        .expect("classifiable");
    let mut store = RelationalStore::from_instance(&abox);
    // Warm version 0 on both planners (the chase-plan tenant's steady state).
    let _ = inc_plan.execute_versioned(&store, 0);
    let _ = scr_plan.execute_versioned(&store, 0);

    let mut inc_query_us: Vec<u64> = Vec::with_capacity(inserts);
    let mut scr_query_us: Vec<u64> = Vec::with_capacity(inserts);
    let mut inc_mat_us: u64 = 0;
    let mut scr_mat_us: u64 = 0;
    for k in 0..inserts as u64 {
        let student = format!("late{k}");
        let facts = vec![
            Atom::fact("student", &[&student]),
            Atom::fact("attends", &[&student, "course0"]),
        ];
        for fact in &facts {
            store.insert_atom(fact);
        }
        incremental_planner.record_delta(k, k + 1, &facts, store.len());

        let start = Instant::now();
        let incremental = inc_plan.execute_versioned(&store, k + 1);
        inc_query_us.push(start.elapsed().as_micros() as u64);
        let start = Instant::now();
        let scratch = scr_plan.execute_versioned(&store, k + 1);
        scr_query_us.push(start.elapsed().as_micros() as u64);

        assert!(
            incremental.answers.iter().eq(scratch.answers.iter()),
            "incremental and scratch answers diverge at insert {k}"
        );
        assert!(
            matches!(
                incremental.provenance.materialization,
                Some(MaterializationMode::Incremental { .. })
            ),
            "insert {k} did not ride the incremental path"
        );
        assert_eq!(
            scratch.provenance.materialization,
            Some(MaterializationMode::Scratch)
        );
        inc_mat_us += incremental.provenance.timings.materialize_us;
        scr_mat_us += scratch.provenance.timings.materialize_us;
    }
    inc_query_us.sort_unstable();
    scr_query_us.sort_unstable();
    writeln!(
        out,
        "insert->query over {} facts, {inserts} single-student commits (forced chase plans):",
        store.len()
    )
    .unwrap();
    writeln!(out, "mode         p50_us  p99_us  materialize_us/commit").unwrap();
    writeln!(
        out,
        "incremental {:>7} {:>7} {:>21.1}",
        percentile(&inc_query_us, 0.50),
        percentile(&inc_query_us, 0.99),
        inc_mat_us as f64 / inserts.max(1) as f64
    )
    .unwrap();
    writeln!(
        out,
        "scratch     {:>7} {:>7} {:>21.1}",
        percentile(&scr_query_us, 0.50),
        percentile(&scr_query_us, 0.99),
        scr_mat_us as f64 / inserts.max(1) as f64
    )
    .unwrap();
    writeln!(
        out,
        "incremental materialization speedup on small deltas: {:.1}x (answers identical)",
        scr_mat_us as f64 / (inc_mat_us as f64).max(1.0)
    )
    .unwrap();
    out
}

/// E15 — DRed retraction, WHY latency, and the provenance overhead ablation.
///
/// **Part A (delete→query)**: the delete-side mirror of E14 Part B. The
/// university store is preloaded with `deletes` extra students, then a
/// commit loop retracts them one at a time. One planner chases with
/// provenance tracking on and receives the retractions as recorded delete
/// edges, so each cache miss replays DRed (overdelete through the
/// derivation graph, then well-founded rederivation) over the cached
/// ancestor; the other planner gets no lineage and re-chases from scratch
/// on every data version. Answers are asserted identical on every commit,
/// and the incremental executions are asserted to ride the `Dred` path.
///
/// **Part B (WHY latency)**: after the retraction loop, sample `why_samples`
/// derived facts from the surviving materialization and time the
/// derivation-graph walk behind the wire protocol's `WHY` verb.
///
/// **Part C (provenance ablation)**: chase the same store with
/// `track_provenance` off and on and report the insert-side overhead of
/// recording the derivation graph (the price every serving tenant pays for
/// DRed + WHY; the PR 6 target is < 10%).
pub fn experiment_retraction_dred(students: usize, deletes: usize, why_samples: usize) -> String {
    use ontorew_plan::{MaterializationMode, PlanKind, Planner, PlannerConfig};

    let mut out = String::new();
    writeln!(
        out,
        "E15 — DRed incremental deletion + WHY latency + provenance overhead"
    )
    .unwrap();

    // Part A: delete→query with and without incremental maintenance.
    let ontology = university_ontology();
    let abox = university_abox(students, students / 10 + 1, students / 5 + 1, 17);
    let query = parse_query("q(X) :- person(X)").expect("person query parses");
    let incremental_planner = Planner::with_config(
        ontology.clone(),
        PlannerConfig {
            chase: ChaseConfig::default().with_provenance(true),
            ..PlannerConfig::default()
        },
    );
    let scratch_planner = Planner::new(ontology.clone());
    let inc_plan = incremental_planner
        .prepare_forced(&query, PlanKind::Chase)
        .expect("classifiable");
    let scr_plan = scratch_planner
        .prepare_forced(&query, PlanKind::Chase)
        .expect("classifiable");
    let mut store = RelationalStore::from_instance(&abox);
    // The victims: extra students present in the warmed materialization,
    // retracted one per commit below.
    for k in 0..deletes {
        let student = format!("late{k}");
        store.insert_fact("student", &[&student]);
        store.insert_fact("attends", &[&student, "course0"]);
    }
    let _ = inc_plan.execute_versioned(&store, 0);
    let _ = scr_plan.execute_versioned(&store, 0);

    let mut inc_query_us: Vec<u64> = Vec::with_capacity(deletes);
    let mut scr_query_us: Vec<u64> = Vec::with_capacity(deletes);
    let mut inc_mat_us: u64 = 0;
    let mut scr_mat_us: u64 = 0;
    for k in 0..deletes as u64 {
        let student = format!("late{k}");
        let facts = vec![
            Atom::fact("student", &[&student]),
            Atom::fact("attends", &[&student, "course0"]),
        ];
        for fact in &facts {
            store.remove_atom(fact);
        }
        incremental_planner.record_retraction(k, k + 1, &facts, store.len());

        let start = Instant::now();
        let incremental = inc_plan.execute_versioned(&store, k + 1);
        inc_query_us.push(start.elapsed().as_micros() as u64);
        let start = Instant::now();
        let scratch = scr_plan.execute_versioned(&store, k + 1);
        scr_query_us.push(start.elapsed().as_micros() as u64);

        assert!(
            incremental.answers.iter().eq(scratch.answers.iter()),
            "DRed and scratch answers diverge at delete {k}"
        );
        assert!(
            matches!(
                incremental.provenance.materialization,
                Some(MaterializationMode::Dred { .. })
            ),
            "delete {k} did not ride the DRed path"
        );
        assert_eq!(
            scratch.provenance.materialization,
            Some(MaterializationMode::Scratch)
        );
        inc_mat_us += incremental.provenance.timings.materialize_us;
        scr_mat_us += scratch.provenance.timings.materialize_us;
    }
    inc_query_us.sort_unstable();
    scr_query_us.sort_unstable();
    writeln!(
        out,
        "delete->query over {} facts, {deletes} single-student retractions (forced chase plans):",
        store.len()
    )
    .unwrap();
    writeln!(out, "mode         p50_us  p99_us  materialize_us/commit").unwrap();
    writeln!(
        out,
        "dred        {:>7} {:>7} {:>21.1}",
        percentile(&inc_query_us, 0.50),
        percentile(&inc_query_us, 0.99),
        inc_mat_us as f64 / deletes.max(1) as f64
    )
    .unwrap();
    writeln!(
        out,
        "scratch     {:>7} {:>7} {:>21.1}",
        percentile(&scr_query_us, 0.50),
        percentile(&scr_query_us, 0.99),
        scr_mat_us as f64 / deletes.max(1) as f64
    )
    .unwrap();
    writeln!(
        out,
        "dred materialization speedup on small retractions: {:.1}x (answers identical)",
        scr_mat_us as f64 / (inc_mat_us as f64).max(1.0)
    )
    .unwrap();

    // Part B: WHY latency over the surviving derivation graph.
    let (materialization, _) = incremental_planner.materialize(&store, Some(deletes as u64));
    let graph = materialization
        .provenance()
        .expect("provenance-tracking planner records a derivation graph");
    let mut why_ns: Vec<u64> = Vec::with_capacity(why_samples);
    for i in 0..why_samples {
        let fact = Atom::fact("person", &[&format!("student{}", i % students.max(1))]);
        let start = Instant::now();
        let steps = graph.why(&fact);
        why_ns.push(start.elapsed().as_nanos() as u64);
        assert!(
            steps.is_some_and(|s| !s.is_empty()),
            "WHY found no derivation for a fact the materialization contains"
        );
    }
    why_ns.sort_unstable();
    writeln!(
        out,
        "WHY latency over {} graph nodes / {} edges ({why_samples} derived facts): p50={:.1}us p99={:.1}us",
        graph.node_count(),
        graph.edge_count(),
        percentile(&why_ns, 0.50) as f64 / 1_000.0,
        percentile(&why_ns, 0.99) as f64 / 1_000.0
    )
    .unwrap();

    // Part C: what does recording the derivation graph cost on insert?
    let ontology_ref = &ontology;
    let plain_config = ChaseConfig::restricted(64);
    let tracked_config = ChaseConfig::restricted(64).with_provenance(true);
    let mut plain_us = u64::MAX;
    let mut tracked_us = u64::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        let plain = chase(ontology_ref, &abox, &plain_config);
        plain_us = plain_us.min(start.elapsed().as_micros() as u64);
        let start = Instant::now();
        let tracked = chase(ontology_ref, &abox, &tracked_config);
        tracked_us = tracked_us.min(start.elapsed().as_micros() as u64);
        assert_eq!(
            plain.instance.len(),
            tracked.instance.len(),
            "provenance tracking changed the chase result"
        );
    }
    writeln!(
        out,
        "provenance ablation (restricted chase of {} facts): plain={}us tracked={}us overhead={:.1}%",
        abox.len(),
        plain_us,
        tracked_us,
        (tracked_us as f64 - plain_us as f64) / (plain_us as f64).max(1.0) * 100.0
    )
    .unwrap();
    out
}

/// E9 — rewriting soundness & completeness: cross-check the two strategies on
/// the university workload and on the paper's examples.
pub fn experiment_rewriting_soundness() -> String {
    let mut out = String::new();
    writeln!(out, "E9 — rewriting vs chase cross-checks").unwrap();
    let system = ObdaSystem::new(university_ontology(), university_abox(80, 8, 16, 23));
    for text in [
        "q(X) :- person(X)",
        "q(X) :- employee(X)",
        "q(T) :- teaches(T, C), attends(S, C)",
        "q(S, P) :- advisedBy(S, P), professor(P)",
    ] {
        let query = parse_query(text).unwrap();
        let report = cross_check(&system, &query);
        writeln!(
            out,
            "{text:<45} rewriting={:>4} chase={:>4} consistent={}",
            report.rewriting_answers,
            report.materialization_answers,
            report.is_consistent()
        )
        .unwrap();
    }
    // Example 2 through the Auto strategy (falls back to materialization).
    let mut data = Instance::new();
    data.insert_fact("s", &["c", "c", "a"]);
    data.insert_fact("t", &["d", "a"]);
    let system = ObdaSystem::new(example2(), data);
    let result = system.answer(&example2_query(), Strategy::Auto);
    writeln!(
        out,
        "example2 boolean query via Auto: strategy={:?} exact={} answer={}",
        result.strategy,
        result.exact,
        result.answers.as_boolean()
    )
    .unwrap();
    out
}

/// E10 — approximation quality on the non-WR Example 2: how the bounded
/// rewriting's coverage (vs the chase ground truth) grows with depth.
pub fn experiment_approximation_quality(depths: &[usize]) -> String {
    let program = example2();
    let query = example2_query();
    // Ground truth: a database where the answer requires 2 rule applications.
    let mut data = Instance::new();
    data.insert_fact("t", &["d", "a"]);
    data.insert_fact("t", &["d2", "c"]);
    data.insert_fact("r", &["e", "f"]);
    data.insert_fact("s", &["c", "c", "a"]);
    let store = RelationalStore::from_instance(&data);
    let truth = certain_answers(&program, &data, &query, &ChaseConfig::default());
    let mut out = String::new();
    writeln!(out, "E10 — bounded-rewriting approximation on Example 2").unwrap();
    writeln!(
        out,
        "chase ground truth: answer={} (complete={})",
        truth.answers.as_boolean(),
        truth.complete
    )
    .unwrap();
    writeln!(out, "depth  disjuncts  answered  recurrent-patterns").unwrap();
    for &depth in depths {
        let approx = approximate_rewrite(&program, &query, depth);
        let answers = ontorew_rewrite::evaluate_rewriting(&approx.rewriting, &query, &store);
        writeln!(
            out,
            "{depth:>5} {:>10} {:>9} {:>19}",
            approx.rewriting.len(),
            answers.as_boolean(),
            approx.analysis.recurrent_patterns().len()
        )
        .unwrap();
    }
    out
}

/// E16 — durability: the cost of the write-ahead log on the commit path,
/// per fsync policy, against the in-memory baseline; plus recovery time as
/// a function of store size.
///
/// **Part A (commit overhead)**: preload a `students`-scale university
/// ABox, then time `commits` single-fact `INSERT` commits through four
/// configurations — in-memory (no WAL), and durable with `fsync=off`,
/// `fsync=every-8` and `fsync=always`. The interesting number is the
/// `every-8 / in-memory` latency ratio: the amortized-group-commit
/// configuration is the recommended production default and should stay
/// within small multiples of the in-memory commit.
///
/// **Part B (recovery time)**: for each size, seed a durable tenant (the
/// seed is checkpointed to segments at epoch 0), append `commits` WAL
/// records on top, then drop everything and time a cold
/// [`TenantRegistry::recover`] — segment load plus WAL replay.
///
/// [`TenantRegistry::recover`]: ontorew_serve::TenantRegistry::recover
pub fn experiment_durability(students: usize, commits: usize, sizes: &[usize]) -> String {
    use ontorew_serve::{DurabilitySettings, QueryService, ServiceConfig, TenantRegistry};
    use ontorew_storage::FsyncPolicy;

    fn temp_root(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ontorew-e16-{}-{}-{}",
            tag,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    let mut out = String::new();
    writeln!(
        out,
        "E16 — durability: WAL commit overhead + recovery time (university ontology)"
    )
    .unwrap();

    // Part A: commit latency per policy at `students` scale.
    let ontology = university_ontology();
    let abox = university_abox(students, students / 10 + 1, students / 5 + 1, 17);
    writeln!(
        out,
        "commit overhead: {} preloaded facts, {commits} single-fact commits",
        abox.len()
    )
    .unwrap();
    writeln!(out, "policy      commit_p50_us  commit_p99_us  wal_bytes").unwrap();
    let policies: [(&str, Option<FsyncPolicy>); 4] = [
        ("in-memory", None),
        ("off", Some(FsyncPolicy::Off)),
        ("every-8", Some(FsyncPolicy::EveryN(8))),
        ("always", Some(FsyncPolicy::Always)),
    ];
    let mut in_memory_p50 = 0u64;
    let mut every_n_p50 = 0u64;
    for (label, policy) in policies {
        let store = RelationalStore::from_instance(&abox);
        let (service, root) = match policy {
            None => (
                std::sync::Arc::new(QueryService::new(
                    ontology.clone(),
                    store,
                    ServiceConfig::default(),
                )),
                None,
            ),
            Some(fsync) => {
                let root = temp_root("commit");
                let registry = TenantRegistry::recover(
                    ontology.clone(),
                    store,
                    ServiceConfig::default(),
                    DurabilitySettings {
                        root: root.clone(),
                        fsync,
                    },
                )
                .expect("durable registry");
                (registry.default_tenant(), Some(root))
            }
        };
        let mut latencies: Vec<u64> = Vec::with_capacity(commits);
        for k in 0..commits {
            let student = format!("wal{k}");
            let fact = Atom::fact("student", &[student.as_str()]);
            let start = Instant::now();
            service.insert_facts(&[fact]).expect("commit");
            latencies.push(start.elapsed().as_micros() as u64);
        }
        latencies.sort_unstable();
        let p50 = ontorew_serve::percentile(&latencies, 0.50);
        if label == "in-memory" {
            in_memory_p50 = p50;
        }
        if label == "every-8" {
            every_n_p50 = p50;
        }
        writeln!(
            out,
            "{label:<11} {:>13} {:>14} {:>10}",
            p50,
            ontorew_serve::percentile(&latencies, 0.99),
            service.stats().durability.wal_bytes
        )
        .unwrap();
        drop(service);
        if let Some(root) = root {
            let _ = std::fs::remove_dir_all(&root);
        }
    }
    writeln!(
        out,
        "every-8 vs in-memory commit p50 ratio: {:.2}x",
        every_n_p50 as f64 / in_memory_p50.max(1) as f64
    )
    .unwrap();

    // Part B: recovery time vs store size (segments + a WAL tail to replay).
    writeln!(
        out,
        "recovery time ({commits} WAL records on top of a checkpointed seed):"
    )
    .unwrap();
    writeln!(out, "seed_students  facts  segments  recovery_ms").unwrap();
    for &n in sizes {
        let root = temp_root("recover");
        let seed = RelationalStore::from_instance(&university_abox(n, n / 10 + 1, n / 5 + 1, 17));
        let settings = DurabilitySettings {
            root: root.clone(),
            fsync: FsyncPolicy::Off,
        };
        {
            let registry = TenantRegistry::recover(
                ontology.clone(),
                seed,
                ServiceConfig::default(),
                settings.clone(),
            )
            .expect("seed registry");
            let service = registry.default_tenant();
            for k in 0..commits {
                let student = format!("tail{k}");
                service
                    .insert_facts(&[Atom::fact("student", &[student.as_str()])])
                    .expect("tail commit");
            }
        }
        let start = Instant::now();
        let registry = TenantRegistry::recover(
            ontology.clone(),
            RelationalStore::new(),
            ServiceConfig::default(),
            settings,
        )
        .expect("recover registry");
        let recovery_ms = start.elapsed().as_secs_f64() * 1e3;
        let service = registry.default_tenant();
        let stats = service.stats();
        writeln!(
            out,
            "{n:>13} {:>6} {:>9} {:>12.1}",
            stats.facts, stats.durability.segments_on_disk, recovery_ms
        )
        .unwrap();
        drop(service);
        drop(registry);
        let _ = std::fs::remove_dir_all(&root);
    }
    out
}

/// E17 — tracing overhead: what the span instrumentation costs on the warm
/// serving path (the E12 repeat-query traffic). Three measurements:
///
/// 1. the *disabled* path — spans compiled in but no collector installed
///    (the production default): an inactive [`ontorew_telemetry::span`] is
///    one relaxed atomic load, so the per-request overhead is
///    `spans/request x inactive-span cost` and must stay within 2% of the
///    warm request latency;
/// 2. the *enabled* path — a per-request collector installed and drained,
///    exactly as `serve` does when `TRACE ON` is armed;
/// 3. the raw warm throughput in both modes, so the enabled overhead is
///    visible as a qps delta, not just a microbenchmark.
pub fn experiment_tracing_overhead(students: usize, repeats: usize) -> String {
    use ontorew_serve::{QueryService, ServiceConfig};
    use ontorew_telemetry::{install_collector, span, take_collector};
    use std::sync::Arc;

    let ontology = university_ontology();
    let abox = university_abox(students, students / 10 + 1, students / 5 + 1, 17);
    let store = RelationalStore::from_instance(&abox);
    let queries = serving_query_mix();
    let mut out = String::new();
    writeln!(
        out,
        "E17 — tracing overhead: span instrumentation on the warm serving path"
    )
    .unwrap();
    writeln!(
        out,
        "university workload: students={students} facts={} mix={} queries repeats={repeats}",
        store.len(),
        queries.len()
    )
    .unwrap();

    let service = Arc::new(QueryService::new(ontology, store, ServiceConfig::default()));
    // Warm every plan (and the per-epoch materialization) before timing.
    for q in &queries {
        service.query(q).expect("warm answers");
    }

    // 1) The inactive span itself: no collector on this thread, so each
    // span() is a relaxed load and SpanGuard::drop is a no-op.
    const SPAN_ITERS: u64 = 2_000_000;
    let start = Instant::now();
    for _ in 0..SPAN_ITERS {
        let _guard = span("bench.noop");
    }
    let span_ns = start.elapsed().as_nanos() as f64 / SPAN_ITERS as f64;
    writeln!(out, "inactive span cost: {span_ns:.1} ns/span").unwrap();

    // Spans per request on this mix (traced once, averaged).
    install_collector(4096);
    for q in &queries {
        service.query(q).expect("traced answers");
    }
    let (spans, _elapsed_us) = take_collector();
    assert!(!spans.is_empty(), "the count pass produced no spans");
    let spans_per_request = spans.len() as f64 / queries.len() as f64;
    writeln!(out, "spans per warm request: {spans_per_request:.1}").unwrap();

    // 2+3) Warm traffic with tracing off, then with a per-request collector.
    let time_mode = |traced: bool| -> Vec<u64> {
        let mut latencies = Vec::with_capacity(repeats * queries.len());
        for _ in 0..repeats {
            for q in &queries {
                let start = Instant::now();
                if traced {
                    install_collector(4096);
                }
                let response = service.query(q).expect("warm answers");
                if traced {
                    let (spans, _) = take_collector();
                    assert!(!spans.is_empty(), "traced request produced no spans");
                }
                latencies.push(start.elapsed().as_micros() as u64);
                assert!(response.cache_hit, "overhead traffic must be warm");
            }
        }
        latencies.sort_unstable();
        latencies
    };
    let off_us = time_mode(false);
    let on_us = time_mode(true);
    let qps = |lat: &[u64]| lat.len() as f64 / (lat.iter().sum::<u64>().max(1) as f64 / 1e6);
    let (off_qps, on_qps) = (qps(&off_us), qps(&on_us));
    writeln!(out, "mode       requests      qps  p50_us  p99_us").unwrap();
    writeln!(
        out,
        "trace-off {:>9} {:>8.0} {:>7} {:>7}",
        off_us.len(),
        off_qps,
        percentile(&off_us, 0.50),
        percentile(&off_us, 0.99),
    )
    .unwrap();
    writeln!(
        out,
        "trace-on  {:>9} {:>8.0} {:>7} {:>7}",
        on_us.len(),
        on_qps,
        percentile(&on_us, 0.50),
        percentile(&on_us, 0.99),
    )
    .unwrap();

    // The bound the observability work must hold: the disabled path adds
    // spans_per_request relaxed loads to a warm request.
    let p50_off_ns = percentile(&off_us, 0.50).max(1) as f64 * 1e3;
    let disabled_pct = 100.0 * spans_per_request * span_ns / p50_off_ns;
    let enabled_pct = 100.0 * (off_qps - on_qps).max(0.0) / off_qps.max(1e-9);
    writeln!(
        out,
        "disabled-path overhead: {disabled_pct:.3}% of warm p50 (bound 2%)"
    )
    .unwrap();
    writeln!(out, "tracing enabled overhead: {enabled_pct:.1}% qps").unwrap();
    assert!(
        disabled_pct <= 2.0,
        "disabled-path tracing overhead {disabled_pct:.3}% exceeds the 2% bound"
    );
    out
}

/// E18 — goal-driven (magic-sets) evaluation vs the full chase on the
/// registrar workload. The selective query (`mustComplete` for one student)
/// maps to a goal-driven plan: the chase runs only the adorned slice the
/// query's bindings demand, instead of materializing every student's
/// transcript. Both pipelines execute unversioned — the full chase pays its
/// materialization on every iteration, which is exactly the cost the
/// restriction avoids — and must return identical answers. p50 over `iters`
/// runs per pipeline.
pub fn experiment_goal_driven(student_counts: &[usize], iters: usize) -> String {
    use ontorew_plan::{PlanKind, Planner, PreparedQuery};
    use ontorew_workloads::{registrar_abox, registrar_ontology, registrar_queries};

    let mut out = String::new();
    writeln!(
        out,
        "E18 — goal-driven (magic-sets) vs full chase (registrar workload, selective query)"
    )
    .unwrap();
    writeln!(
        out,
        "students   facts  goal_p50_us  chase_p50_us  speedup  goal_facts  full_facts  agree"
    )
    .unwrap();
    let p50 = |plan: &PreparedQuery, store: &RelationalStore| -> u64 {
        let mut times: Vec<u64> = (0..iters.max(1))
            .map(|_| {
                let start = Instant::now();
                let _ = plan.execute(store);
                start.elapsed().as_micros() as u64
            })
            .collect();
        times.sort_unstable();
        times[times.len() / 2]
    };
    let mut all_agree = true;
    let mut speedup_at_smallest = 0.0_f64;
    for (n, &students) in student_counts.iter().enumerate() {
        let abox = registrar_abox(students, 8, 42);
        let store = RelationalStore::from_instance(&abox);
        let planner = Planner::new(registrar_ontology());
        let selective = registrar_queries().remove(0);
        let goal = planner.prepare(&selective);
        assert_eq!(
            goal.plan().kind(),
            PlanKind::GoalDriven,
            "the selective registrar query must map to a goal-driven plan"
        );
        let full = planner
            .prepare_forced(&selective, PlanKind::Chase)
            .expect("classifiable");
        let goal_exec = goal.execute(&store);
        let full_exec = full.execute(&store);
        assert!(goal_exec.provenance.exact && full_exec.provenance.exact);
        let agree = goal_exec.answers.iter().eq(full_exec.answers.iter());
        all_agree &= agree;
        let goal_facts = goal_exec
            .provenance
            .goal_driven
            .as_ref()
            .map(|g| g.facts_derived)
            .unwrap_or(0);
        let full_facts = full_exec
            .provenance
            .chase
            .as_ref()
            .map(|c| c.facts)
            .unwrap_or(0);
        let goal_us = p50(&goal, &store);
        let chase_us = p50(&full, &store);
        let speedup = chase_us as f64 / goal_us.max(1) as f64;
        if n == 0 {
            speedup_at_smallest = speedup;
        }
        writeln!(
            out,
            "{students:>8} {:>7} {goal_us:>12} {chase_us:>13} {speedup:>8.1} {goal_facts:>11} {full_facts:>11}  {agree}",
            store.len(),
        )
        .unwrap();
    }
    writeln!(out, "answers identical across pipelines: {all_agree}").unwrap();
    writeln!(
        out,
        "goal-driven speedup at smallest scale: {speedup_at_smallest:.1}x (target >= 5x)"
    )
    .unwrap();
    assert!(
        all_agree,
        "goal-driven answers diverged from the full chase"
    );
    out
}

/// E19 — worst-case-optimal (generic) join vs backtracking on the cyclic
/// social-graph queries, plus the cost model's pick. Per scale and query,
/// both join strategies are forced through the raw evaluator (p50 over
/// `iters` runs, answers must be identical), then the measured cost model
/// ([`ontorew_storage::estimate_join_cost`] over collected
/// [`ontorew_storage::StoreStatistics`]) picks a strategy without seeing the
/// timings; the pick must land within the E13 tolerance of the measured
/// winner. On the hub-heavy graph the backtracking triangle join enumerates
/// Θ(users²) 2-paths through the celebrity vertices, so the generic join's
/// speedup grows with scale — the `speedup` column at the largest scale is
/// the headline number.
pub fn experiment_generic_join(user_counts: &[usize], iters: usize) -> String {
    use ontorew_storage::{
        estimate_join_cost, evaluate_cq_instrumented, EvalConfig, JoinStrategy, StoreStatistics,
    };
    use ontorew_workloads::{social_graph_abox, social_graph_queries};

    let mut out = String::new();
    writeln!(
        out,
        "E19 — generic (worst-case-optimal) join vs backtracking (social-graph workload)"
    )
    .unwrap();
    writeln!(
        out,
        "users   facts  query     backtrack_us  generic_us  speedup  answers  cost_pick     cost_ok  agree"
    )
    .unwrap();
    let p50 = |store: &RelationalStore, q: &ConjunctiveQuery, strategy: JoinStrategy| -> u64 {
        let config = EvalConfig {
            strategy: Some(strategy),
            ..EvalConfig::default()
        };
        let mut times: Vec<u64> = (0..iters.max(1))
            .map(|_| {
                let start = Instant::now();
                let _ = evaluate_cq_instrumented(store, q, &config);
                start.elapsed().as_micros() as u64
            })
            .collect();
        times.sort_unstable();
        times[times.len() / 2]
    };
    let names = ["triangle", "4-clique", "2-path"];
    let mut all_agree = true;
    let mut all_cost_ok = true;
    let mut best_speedup_at_largest = 0.0_f64;
    for (n, &users) in user_counts.iter().enumerate() {
        let abox = social_graph_abox(users, 8, 42);
        let store = RelationalStore::from_instance(&abox);
        let statistics = StoreStatistics::collect(&store);
        for (q, name) in social_graph_queries().iter().zip(names) {
            let bt = evaluate_cq_instrumented(
                &store,
                q,
                &EvalConfig {
                    strategy: Some(JoinStrategy::Backtracking),
                    ..EvalConfig::default()
                },
            )
            .0;
            let gj = evaluate_cq_instrumented(
                &store,
                q,
                &EvalConfig {
                    strategy: Some(JoinStrategy::GenericJoin),
                    ..EvalConfig::default()
                },
            )
            .0;
            let agree = bt.iter().eq(gj.iter());
            all_agree &= agree;
            let bt_us = p50(&store, q, JoinStrategy::Backtracking);
            let gj_us = p50(&store, q, JoinStrategy::GenericJoin);
            let speedup = bt_us as f64 / gj_us.max(1) as f64;
            if n + 1 == user_counts.len() && speedup > best_speedup_at_largest {
                best_speedup_at_largest = speedup;
            }
            let pick = estimate_join_cost(&statistics, &q.body).strategy();
            let picked_us = match pick {
                JoinStrategy::Backtracking => bt_us,
                JoinStrategy::GenericJoin => gj_us,
            };
            let best = bt_us.min(gj_us);
            // E13 tolerance: the pick must be within 1.5x of the measured
            // winner plus timer noise.
            let cost_ok = picked_us <= best + best / 2 + 50;
            all_cost_ok &= cost_ok;
            writeln!(
                out,
                "{users:>5} {:>7}  {name:<9} {bt_us:>11} {gj_us:>11} {speedup:>7.1}x {:>8}  {:<13} {cost_ok:<7}  {agree}",
                store.len(),
                bt.len(),
                pick.label(),
            )
            .unwrap();
        }
    }
    writeln!(out, "answers identical across join strategies: {all_agree}").unwrap();
    writeln!(
        out,
        "cost model within tolerance of the measured winner on every query: {all_cost_ok}"
    )
    .unwrap();
    writeln!(
        out,
        "best generic-join speedup at largest scale: {best_speedup_at_largest:.1}x (target >= 5x)"
    )
    .unwrap();
    assert!(all_agree, "generic join diverged from backtracking:\n{out}");
    assert!(all_cost_ok, "cost model picked a losing strategy:\n{out}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_produces_a_report() {
        assert!(experiment_fig1().contains("SWR=true"));
        assert!(experiment_fig2(&[1, 2, 3]).contains("dangerous-cycle=false"));
        assert!(experiment_fig3().contains("NotWeaklyRecursive"));
        assert!(experiment_example3().contains("FO-rewritable=true"));
        assert!(experiment_class_subsumption(6, 6).contains("subsumption violations=0"));
        assert!(experiment_swr_scaling(&[4, 8]).contains("chain"));
        assert!(experiment_wr_scaling(&[4], 500).contains("wr_nodes"));
        assert!(experiment_rewriting_vs_chase(&[20]).contains("students"));
        assert!(experiment_rewriting_soundness().contains("consistent=true"));
        assert!(experiment_approximation_quality(&[1, 3]).contains("ground truth"));
        assert!(experiment_chase_scaling(&[8], &[30]).contains("speedup"));
        let e12 = experiment_serve_throughput(60, 4, 2);
        assert!(e12.contains("identical across serve"));
        assert!(e12.contains("warm-cache speedup"));
        let e14 = experiment_ingestion_incremental(&[200, 800], 10, 5, 60, 4);
        assert!(e14.contains("commit speedup"), "{e14}");
        assert!(e14.contains("incremental materialization speedup"), "{e14}");
        let e15 = experiment_retraction_dred(60, 4, 8);
        assert!(e15.contains("dred materialization speedup"), "{e15}");
        assert!(e15.contains("WHY latency"), "{e15}");
        assert!(e15.contains("provenance ablation"), "{e15}");
        let e13 = experiment_planner_vs_forced(60, 3);
        assert!(e13.contains("agree=true"), "{e13}");
        assert!(!e13.contains("agree=false"), "{e13}");
        assert!(
            e13.contains("planner plan=chase exact=true answer=true"),
            "{e13}"
        );
        assert!(e13.contains("forced rewrite exact=false"), "{e13}");
        let e16 = experiment_durability(60, 8, &[30]);
        assert!(e16.contains("commit overhead"), "{e16}");
        assert!(e16.contains("every-8 vs in-memory"), "{e16}");
        assert!(e16.contains("recovery time"), "{e16}");
        let e17 = experiment_tracing_overhead(60, 4);
        assert!(e17.contains("disabled-path overhead"), "{e17}");
        assert!(e17.contains("tracing enabled overhead"), "{e17}");
        let e18 = experiment_goal_driven(&[120], 3);
        assert!(
            e18.contains("answers identical across pipelines: true"),
            "{e18}"
        );
        assert!(e18.contains("goal-driven speedup"), "{e18}");
        let e19 = experiment_generic_join(&[240], 3);
        assert!(
            e19.contains("answers identical across join strategies: true"),
            "{e19}"
        );
        assert!(
            e19.contains("cost model within tolerance of the measured winner on every query: true"),
            "{e19}"
        );
    }
}
