//! Run every experiment of EXPERIMENTS.md (E1–E19) and print the tables.
//!
//! ```text
//! cargo run -p ontorew-bench --release --bin run_experiments \
//!     [--json] [--only E8,E12] [--metrics]
//! ```
//!
//! By default the human-readable tables are printed, separated by blank
//! lines. With `--json` one JSON object per experiment is emitted per line
//! (NDJSON: `{"id": "E8", "report": "..."}`), which is what
//! `scripts/record_baseline.sh` consumes — no scraping of human-formatted
//! output. With `--metrics`, the process-global telemetry registry is
//! dumped after the runs as one NDJSON line per metric series — every
//! chase/rewrite/plan/serve counter the experiments drove.

use std::process::ExitCode;

/// Minimal JSON string escaping (the reports are plain UTF-8 text).
fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 8);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One experiment: its id and the thunk producing the report.
type Experiment = (&'static str, fn() -> String);

fn main() -> ExitCode {
    let mut json = false;
    let mut metrics = false;
    let mut only: Option<Vec<String>> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--metrics" => metrics = true,
            "--only" => {
                let list = args.next().expect("--only needs a comma-separated list");
                only = Some(list.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--help" | "-h" => {
                eprintln!("usage: run_experiments [--json] [--only E8,E12] [--metrics]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}; try --help");
                return ExitCode::FAILURE;
            }
        }
    }

    let experiments: Vec<Experiment> = vec![
        ("E1", ontorew_bench::experiment_fig1),
        ("E2", || {
            ontorew_bench::experiment_fig2(&[1, 2, 3, 4, 5, 6, 7])
        }),
        ("E3", ontorew_bench::experiment_fig3),
        ("E4", ontorew_bench::experiment_example3),
        ("E5", || ontorew_bench::experiment_class_subsumption(40, 8)),
        ("E6", || {
            ontorew_bench::experiment_swr_scaling(&[10, 50, 100, 250, 500, 1000])
        }),
        ("E7", || {
            ontorew_bench::experiment_wr_scaling(&[4, 8, 16, 32], 4_000)
        }),
        ("E8", || {
            ontorew_bench::experiment_rewriting_vs_chase(&[100, 1_000, 5_000, 20_000])
        }),
        ("E9", ontorew_bench::experiment_rewriting_soundness),
        ("E10", || {
            ontorew_bench::experiment_approximation_quality(&[1, 2, 3, 4, 5, 6])
        }),
        ("E11", || {
            ontorew_bench::experiment_chase_scaling(&[64, 128, 256], &[1_000, 5_000, 20_000])
        }),
        ("E12", || {
            ontorew_bench::experiment_serve_throughput(1_000, 100, 4)
        }),
        ("E13", || {
            ontorew_bench::experiment_planner_vs_forced(1_000, 9)
        }),
        ("E14", || {
            ontorew_bench::experiment_ingestion_incremental(
                &[1_000, 5_000, 20_000, 50_000],
                50,
                20,
                2_000,
                30,
            )
        }),
        ("E15", || {
            ontorew_bench::experiment_retraction_dred(20_000, 30, 200)
        }),
        ("E16", || {
            ontorew_bench::experiment_durability(20_000, 200, &[1_000, 5_000, 20_000])
        }),
        ("E17", || {
            ontorew_bench::experiment_tracing_overhead(1_000, 100)
        }),
        ("E18", || {
            ontorew_bench::experiment_goal_driven(&[20_000, 50_000], 5)
        }),
        ("E19", || {
            ontorew_bench::experiment_generic_join(&[300, 1_000, 3_000], 5)
        }),
    ];

    let mut first = true;
    for (id, run) in experiments {
        if let Some(only) = &only {
            if !only.iter().any(|o| o == id) {
                continue;
            }
        }
        let report = run();
        if json {
            println!(
                "{{\"id\": \"{id}\", \"report\": \"{}\"}}",
                json_escape(report.trim_end())
            );
        } else {
            if !first {
                println!();
            }
            println!("{report}");
        }
        first = false;
    }
    if metrics {
        // Everything the experiments drove, one NDJSON line per series —
        // the same registry the server exposes over `METRICS`.
        print!("{}", ontorew_telemetry::global_registry().render_ndjson());
    }
    ExitCode::SUCCESS
}
