//! Run every experiment of EXPERIMENTS.md (E1–E11) and print the tables.
//!
//! `cargo run -p ontorew-bench --release --bin run_experiments`

fn main() {
    let experiments: Vec<String> = vec![
        ontorew_bench::experiment_fig1(),
        ontorew_bench::experiment_fig2(&[1, 2, 3, 4, 5, 6, 7]),
        ontorew_bench::experiment_fig3(),
        ontorew_bench::experiment_example3(),
        ontorew_bench::experiment_class_subsumption(40, 8),
        ontorew_bench::experiment_swr_scaling(&[10, 50, 100, 250, 500, 1000]),
        ontorew_bench::experiment_wr_scaling(&[4, 8, 16, 32], 4_000),
        ontorew_bench::experiment_rewriting_vs_chase(&[100, 1_000, 5_000, 20_000]),
        ontorew_bench::experiment_rewriting_soundness(),
        ontorew_bench::experiment_approximation_quality(&[1, 2, 3, 4, 5, 6]),
        ontorew_bench::experiment_chase_scaling(&[64, 128, 256], &[1_000, 5_000, 20_000]),
    ];
    for (i, report) in experiments.iter().enumerate() {
        if i > 0 {
            println!();
        }
        println!("{report}");
    }
}
