//! `load_gen`: drive a running `ontorew-server` over TCP.
//!
//! Four modes:
//!
//! * `load` (default) — N client threads firing the E12 serving query mix
//!   as fast as the server answers, reporting aggregate QPS and latency
//!   percentiles:
//!   ```text
//!   load_gen load --addr 127.0.0.1:7411 --threads 4 --requests 1000
//!   ```
//! * `smoke` — the scripted exchange the CI workflow runs against a fresh
//!   server preloaded with `--students 0`: PREPARE/QUERY/INSERT/QUERY, an
//!   `EXPLAIN` of the cached plan, a two-tenant round trip
//!   (`TENANT CREATE/USE/DROP` with isolation asserted), an insert-heavy
//!   commit loop with interleaved queries (the O(delta) ingestion +
//!   incremental materialization path, over the wire), a `WHY`/`WHY NOT`
//!   explanation round trip, a delete-heavy retraction loop that
//!   unwinds the bulk inserts through the DRed path, and a goal-driven
//!   phase on a registrar tenant (a selective query whose `EXPLAIN` must
//!   report the magic-sets plan with its adorned-program dump, asserted
//!   down to the `plan_plans_total{kind="goal_driven"}` series). Exact
//!   expected answer counts are asserted — including a `METRICS` scrape
//!   that fails if the core telemetry families (`queries_total`,
//!   `chase_rounds_total`, ...) are absent or zero; exits non-zero on any
//!   mismatch, then shuts the server down:
//!   ```text
//!   load_gen smoke --addr 127.0.0.1:7411
//!   ```
//! * `persist-seed` — the first half of the crash-recovery smoke
//!   (`scripts/serve_smoke.sh` phase 2): against a **durable** server
//!   (`--students 0 --data-dir ...`), commit a known workload — a dozen
//!   single-fact epochs plus a retraction on the default tenant and a
//!   second durable tenant with its own ontology — then disconnect
//!   *without* `SHUTDOWN`. The harness kills the server with SIGKILL
//!   right after, so every acknowledged commit must survive on disk.
//! * `persist-verify` — the second half, run against the restarted
//!   server on the same data directory: asserts the exact answer counts,
//!   epochs and tenant list that `persist-seed` left behind, checks the
//!   `recoveries` counter, commits one more epoch to prove the recovered
//!   WAL accepts appends, scrapes `METRICS` for the durability families
//!   (`wal_appends_total`, `wal_fsync_seconds`, `recoveries_total`), and
//!   finally shuts the server down.

use ontorew_bench::percentile;
use ontorew_serve::ServeClient;
use std::process::ExitCode;
use std::time::Instant;

fn run_load(addr: &str, threads: usize, requests: usize) -> ExitCode {
    let queries: Vec<String> = ontorew_bench::serving_query_mix()
        .iter()
        .map(|q| q.to_string())
        .collect();
    eprintln!("load: {threads} threads x {requests} requests against {addr}");
    let wall = Instant::now();
    let handles: Vec<_> = (0..threads.max(1))
        .map(|_| {
            let addr = addr.to_string();
            let queries = queries.clone();
            std::thread::spawn(move || -> Result<Vec<u64>, String> {
                let mut client = ServeClient::connect(&addr).map_err(|e| e.to_string())?;
                let mut latencies = Vec::with_capacity(requests);
                for i in 0..requests {
                    let start = Instant::now();
                    client
                        .query(&queries[i % queries.len()])
                        .map_err(|e| e.to_string())?;
                    latencies.push(start.elapsed().as_micros() as u64);
                }
                client.quit().map_err(|e| e.to_string())?;
                Ok(latencies)
            })
        })
        .collect();
    let mut all: Vec<u64> = Vec::new();
    for h in handles {
        match h.join().expect("load thread") {
            Ok(latencies) => all.extend(latencies),
            Err(e) => {
                eprintln!("load thread failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let wall_s = wall.elapsed().as_secs_f64();
    all.sort_unstable();
    println!(
        "requests={} qps={:.0} p50_us={} p99_us={} max_us={}",
        all.len(),
        all.len() as f64 / wall_s.max(1e-9),
        percentile(&all, 0.50),
        percentile(&all, 0.99),
        all.last().copied().unwrap_or(0),
    );
    ExitCode::SUCCESS
}

/// Scrape `METRICS` and assert each named family has at least one series
/// with a non-zero value. Histogram families are matched through their
/// `_count` series, so `wal_fsync_seconds` asserts that fsyncs were
/// *observed*, not just that the family is registered.
fn scrape_metrics(client: &mut ServeClient, families: &[&str]) -> Result<(), String> {
    let text = client.metrics().map_err(|e| format!("metrics: {e}"))?;
    for family in families {
        let mut total = 0f64;
        let mut seen = false;
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let Some((series, value)) = line.rsplit_once(' ') else {
                continue;
            };
            let name = series.split('{').next().unwrap_or(series);
            if name == *family || name == format!("{family}_count") {
                seen = true;
                total += value.parse::<f64>().unwrap_or(0.0);
            }
        }
        if !seen {
            return Err(format!("FAIL metrics: family {family} absent from METRICS"));
        }
        if total == 0.0 {
            return Err(format!("FAIL metrics: family {family} present but zero"));
        }
    }
    println!(
        "ok   metrics: {} families present and non-zero ({})",
        families.len(),
        families.join(", ")
    );
    Ok(())
}

/// Scrape `METRICS` and assert one specific labelled series is non-zero —
/// e.g. `plan_plans_total{kind="goal_driven"}`. Labels render in
/// registration order, so `labels` must match the rendered set verbatim.
fn scrape_labeled_series(
    client: &mut ServeClient,
    family: &str,
    labels: &str,
) -> Result<(), String> {
    let text = client.metrics().map_err(|e| format!("metrics: {e}"))?;
    let series = format!("{family}{{{labels}}}");
    for line in text.lines() {
        let Some((name, value)) = line.rsplit_once(' ') else {
            continue;
        };
        if name == series {
            if value.parse::<f64>().unwrap_or(0.0) > 0.0 {
                println!("ok   metrics: {series} = {value}");
                return Ok(());
            }
            return Err(format!("FAIL metrics: {series} present but zero"));
        }
    }
    Err(format!("FAIL metrics: series {series} absent from METRICS"))
}

/// One step of the scripted smoke exchange: run, compare, complain.
fn check(step: &str, got: usize, want: usize) -> Result<(), String> {
    if got == want {
        println!("ok   {step}: {got}");
        Ok(())
    } else {
        Err(format!("FAIL {step}: expected {want}, got {got}"))
    }
}

fn run_smoke(addr: &str) -> ExitCode {
    match smoke_exchange(addr) {
        Ok(()) => {
            println!("smoke: all checks passed");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// The scripted exchange. Expects a server started with `--students 0`
/// (empty store, university ontology).
fn smoke_exchange(addr: &str) -> Result<(), String> {
    let mut client = ServeClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
    client.ping().map_err(|e| format!("ping: {e}"))?;

    // PREPARE compiles the person-query rewriting (9 disjuncts: person and
    // its subclass chain through student/phdStudent/employee/faculty/...).
    let prepared = client
        .prepare("q(X) :- person(X)")
        .map_err(|e| format!("prepare: {e}"))?;
    if prepared.get("cached").map(String::as_str) != Some("false") {
        return Err(format!(
            "FAIL prepare: expected a cold cache, got {prepared:?}"
        ));
    }

    // Empty store: no persons yet.
    let reply = client
        .query("q(X) :- person(X)")
        .map_err(|e| format!("query#1: {e}"))?;
    check("empty store answers", reply.count, 0)?;
    if !reply.cache_hit {
        return Err("FAIL query#1: PREPARE should have warmed the cache".into());
    }

    // Insert: two students (one also attends), a professor who teaches.
    let (added, epoch) = client
        .insert("student(sara); attends(ada, db101); teaches(kim, db101); professor(kim)")
        .map_err(|e| format!("insert: {e}"))?;
    check("facts added", added, 4)?;
    check("epoch after insert", epoch as usize, 1)?;

    // person(X) now: sara (student), ada (attends -> student), kim
    // (professor -> faculty -> employee).
    let reply = client
        .query("q(X) :- person(X)")
        .map_err(|e| format!("query#2: {e}"))?;
    check("persons after insert", reply.count, 3)?;

    // The α-renamed variant hits the same cache entry.
    let reply = client
        .query("people(Someone) :- person(Someone)")
        .map_err(|e| format!("query#3: {e}"))?;
    check("renamed variant answers", reply.count, 3)?;
    if !reply.cache_hit {
        return Err("FAIL query#3: α-renamed variant missed the cache".into());
    }

    // A join query: teachers of attended courses.
    let reply = client
        .query("q(T) :- teaches(T, C), attends(S, C)")
        .map_err(|e| format!("query#4: {e}"))?;
    check("teachers of attended courses", reply.count, 1)?;
    if reply.rows != vec![vec!["kim".to_string()]] {
        return Err(format!("FAIL query#4 rows: {:?}", reply.rows));
    }

    let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
    let hits: u64 = stats
        .get("cache_hits")
        .and_then(|v| v.parse().ok())
        .ok_or("FAIL stats: no cache_hits field")?;
    if hits < 3 {
        return Err(format!("FAIL stats: expected >=3 cache hits, got {hits}"));
    }

    // EXPLAIN: the university ontology is FO-rewritable and weakly acyclic,
    // so the cached plan is hybrid, and the dump names the reason.
    let explained = client
        .explain("q(X) :- person(X)")
        .map_err(|e| format!("explain: {e}"))?;
    if explained.fields.get("plan").map(String::as_str) != Some("hybrid") {
        return Err(format!(
            "FAIL explain: expected plan=hybrid, got {explained:?}"
        ));
    }
    if explained.fields.get("cached").map(String::as_str) != Some("true") {
        return Err(format!(
            "FAIL explain: the person-plan should already be cached, got {explained:?}"
        ));
    }
    if !explained.info.iter().any(|l| l.starts_with("reason:")) {
        return Err(format!("FAIL explain: no reason line in {explained:?}"));
    }
    println!(
        "ok   explain: plan=hybrid, cached, {} info lines",
        explained.info.len()
    );

    // Second tenant: its own ontology and store, isolated from the default
    // tenant, sharing the server's plan cache.
    client
        .tenant_create(
            "hr",
            "[H1] worksIn(X, D) -> employee(X). [H2] employee(X) -> person(X).",
        )
        .map_err(|e| format!("tenant create: {e}"))?;
    client
        .tenant_use("hr")
        .map_err(|e| format!("tenant use: {e}"))?;
    let (added, _) = client
        .insert("worksIn(ann, cs); worksIn(bob, math)")
        .map_err(|e| format!("tenant insert: {e}"))?;
    check("hr facts added", added, 2)?;
    let reply = client
        .query("q(X) :- person(X)")
        .map_err(|e| format!("tenant query: {e}"))?;
    check("hr persons", reply.count, 2)?;
    // The hr ontology has no existential rules: its plan is also decided by
    // the trichotomy (hybrid — linear and weakly acyclic).
    let explained = client
        .explain("q(X) :- person(X)")
        .map_err(|e| format!("tenant explain: {e}"))?;
    if explained.fields.get("plan").map(String::as_str) != Some("hybrid") {
        return Err(format!("FAIL tenant explain: {explained:?}"));
    }
    // Back on the default tenant the hr facts are invisible.
    client
        .tenant_use("default")
        .map_err(|e| format!("tenant use default: {e}"))?;
    let reply = client
        .query("q(X) :- person(X)")
        .map_err(|e| format!("default re-query: {e}"))?;
    check("default persons unchanged", reply.count, 3)?;
    let tenants = client
        .tenant_list()
        .map_err(|e| format!("tenant list: {e}"))?;
    if tenants != vec!["default".to_string(), "hr".to_string()] {
        return Err(format!("FAIL tenant list: {tenants:?}"));
    }
    client
        .tenant_drop("hr")
        .map_err(|e| format!("tenant drop: {e}"))?;
    println!("ok   tenants: create/use/query/drop isolated as expected");

    // Insert-heavy phase: a commit loop with interleaved queries, so the
    // O(delta) ingestion path (copy-on-write epoch publish + recorded delta
    // edges) is exercised over the wire every CI run. Epochs must advance
    // one per commit and every fourth query must see exactly the committed
    // state.
    let base_epoch = 1u64; // the single insert of the scripted exchange
    let base_persons = 3usize;
    const COMMITS: usize = 24;
    for k in 0..COMMITS {
        let (added, epoch) = client
            .insert(&format!("student(bulk{k}); attends(bulk{k}, db101)"))
            .map_err(|e| format!("bulk insert #{k}: {e}"))?;
        if added != 2 || epoch != base_epoch + k as u64 + 1 {
            return Err(format!(
                "FAIL bulk insert #{k}: expected (2, {}), got ({added}, {epoch})",
                base_epoch + k as u64 + 1
            ));
        }
        if k % 4 == 3 {
            let reply = client
                .query("q(X) :- person(X)")
                .map_err(|e| format!("bulk query #{k}: {e}"))?;
            check(
                &format!("persons after {} bulk commits", k + 1),
                reply.count,
                base_persons + k + 1,
            )?;
        }
    }
    let reply = client
        .query("q(X) :- person(X)")
        .map_err(|e| format!("final bulk query: {e}"))?;
    check(
        "persons after the commit loop",
        reply.count,
        base_persons + COMMITS,
    )?;
    let stats = client.stats().map_err(|e| format!("final stats: {e}"))?;
    let epoch: u64 = stats
        .get("epoch")
        .and_then(|v| v.parse().ok())
        .ok_or("FAIL stats: no epoch field")?;
    if epoch != base_epoch + COMMITS as u64 {
        return Err(format!(
            "FAIL stats: expected epoch {}, got {epoch}",
            base_epoch + COMMITS as u64
        ));
    }
    println!("ok   insert-heavy phase: {COMMITS} commits, epochs and answers consistent");

    // WHY / WHY NOT: the derivation graph over the wire. person(bulk0) is
    // derived (student -> person), so WHY reports the asserted premise plus
    // the fired rule; person(ghost) is absent, so WHY NOT lists the blocked
    // rule candidates that could produce it.
    let why = client
        .why("person(bulk0)")
        .map_err(|e| format!("why: {e}"))?;
    if why.fields.get("present").map(String::as_str) != Some("true") {
        return Err(format!(
            "FAIL why: person(bulk0) should be present: {why:?}"
        ));
    }
    let steps: usize = why
        .fields
        .get("steps")
        .and_then(|v| v.parse().ok())
        .ok_or("FAIL why: no steps field")?;
    if steps < 2 || why.info.len() != steps {
        return Err(format!("FAIL why: expected >=2 derivation steps: {why:?}"));
    }
    let why_not = client
        .why_not("person(ghost)")
        .map_err(|e| format!("why not: {e}"))?;
    if why_not.fields.get("present").map(String::as_str) != Some("false") || why_not.info.is_empty()
    {
        return Err(format!(
            "FAIL why not: expected blocked candidates for person(ghost): {why_not:?}"
        ));
    }
    println!(
        "ok   why/why not: {steps} derivation steps, {} blocked candidates",
        why_not.info.len()
    );

    // Delete-heavy phase: retract every bulk student again, one commit per
    // student, so the DRed path (retraction epochs + delete lineage) is
    // exercised over the wire every CI run. Epochs keep advancing one per
    // commit and interleaved queries must see exactly the shrunken state.
    let insert_epoch = base_epoch + COMMITS as u64;
    for k in 0..COMMITS {
        let (removed, epoch) = client
            .delete(&format!("student(bulk{k}); attends(bulk{k}, db101)"))
            .map_err(|e| format!("bulk delete #{k}: {e}"))?;
        if removed != 2 || epoch != insert_epoch + k as u64 + 1 {
            return Err(format!(
                "FAIL bulk delete #{k}: expected (2, {}), got ({removed}, {epoch})",
                insert_epoch + k as u64 + 1
            ));
        }
        if k % 4 == 3 {
            let reply = client
                .query("q(X) :- person(X)")
                .map_err(|e| format!("delete query #{k}: {e}"))?;
            check(
                &format!("persons after {} retractions", k + 1),
                reply.count,
                base_persons + COMMITS - (k + 1),
            )?;
        }
    }
    let reply = client
        .query("q(X) :- person(X)")
        .map_err(|e| format!("final delete query: {e}"))?;
    check(
        "persons after the retraction loop",
        reply.count,
        base_persons,
    )?;
    // Retracting an absent fact is a no-op on the data but still publishes
    // an epoch (mirrors duplicate inserts).
    let (removed, epoch) = client
        .delete("student(nobody)")
        .map_err(|e| format!("absent delete: {e}"))?;
    if removed != 0 || epoch != insert_epoch + COMMITS as u64 + 1 {
        return Err(format!(
            "FAIL absent delete: expected (0, {}), got ({removed}, {epoch})",
            insert_epoch + COMMITS as u64 + 1
        ));
    }
    // The retracted student is genuinely gone from the derived state.
    let why = client
        .why("person(bulk0)")
        .map_err(|e| format!("why after delete: {e}"))?;
    if why.fields.get("present").map(String::as_str) != Some("false") {
        return Err(format!(
            "FAIL why after delete: person(bulk0) should be absent: {why:?}"
        ));
    }
    let stats = client.stats().map_err(|e| format!("delete stats: {e}"))?;
    let deletes: u64 = stats
        .get("deletes")
        .and_then(|v| v.parse().ok())
        .ok_or("FAIL stats: no deletes field")?;
    if deletes != COMMITS as u64 + 1 {
        return Err(format!(
            "FAIL stats: expected {} deletes, got {deletes}",
            COMMITS + 1
        ));
    }
    let prov_nodes: u64 = stats
        .get("prov_nodes")
        .and_then(|v| v.parse().ok())
        .ok_or("FAIL stats: no prov_nodes field")?;
    if prov_nodes == 0 {
        return Err("FAIL stats: expected a non-empty derivation graph".into());
    }
    println!("ok   delete-heavy phase: {COMMITS} retractions, epochs, answers and WHY consistent");

    // Goal-driven phase: a registrar tenant whose ontology is pure Datalog
    // (not UCQ-rewritable, chase-terminating), so the selective transcript
    // query compiles to the magic-sets pipeline. EXPLAIN must name the
    // goal-driven plan and dump the adorned program; the answers must be
    // exactly the prerequisite closure of the student's enrollment; the
    // broad all-students scan has no bound seed and falls back to the full
    // chase on the same tenant.
    client
        .tenant_create(
            "registrar",
            "[G1] enrolled(S, C) -> student(S). \
             [G2] enrolled(S, C) -> course(C). \
             [G3] prereq(C1, C2) -> requires(C1, C2). \
             [G4] requires(C1, C2), prereq(C2, C3) -> requires(C1, C3). \
             [G5] enrolled(S, C), requires(C, P) -> mustComplete(S, P).",
        )
        .map_err(|e| format!("registrar create: {e}"))?;
    client
        .tenant_use("registrar")
        .map_err(|e| format!("registrar use: {e}"))?;
    let (added, _) = client
        .insert(
            "enrolled(s42, db300); prereq(db300, db200); prereq(db200, db100); \
             enrolled(ada, db100)",
        )
        .map_err(|e| format!("registrar insert: {e}"))?;
    check("registrar facts added", added, 4)?;
    let selective = "q(P) :- mustComplete(\"s42\", P)";
    let explained = client
        .explain(selective)
        .map_err(|e| format!("registrar explain: {e}"))?;
    if explained.fields.get("plan").map(String::as_str) != Some("goal_driven") {
        return Err(format!(
            "FAIL registrar explain: expected plan=goal_driven, got {explained:?}"
        ));
    }
    if !explained.info.iter().any(|l| l.contains("magic_")) {
        return Err(format!(
            "FAIL registrar explain: no adorned-program dump in {explained:?}"
        ));
    }
    let reply = client
        .query(selective)
        .map_err(|e| format!("registrar query: {e}"))?;
    check("s42 prerequisite closure", reply.count, 2)?;
    let broad = client
        .explain("q(S) :- student(S)")
        .map_err(|e| format!("registrar broad explain: {e}"))?;
    if broad.fields.get("plan").map(String::as_str) != Some("chase") {
        return Err(format!(
            "FAIL registrar broad explain: expected the full-chase fallback, got {broad:?}"
        ));
    }
    scrape_labeled_series(&mut client, "plan_plans_total", "kind=\"goal_driven\"")?;
    client
        .tenant_use("default")
        .map_err(|e| format!("registrar use default: {e}"))?;
    client
        .tenant_drop("registrar")
        .map_err(|e| format!("registrar drop: {e}"))?;
    println!("ok   goal-driven phase: plan, adorned dump, answers and metrics consistent");

    // The METRICS surface: the core engine families must all have moved
    // after the exchange above (queries, plans, rewritings, chase rounds,
    // join evaluations, per-verb request counters and latency histograms).
    scrape_metrics(
        &mut client,
        &[
            "queries_total",
            "requests_total",
            "request_seconds",
            "plan_plans_total",
            "plan_cache_hits_total",
            "rewrite_runs_total",
            "chase_rounds_total",
            "chase_triggers_fired_total",
            "join_evaluations_total",
        ],
    )?;
    // Every chase trigger search and CQ evaluation above ran the default
    // backtracking join, so that strategy label specifically must have moved.
    scrape_labeled_series(
        &mut client,
        "join_evaluations_total",
        "strategy=\"backtracking\"",
    )?;

    client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    Ok(())
}

/// The deterministic workload shared by `persist-seed` and
/// `persist-verify`: these constants pin the epochs and answer counts the
/// verify half asserts after the crash-restart.
const SEED_STUDENTS: usize = 12;
const SEED_WORKERS: usize = 5;
const SEED_TENANT: &str = "payroll";
const SEED_TENANT_PROGRAM: &str =
    "[H1] worksIn(X, D) -> employee(X). [H2] employee(X) -> person(X).";

fn run_persist(addr: &str, verify: bool) -> ExitCode {
    let (label, result) = if verify {
        ("persist-verify", persist_verify_exchange(addr))
    } else {
        ("persist-seed", persist_seed_exchange(addr))
    };
    match result {
        Ok(()) => {
            println!("{label}: all checks passed");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// Seed a durable server (`--students 0 --data-dir ...`) with the known
/// workload, one commit per epoch, then disconnect WITHOUT shutting the
/// server down — the harness follows up with `kill -9` to simulate a
/// crash mid-service.
fn persist_seed_exchange(addr: &str) -> Result<(), String> {
    let mut client = ServeClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
    client.ping().map_err(|e| format!("ping: {e}"))?;

    // Default tenant: one student per commit, then one retraction.
    for k in 0..SEED_STUDENTS {
        let (added, epoch) = client
            .insert(&format!("student(p{k})"))
            .map_err(|e| format!("seed insert #{k}: {e}"))?;
        if added != 1 || epoch != k as u64 + 1 {
            return Err(format!(
                "FAIL seed insert #{k}: expected (1, {}), got ({added}, {epoch})",
                k + 1
            ));
        }
    }
    let (removed, epoch) = client
        .delete("student(p0)")
        .map_err(|e| format!("seed delete: {e}"))?;
    if removed != 1 || epoch != SEED_STUDENTS as u64 + 1 {
        return Err(format!(
            "FAIL seed delete: expected (1, {}), got ({removed}, {epoch})",
            SEED_STUDENTS + 1
        ));
    }
    let reply = client
        .query("q(X) :- person(X)")
        .map_err(|e| format!("seed query: {e}"))?;
    check("seeded persons", reply.count, SEED_STUDENTS - 1)?;

    // A second durable tenant with its own ontology and store.
    client
        .tenant_create(SEED_TENANT, SEED_TENANT_PROGRAM)
        .map_err(|e| format!("seed tenant create: {e}"))?;
    client
        .tenant_use(SEED_TENANT)
        .map_err(|e| format!("seed tenant use: {e}"))?;
    for k in 0..SEED_WORKERS {
        let (added, epoch) = client
            .insert(&format!("worksIn(w{k}, ops)"))
            .map_err(|e| format!("seed tenant insert #{k}: {e}"))?;
        if added != 1 || epoch != k as u64 + 1 {
            return Err(format!(
                "FAIL seed tenant insert #{k}: expected (1, {}), got ({added}, {epoch})",
                k + 1
            ));
        }
    }
    let reply = client
        .query("q(X) :- person(X)")
        .map_err(|e| format!("seed tenant query: {e}"))?;
    check("seeded payroll persons", reply.count, SEED_WORKERS)?;

    // The commits above sit in the WAL tail (the compactor threshold is
    // far away): exactly what the crash must not lose.
    let stats = client.stats().map_err(|e| format!("seed stats: {e}"))?;
    let wal_bytes: u64 = stats
        .get("wal_bytes")
        .and_then(|v| v.parse().ok())
        .ok_or("FAIL seed stats: no wal_bytes field (server not durable?)")?;
    if wal_bytes == 0 {
        return Err("FAIL seed stats: expected a non-empty WAL tail".into());
    }
    println!("ok   seeded: WAL tail {wal_bytes} bytes awaiting the crash");
    client.quit().map_err(|e| format!("quit: {e}"))?;
    Ok(())
}

/// Verify the restarted server recovered everything `persist-seed` was
/// acknowledged for, byte-for-byte at the answer level, then stop it.
fn persist_verify_exchange(addr: &str) -> Result<(), String> {
    let mut client = ServeClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
    client.ping().map_err(|e| format!("ping: {e}"))?;

    let reply = client
        .query("q(X) :- person(X)")
        .map_err(|e| format!("verify query: {e}"))?;
    check("recovered persons", reply.count, SEED_STUDENTS - 1)?;
    let stats = client.stats().map_err(|e| format!("verify stats: {e}"))?;
    let epoch: u64 = stats
        .get("epoch")
        .and_then(|v| v.parse().ok())
        .ok_or("FAIL verify stats: no epoch field")?;
    if epoch != SEED_STUDENTS as u64 + 1 {
        return Err(format!(
            "FAIL verify stats: expected epoch {}, got {epoch}",
            SEED_STUDENTS + 1
        ));
    }
    let recoveries: u64 = stats
        .get("recoveries")
        .and_then(|v| v.parse().ok())
        .ok_or("FAIL verify stats: no recoveries field")?;
    if recoveries < 1 {
        return Err("FAIL verify stats: the restart did not count as a recovery".into());
    }

    let tenants = client
        .tenant_list()
        .map_err(|e| format!("verify tenant list: {e}"))?;
    if tenants != vec!["default".to_string(), SEED_TENANT.to_string()] {
        return Err(format!("FAIL verify tenant list: {tenants:?}"));
    }
    client
        .tenant_use(SEED_TENANT)
        .map_err(|e| format!("verify tenant use: {e}"))?;
    let reply = client
        .query("q(X) :- person(X)")
        .map_err(|e| format!("verify tenant query: {e}"))?;
    check("recovered payroll persons", reply.count, SEED_WORKERS)?;

    // The recovered WAL accepts new appends at the next epoch.
    let (added, epoch) = client
        .insert("worksIn(postcrash, ops)")
        .map_err(|e| format!("post-recovery insert: {e}"))?;
    if added != 1 || epoch != SEED_WORKERS as u64 + 1 {
        return Err(format!(
            "FAIL post-recovery insert: expected (1, {}), got ({added}, {epoch})",
            SEED_WORKERS + 1
        ));
    }
    let reply = client
        .query("q(X) :- person(X)")
        .map_err(|e| format!("post-recovery query: {e}"))?;
    check(
        "payroll persons after new commit",
        reply.count,
        SEED_WORKERS + 1,
    )?;
    // Durability metric families: the restart counts a recovery, and the
    // post-crash insert appends (and fsyncs — the smoke harness runs the
    // durable server with `--fsync always`) through the recovered WAL.
    scrape_metrics(
        &mut client,
        &[
            "queries_total",
            "wal_appends_total",
            "wal_fsync_seconds",
            "recoveries_total",
        ],
    )?;

    println!("ok   recovery #{recoveries}: both tenants intact, WAL writable");
    client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    Ok(())
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7411".to_string();
    let mut threads = 4usize;
    let mut requests = 1000usize;
    let mut mode = "load".to_string();
    let mut args = std::env::args().skip(1).peekable();
    if let Some(first) = args.peek() {
        if ["load", "smoke", "persist-seed", "persist-verify"].contains(&first.as_str()) {
            mode = args.next().unwrap();
        }
    }
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = take("--addr"),
            "--threads" => threads = take("--threads").parse().expect("--threads: not a number"),
            "--requests" => {
                requests = take("--requests")
                    .parse()
                    .expect("--requests: not a number")
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: load_gen [load|smoke|persist-seed|persist-verify] \
                     [--addr HOST:PORT] [--threads N] [--requests N]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}; try --help");
                return ExitCode::FAILURE;
            }
        }
    }
    match mode.as_str() {
        "smoke" => run_smoke(&addr),
        "persist-seed" => run_persist(&addr, false),
        "persist-verify" => run_persist(&addr, true),
        _ => run_load(&addr, threads, requests),
    }
}
