//! Negative constraints and equality-generating dependencies.
//!
//! Real OBDA deployments (and the Datalog± languages the paper builds on)
//! pair the TGD ontology with two further kinds of dependencies:
//!
//! * **Negative constraints (NCs)** `φ(x) → ⊥`: the conjunction `φ` must
//!   never be entailed. Checking an NC reduces to answering the boolean CQ
//!   `q() :- φ` over the ontology and the data: the knowledge base is
//!   inconsistent with the NC iff the certain answer is *true*. Because the
//!   check is plain CQ answering, FO-rewritability of the TGD set (the
//!   paper's SWR/WR machinery) immediately gives FO-rewritability of NC
//!   checking as well.
//! * **Equality-generating dependencies (EGDs)** `φ(x) → x_i = x_j` (e.g.
//!   functionality of a role). Under the Unique Name Assumption of §3, a
//!   violation is witnessed by certain answers `(a, b)` to the CQ
//!   `q(x_i, x_j) :- φ` with `a ≠ b` two distinct constants. This is the
//!   *separability* treatment customary in Datalog±/DL-Lite: EGDs are used to
//!   detect inconsistency, not to merge labelled nulls during the chase.
//!
//! [`check_constraints`] runs every constraint through an [`ObdaSystem`] and
//! returns a [`ConstraintReport`] listing the violations with their
//! witnesses.

use crate::system::{ObdaSystem, Strategy};
use ontorew_model::prelude::*;
use serde::Serialize;
use std::fmt;

/// A negative constraint `body → ⊥`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NegativeConstraint {
    /// Optional label used in reports.
    pub label: Option<Symbol>,
    /// The forbidden conjunction.
    pub body: Vec<Atom>,
}

impl NegativeConstraint {
    /// Build a negative constraint from its body atoms.
    ///
    /// # Panics
    /// Panics if the body is empty.
    pub fn new(body: Vec<Atom>) -> Self {
        assert!(
            !body.is_empty(),
            "a negative constraint must have at least one body atom"
        );
        NegativeConstraint { label: None, body }
    }

    /// Attach a label.
    pub fn labelled(label: &str, body: Vec<Atom>) -> Self {
        let mut nc = NegativeConstraint::new(body);
        nc.label = Some(Symbol::intern(label));
        nc
    }

    /// Parse a negative constraint from the body of a boolean query, e.g.
    /// `"student(X), professor(X)"`.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let query = parse_query(&format!("q() :- {text}"))?;
        Ok(NegativeConstraint::new(query.body))
    }

    /// The boolean CQ whose certain answer decides whether the constraint is
    /// violated.
    pub fn violation_query(&self) -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(self.body.clone()).named("nc_violation")
    }
}

impl fmt::Display for NegativeConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(l) = self.label {
            write!(f, "[{l}] ")?;
        }
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, " -> false")
    }
}

/// An equality-generating dependency `body → left = right`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Egd {
    /// Optional label used in reports.
    pub label: Option<Symbol>,
    /// The premise conjunction.
    pub body: Vec<Atom>,
    /// The first equated variable (must occur in the body).
    pub left: Variable,
    /// The second equated variable (must occur in the body).
    pub right: Variable,
}

impl Egd {
    /// Build an EGD from body atoms and the two equated variables.
    ///
    /// # Panics
    /// Panics if the body is empty or if either variable does not occur in
    /// the body.
    pub fn new(body: Vec<Atom>, left: Variable, right: Variable) -> Self {
        assert!(!body.is_empty(), "an EGD must have at least one body atom");
        let vars: std::collections::BTreeSet<Variable> = ontorew_model::atom::variables_of(&body)
            .into_iter()
            .collect();
        assert!(
            vars.contains(&left) && vars.contains(&right),
            "both equated variables of an EGD must occur in its body"
        );
        Egd {
            label: None,
            body,
            left,
            right,
        }
    }

    /// Attach a label.
    pub fn labelled(label: &str, body: Vec<Atom>, left: Variable, right: Variable) -> Self {
        let mut egd = Egd::new(body, left, right);
        egd.label = Some(Symbol::intern(label));
        egd
    }

    /// Parse an EGD from a body text and the names of the two equated
    /// variables, e.g. `Egd::parse("hasHead(D, X), hasHead(D, Y)", "X", "Y")`.
    pub fn parse(body: &str, left: &str, right: &str) -> Result<Self, ParseError> {
        let query = parse_query(&format!("q() :- {body}"))?;
        Ok(Egd::new(
            query.body,
            Variable::new(left),
            Variable::new(right),
        ))
    }

    /// A functionality constraint on a binary predicate: the first position
    /// determines the second (`p(X, Y), p(X, Z) → Y = Z`).
    pub fn functional(predicate: &str) -> Self {
        let body = vec![
            Atom::new(predicate, vec![Term::variable("X"), Term::variable("Y")]),
            Atom::new(predicate, vec![Term::variable("X"), Term::variable("Z")]),
        ];
        Egd::labelled(
            &format!("func_{predicate}"),
            body,
            Variable::new("Y"),
            Variable::new("Z"),
        )
    }

    /// The CQ whose certain answers witness violations: answer pairs binding
    /// the two equated variables to distinct constants.
    pub fn violation_query(&self) -> ConjunctiveQuery {
        ConjunctiveQuery::new(vec![self.left, self.right], self.body.clone()).named("egd_violation")
    }
}

impl fmt::Display for Egd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(l) = self.label {
            write!(f, "[{l}] ")?;
        }
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, " -> {} = {}", self.left, self.right)
    }
}

/// A bundle of negative constraints and EGDs attached to an ontology.
#[derive(Clone, Debug, Default)]
pub struct ConstraintSet {
    /// The negative constraints.
    pub negative_constraints: Vec<NegativeConstraint>,
    /// The equality-generating dependencies.
    pub egds: Vec<Egd>,
}

impl ConstraintSet {
    /// An empty constraint set.
    pub fn new() -> Self {
        ConstraintSet::default()
    }

    /// Add a negative constraint.
    pub fn push_nc(&mut self, nc: NegativeConstraint) {
        self.negative_constraints.push(nc);
    }

    /// Add an EGD.
    pub fn push_egd(&mut self, egd: Egd) {
        self.egds.push(egd);
    }

    /// Total number of constraints.
    pub fn len(&self) -> usize {
        self.negative_constraints.len() + self.egds.len()
    }

    /// True if there are no constraints.
    pub fn is_empty(&self) -> bool {
        self.negative_constraints.is_empty() && self.egds.is_empty()
    }
}

/// One detected violation.
#[derive(Clone, Debug, Serialize)]
pub struct ConstraintViolation {
    /// The constraint that is violated (rendered).
    pub constraint: String,
    /// Whether the violated constraint is an NC or an EGD.
    pub kind: ConstraintKind,
    /// A rendering of the witnesses: empty for NCs (the witness is the
    /// boolean match itself), the offending `(left, right)` constant pairs
    /// for EGDs.
    pub witnesses: Vec<String>,
    /// Whether the underlying CQ answering step was exact; when false the
    /// violation is certain (answering is sound) but the *absence* of further
    /// violations is not guaranteed.
    pub exact: bool,
}

/// Which family a violated constraint belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum ConstraintKind {
    /// Negative constraint `φ → ⊥`.
    NegativeConstraint,
    /// Equality-generating dependency `φ → x = y`.
    Egd,
}

/// The outcome of checking a [`ConstraintSet`] against an [`ObdaSystem`].
#[derive(Clone, Debug, Serialize)]
pub struct ConstraintReport {
    /// Number of constraints checked.
    pub checked: usize,
    /// The violations found.
    pub violations: Vec<ConstraintViolation>,
    /// True if every underlying CQ answering step was exact, i.e. the verdict
    /// is definitive in both directions.
    pub exact: bool,
}

impl ConstraintReport {
    /// True if no violation was found.
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Check every constraint of `constraints` against `system` using the given
/// answering strategy (use [`Strategy::Auto`] unless you are benchmarking a
/// specific path).
pub fn check_constraints(
    system: &ObdaSystem,
    constraints: &ConstraintSet,
    strategy: Strategy,
) -> ConstraintReport {
    let mut violations = Vec::new();
    let mut exact = true;

    for nc in &constraints.negative_constraints {
        let result = system.answer(&nc.violation_query(), strategy);
        exact &= result.exact;
        if result.answers.as_boolean() {
            violations.push(ConstraintViolation {
                constraint: nc.to_string(),
                kind: ConstraintKind::NegativeConstraint,
                witnesses: Vec::new(),
                exact: result.exact,
            });
        }
    }

    for egd in &constraints.egds {
        let result = system.answer(&egd.violation_query(), strategy);
        exact &= result.exact;
        let witnesses: Vec<String> = result
            .answers
            .iter()
            .filter(|row| row.len() == 2 && row[0] != row[1])
            .map(|row| format!("{} ≠ {}", row[0], row[1]))
            .collect();
        if !witnesses.is_empty() {
            violations.push(ConstraintViolation {
                constraint: egd.to_string(),
                kind: ConstraintKind::Egd,
                witnesses,
                exact: result.exact,
            });
        }
    }

    ConstraintReport {
        checked: constraints.len(),
        violations,
        exact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::parse_program;

    fn disjoint_classes_system(with_conflict: bool) -> ObdaSystem {
        let ontology = parse_program(
            "[R1] phdStudent(X) -> student(X).\n\
             [R2] professor(X) -> employee(X).",
        )
        .unwrap();
        let mut data = Instance::new();
        data.insert_fact("phdStudent", &["dana"]);
        data.insert_fact("professor", &["alice"]);
        if with_conflict {
            // dana is also asserted to be a professor: the inferred
            // student(dana) together with employee(dana) trips the NC below.
            data.insert_fact("professor", &["dana"]);
        }
        ObdaSystem::new(ontology, data)
    }

    #[test]
    fn consistent_data_passes_nc_checking() {
        let system = disjoint_classes_system(false);
        let mut constraints = ConstraintSet::new();
        constraints.push_nc(NegativeConstraint::parse("student(X), employee(X)").unwrap());
        let report = check_constraints(&system, &constraints, Strategy::Auto);
        assert!(report.is_consistent());
        assert!(report.exact);
        assert_eq!(report.checked, 1);
    }

    #[test]
    fn nc_violation_is_detected_through_inference() {
        // The violation is only visible after applying the TGDs: the data
        // never mentions student(dana) or employee(dana) explicitly.
        let system = disjoint_classes_system(true);
        let mut constraints = ConstraintSet::new();
        constraints.push_nc(NegativeConstraint::labelled(
            "disjoint_student_employee",
            vec![
                Atom::new("student", vec![Term::variable("X")]),
                Atom::new("employee", vec![Term::variable("X")]),
            ],
        ));
        let report = check_constraints(&system, &constraints, Strategy::Auto);
        assert!(!report.is_consistent());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(
            report.violations[0].kind,
            ConstraintKind::NegativeConstraint
        );
        assert!(report.violations[0]
            .constraint
            .contains("disjoint_student_employee"));
    }

    #[test]
    fn functional_egd_violation_reports_the_offending_pair() {
        let ontology = parse_program("[R1] dept(D) -> hasHead(D, H).").unwrap();
        let mut data = Instance::new();
        data.insert_fact("hasHead", &["cs", "alice"]);
        data.insert_fact("hasHead", &["cs", "bob"]);
        data.insert_fact("hasHead", &["math", "carol"]);
        let system = ObdaSystem::new(ontology, data);
        let mut constraints = ConstraintSet::new();
        constraints.push_egd(Egd::functional("hasHead"));
        let report = check_constraints(&system, &constraints, Strategy::Auto);
        assert!(!report.is_consistent());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ConstraintKind::Egd);
        // alice/bob clash in both orders; math's single head is fine.
        assert!(report.violations[0]
            .witnesses
            .iter()
            .all(|w| w.contains("alice") || w.contains("bob")));
    }

    #[test]
    fn egd_is_not_violated_by_nulls_invented_by_the_ontology() {
        // The ontology invents a head for every department, but an invented
        // (labelled-null) head never yields a *certain* violation pair, so a
        // department with a single explicit head — or none — is fine.
        let ontology = parse_program("[R1] dept(D) -> hasHead(D, H).").unwrap();
        let mut data = Instance::new();
        data.insert_fact("dept", &["cs"]);
        data.insert_fact("hasHead", &["math", "carol"]);
        data.insert_fact("dept", &["math"]);
        let system = ObdaSystem::new(ontology, data);
        let mut constraints = ConstraintSet::new();
        constraints.push_egd(Egd::functional("hasHead"));
        let report = check_constraints(&system, &constraints, Strategy::Auto);
        assert!(report.is_consistent(), "report: {report:?}");
    }

    #[test]
    fn parsing_and_display_round_trip() {
        let nc = NegativeConstraint::parse("student(X), employee(X)").unwrap();
        assert_eq!(nc.body.len(), 2);
        assert!(nc.to_string().ends_with("-> false"));

        let egd = Egd::parse("worksIn(X, D1), worksIn(X, D2)", "D1", "D2").unwrap();
        assert_eq!(egd.body.len(), 2);
        assert!(egd.to_string().contains("D1 = D2"));

        let q = egd.violation_query();
        assert_eq!(q.arity(), 2);
    }

    #[test]
    #[should_panic(expected = "must occur in its body")]
    fn egd_rejects_variables_outside_the_body() {
        Egd::new(
            vec![Atom::new("p", vec![Term::variable("X")])],
            Variable::new("X"),
            Variable::new("Y"),
        );
    }

    #[test]
    fn empty_constraint_set_is_trivially_consistent() {
        let system = disjoint_classes_system(true);
        let report = check_constraints(&system, &ConstraintSet::new(), Strategy::Auto);
        assert!(report.is_consistent());
        assert_eq!(report.checked, 0);
        assert!(report.exact);
    }

    #[test]
    fn constraint_set_counting() {
        let mut set = ConstraintSet::new();
        assert!(set.is_empty());
        set.push_nc(NegativeConstraint::parse("a(X), b(X)").unwrap());
        set.push_egd(Egd::functional("hasHead"));
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }
}
