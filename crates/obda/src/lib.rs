//! # ontorew-obda
//!
//! The ontology-based data access facade: ontology (TGDs) + mappings +
//! relational source, answered by UCQ rewriting or by chase materialization,
//! with the strategy chosen from the FO-rewritability classification of
//! `ontorew-core` — the working-system vision of §8 of the paper.
//!
//! ```
//! use ontorew_model::{parse_program, parse_query, Instance};
//! use ontorew_obda::{ObdaSystem, Strategy};
//!
//! let ontology = parse_program("[R1] student(X) -> person(X).").unwrap();
//! let mut data = Instance::new();
//! data.insert_fact("student", &["sara"]);
//! let system = ObdaSystem::new(ontology, data);
//! let query = parse_query("q(X) :- person(X)").unwrap();
//! let result = system.answer(&query, Strategy::Auto);
//! assert!(result.exact);
//! assert!(result.answers.contains_constants(&["sara"]));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod consistency;
pub mod constraints;
pub mod mapping;
pub mod report;
pub mod system;

pub use consistency::{cross_check, ConsistencyReport};
pub use constraints::{
    check_constraints, ConstraintKind, ConstraintReport, ConstraintSet, ConstraintViolation, Egd,
    NegativeConstraint,
};
pub use mapping::{Mapping, MappingSet};
pub use report::SystemReport;
pub use system::{ObdaAnswers, ObdaSystem, Strategy};
