//! The OBDA system facade.
//!
//! An [`ObdaSystem`] bundles the three layers of §1 of the paper — ontology
//! (TGDs), mappings, and the extensional data source — and answers
//! conjunctive queries by delegating to the classification-driven planner of
//! `ontorew-plan`: [`ObdaSystem::answer`] prepares a [`PreparedQuery`] whose
//! plan the trichotomy picks (rewriting where FO-rewritability holds,
//! materialization where the chase terminates, best-effort otherwise) and
//! executes it over the retrieved ABox.
//!
//! [`Strategy`] survives as a **deprecated forced-plan override**: `Auto`
//! is the planner's choice, while `Rewriting`/`Materialization` force the
//! corresponding plan kind through [`ontorew_plan::Planner::prepare_forced`]
//! (useful for cross-checks and ablation experiments, and honest about the
//! weaker guarantees a forced plan may carry). New code should use
//! [`ObdaSystem::planner`] and the `ontorew-plan` API directly.

use crate::mapping::MappingSet;
use ontorew_chase::ChaseConfig;
use ontorew_core::ClassificationReport;
use ontorew_model::prelude::*;
use ontorew_plan::{Execution, PlanKind, Planner, PlannerConfig, PreparedQuery, StrategyTaken};
use ontorew_rewrite::RewriteConfig;
use ontorew_storage::{AnswerSet, RelationalStore};

/// The query answering strategy override.
///
/// **Deprecated** in favor of the planner (`ontorew-plan`), which chooses
/// the strategy from the classification report and per-query cost signals.
/// `Auto` simply delegates to the planner; the other two variants force a
/// plan kind and are kept for cross-checking experiments and backward
/// compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Force a `RewriteThenEvaluate` plan (UCQ rewriting over the source).
    Rewriting,
    /// Force a `ChaseThenEvaluate` plan (materialization, then evaluation).
    Materialization,
    /// Let the planner choose from the classification report (the default
    /// and the recommended mode).
    Auto,
}

/// The result of answering a query through the OBDA system.
#[derive(Clone, Debug)]
pub struct ObdaAnswers {
    /// The certain answers found.
    pub answers: AnswerSet,
    /// Which concrete strategy produced them.
    pub strategy: Strategy,
    /// True if the strategy was complete (perfect rewriting or terminated
    /// chase); false means the answers are a sound under-approximation.
    pub exact: bool,
    /// The full provenance report of the underlying plan execution.
    pub provenance: ontorew_plan::Provenance,
}

/// An ontology-based data access system: ontology + mappings + source data.
#[derive(Clone, Debug)]
pub struct ObdaSystem {
    mappings: MappingSet,
    source: RelationalStore,
    planner: Planner,
}

impl ObdaSystem {
    /// Build a system whose source already speaks the ontology vocabulary
    /// (identity mappings).
    pub fn new(ontology: TgdProgram, data: Instance) -> Self {
        let source = RelationalStore::from_instance(&data);
        let mappings = MappingSet::identity_for(&source.signature());
        ObdaSystem::with_mappings(ontology, mappings, source)
    }

    /// Build a system with explicit mappings over an arbitrary source store.
    pub fn with_mappings(
        ontology: TgdProgram,
        mappings: MappingSet,
        source: RelationalStore,
    ) -> Self {
        ObdaSystem {
            mappings,
            source,
            planner: Planner::new(ontology),
        }
    }

    /// Override the rewriting configuration (depth/size budgets). Rebuilds
    /// the planner, so call this before answering queries.
    pub fn with_rewrite_config(mut self, config: RewriteConfig) -> Self {
        let planner_config = PlannerConfig {
            rewrite: Some(config),
            chase: *self.planner.chase_config(),
            ..PlannerConfig::default()
        };
        self.planner = Planner::with_config(self.planner.program().clone(), planner_config);
        self
    }

    /// Override the chase configuration (round/fact budgets). Rebuilds the
    /// planner, so call this before answering queries.
    pub fn with_chase_config(mut self, config: ChaseConfig) -> Self {
        let planner_config = PlannerConfig {
            rewrite: Some(*self.planner.rewrite_config()),
            chase: config,
            ..PlannerConfig::default()
        };
        self.planner = Planner::with_config(self.planner.program().clone(), planner_config);
        self
    }

    /// The ontology.
    pub fn ontology(&self) -> &TgdProgram {
        self.planner.program()
    }

    /// The planner this system delegates to (classification, plan
    /// compilation, materialization cache).
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// The classification report of the ontology (computed at construction).
    pub fn classification(&self) -> &ClassificationReport {
        self.planner.classification()
    }

    /// The retrieved ABox: the ontology-level facts obtained by applying the
    /// mappings to the source.
    pub fn retrieved_abox(&self) -> Instance {
        self.mappings.apply(&self.source)
    }

    /// Compile `query` into a prepared plan against this system's ontology
    /// (the planner chooses the kind; see [`ObdaSystem::answer`] for forced
    /// overrides).
    pub fn prepare(&self, query: &ConjunctiveQuery) -> PreparedQuery {
        self.planner.prepare(query)
    }

    /// Answer a conjunctive query. `Strategy::Auto` delegates the choice to
    /// the planner; the other variants force a plan kind.
    pub fn answer(&self, query: &ConjunctiveQuery, strategy: Strategy) -> ObdaAnswers {
        // Forcing a strategy on an unclassifiable program is a structured
        // planner error; this legacy shim falls back to the planner's own
        // choice rather than surfacing it through the pre-planner API.
        let prepared = match strategy {
            Strategy::Auto => self.planner.prepare(query),
            Strategy::Rewriting => self
                .planner
                .prepare_forced(query, PlanKind::Rewrite)
                .unwrap_or_else(|_| self.planner.prepare(query)),
            Strategy::Materialization => self
                .planner
                .prepare_forced(query, PlanKind::Chase)
                .unwrap_or_else(|_| self.planner.prepare(query)),
        };
        let execution = self.execute(&prepared);
        let strategy = match execution.provenance.strategy {
            StrategyTaken::Rewriting | StrategyTaken::Combined => Strategy::Rewriting,
            StrategyTaken::Materialization | StrategyTaken::GoalDriven => Strategy::Materialization,
        };
        ObdaAnswers {
            answers: execution.answers,
            strategy,
            exact: execution.provenance.exact,
            provenance: execution.provenance,
        }
    }

    /// Execute an already-prepared query over the retrieved ABox. The source
    /// of an `ObdaSystem` is fixed at construction, so materializations are
    /// cached under one stable version token.
    pub fn execute(&self, prepared: &PreparedQuery) -> Execution {
        // Rewritings are evaluated over the retrieved ABox (ontology
        // vocabulary); with identity mappings this is the source itself.
        let abox_store = RelationalStore::from_instance(&self.retrieved_abox());
        prepared.execute_versioned(&abox_store, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Mapping;
    use ontorew_core::examples::{university_ontology, university_query};
    use ontorew_model::{parse_program, parse_query};

    fn university_system() -> ObdaSystem {
        let data = ontorew_workloads::university_abox(50, 5, 10, 3);
        ObdaSystem::new(university_ontology(), data)
    }

    #[test]
    fn auto_strategy_picks_rewriting_for_fo_rewritable_ontologies() {
        let system = university_system();
        assert!(system.classification().fo_rewritable());
        let result = system.answer(&university_query(), Strategy::Auto);
        assert_eq!(result.strategy, Strategy::Rewriting);
        assert!(result.exact);
        assert!(!result.answers.is_empty());
    }

    #[test]
    fn rewriting_and_materialization_agree_when_both_are_complete() {
        // A weakly-acyclic, FO-rewritable ontology: both strategies are exact
        // and must return the same certain answers.
        let ontology = parse_program(
            "[R1] gradStudent(X) -> student(X).\n\
             [R2] student(X) -> person(X).\n\
             [R3] teaches(X, C) -> course(C).",
        )
        .unwrap();
        let mut data = Instance::new();
        data.insert_fact("gradStudent", &["gina"]);
        data.insert_fact("student", &["sara"]);
        data.insert_fact("teaches", &["alice", "db101"]);
        let system = ObdaSystem::new(ontology, data);
        let q = parse_query("q(X) :- person(X)").unwrap();
        let by_rewriting = system.answer(&q, Strategy::Rewriting);
        let by_chase = system.answer(&q, Strategy::Materialization);
        assert!(by_rewriting.exact && by_chase.exact);
        let a: Vec<_> = by_rewriting.answers.iter().cloned().collect();
        let b: Vec<_> = by_chase.answers.iter().cloned().collect();
        assert_eq!(a, b);
        // gina (via gradStudent -> student -> person) and sara.
        assert_eq!(by_rewriting.answers.len(), 2);
    }

    #[test]
    fn answers_reflect_existential_knowledge() {
        let system = university_system();
        // Every professor teaches something (U7), so professors are certain
        // answers to "who teaches a course someone might attend" only when a
        // student actually attends; instead ask who teaches anything at all.
        let q = parse_query("q(X) :- teaches(X, C)").unwrap();
        let result = system.answer(&q, Strategy::Rewriting);
        assert!(result.exact);
        // All 5 professors teach (either explicitly or by U7).
        assert!(result.answers.len() >= 5);
    }

    #[test]
    fn non_identity_mappings_bridge_a_legacy_schema() {
        let ontology = parse_program("[R1] worksIn(X, D) -> department(D).").unwrap();
        let mut source = RelationalStore::new();
        source.insert_fact("emp", &["e1", "alice", "cs", "100"]);
        source.insert_fact("emp", &["e2", "bob", "math", "90"]);
        let mut mappings = MappingSet::new();
        mappings.push(Mapping::new(
            Predicate::new("emp", 4),
            Predicate::new("worksIn", 2),
            vec![0, 2],
        ));
        let system = ObdaSystem::with_mappings(ontology, mappings, source);
        assert_eq!(system.retrieved_abox().len(), 2);
        let q = parse_query("q(D) :- department(D)").unwrap();
        let result = system.answer(&q, Strategy::Auto);
        assert!(result.exact);
        assert_eq!(result.answers.len(), 2);
        assert!(result.answers.contains_constants(&["cs"]));
    }

    #[test]
    fn auto_falls_back_to_materialization_for_non_rewritable_ontologies() {
        // Example 2 of the paper: not FO-rewritable, but weakly acyclic, so
        // the planner compiles a chase plan.
        let ontology = ontorew_core::examples::example2();
        let mut data = Instance::new();
        data.insert_fact("s", &["c", "c", "a"]);
        data.insert_fact("t", &["d", "a"]);
        let system = ObdaSystem::new(ontology, data);
        assert!(!system.classification().fo_rewritable());
        assert!(system.classification().chase_terminates());
        let q = ontorew_core::examples::example2_query();
        let result = system.answer(&q, Strategy::Auto);
        assert_eq!(result.strategy, Strategy::Materialization);
        assert_eq!(result.provenance.plan, PlanKind::Chase);
        assert!(result.exact);
        assert!(result.answers.as_boolean());
    }

    #[test]
    fn empty_data_yields_empty_answers() {
        let system = ObdaSystem::new(university_ontology(), Instance::new());
        let result = system.answer(&university_query(), Strategy::Auto);
        assert!(result.answers.is_empty());
        assert!(result.exact);
    }

    #[test]
    fn answers_carry_the_plan_provenance() {
        let system = university_system();
        let result = system.answer(&university_query(), Strategy::Auto);
        // The university ontology is FO-rewritable *and* weakly acyclic:
        // the planner compiles a hybrid plan, and the narrow fan-out makes
        // the executor evaluate the rewriting.
        assert_eq!(result.provenance.plan, PlanKind::Hybrid);
        assert_eq!(result.provenance.strategy, StrategyTaken::Rewriting);
        assert!(result.provenance.reason.contains("hybrid chose rewriting"));
        assert!(result.provenance.rewriting_complete.unwrap());
    }

    #[test]
    fn prepared_queries_can_be_executed_directly() {
        let system = university_system();
        let prepared = system.prepare(&university_query());
        let execution = system.execute(&prepared);
        let direct = system.answer(&university_query(), Strategy::Auto);
        assert_eq!(
            execution.answers.iter().collect::<Vec<_>>(),
            direct.answers.iter().collect::<Vec<_>>()
        );
    }
}
