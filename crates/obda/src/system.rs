//! The OBDA system facade.
//!
//! An [`ObdaSystem`] bundles the three layers of §1 of the paper — ontology
//! (TGDs), mappings, and the extensional data source — and answers conjunctive
//! queries with one of two strategies:
//!
//! * **Rewriting** — compile the ontology into the query (UCQ rewriting) and
//!   evaluate the rewriting directly over the source. Complete exactly when
//!   the rewriting terminates, which the classification machinery of
//!   `ontorew-core` predicts (SWR/WR ⇒ FO-rewritable).
//! * **Materialization** — chase the retrieved ABox and evaluate the original
//!   query over the chased instance. Complete exactly when the chase
//!   terminates (e.g. weak acyclicity).
//!
//! The `Auto` strategy picks between them using the classification report,
//! which is the workflow §7/§8 of the paper sketches for a working OBDA
//! system.

use crate::mapping::MappingSet;
use ontorew_chase::{certain_answers, ChaseConfig};
use ontorew_core::{classify, ClassificationReport};
use ontorew_model::prelude::*;
use ontorew_rewrite::{answer_by_rewriting, RewriteConfig};
use ontorew_storage::{AnswerSet, RelationalStore};

/// The query answering strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// UCQ rewriting evaluated over the (mapped) source data.
    Rewriting,
    /// Chase materialization of the retrieved ABox, then plain evaluation.
    Materialization,
    /// Choose automatically from the classification report.
    Auto,
}

/// The result of answering a query through the OBDA system.
#[derive(Clone, Debug)]
pub struct ObdaAnswers {
    /// The certain answers found.
    pub answers: AnswerSet,
    /// Which concrete strategy produced them.
    pub strategy: Strategy,
    /// True if the strategy was complete (perfect rewriting or terminated
    /// chase); false means the answers are a sound under-approximation.
    pub exact: bool,
}

/// An ontology-based data access system: ontology + mappings + source data.
#[derive(Clone, Debug)]
pub struct ObdaSystem {
    ontology: TgdProgram,
    mappings: MappingSet,
    source: RelationalStore,
    rewrite_config: RewriteConfig,
    chase_config: ChaseConfig,
    classification: ClassificationReport,
}

impl ObdaSystem {
    /// Build a system whose source already speaks the ontology vocabulary
    /// (identity mappings).
    pub fn new(ontology: TgdProgram, data: Instance) -> Self {
        let source = RelationalStore::from_instance(&data);
        let mappings = MappingSet::identity_for(&source.signature());
        ObdaSystem::with_mappings(ontology, mappings, source)
    }

    /// Build a system with explicit mappings over an arbitrary source store.
    pub fn with_mappings(
        ontology: TgdProgram,
        mappings: MappingSet,
        source: RelationalStore,
    ) -> Self {
        let classification = classify(&ontology);
        ObdaSystem {
            ontology,
            mappings,
            source,
            rewrite_config: RewriteConfig::default(),
            chase_config: ChaseConfig::default(),
            classification,
        }
    }

    /// Override the rewriting configuration (depth/size budgets).
    pub fn with_rewrite_config(mut self, config: RewriteConfig) -> Self {
        self.rewrite_config = config;
        self
    }

    /// Override the chase configuration (round/fact budgets).
    pub fn with_chase_config(mut self, config: ChaseConfig) -> Self {
        self.chase_config = config;
        self
    }

    /// The ontology.
    pub fn ontology(&self) -> &TgdProgram {
        &self.ontology
    }

    /// The classification report of the ontology (computed at construction).
    pub fn classification(&self) -> &ClassificationReport {
        &self.classification
    }

    /// The retrieved ABox: the ontology-level facts obtained by applying the
    /// mappings to the source.
    pub fn retrieved_abox(&self) -> Instance {
        self.mappings.apply(&self.source)
    }

    /// Answer a conjunctive query.
    pub fn answer(&self, query: &ConjunctiveQuery, strategy: Strategy) -> ObdaAnswers {
        match strategy {
            Strategy::Rewriting => self.answer_by_rewriting(query),
            Strategy::Materialization => self.answer_by_materialization(query),
            Strategy::Auto => {
                // Prefer rewriting whenever some FO-rewritable class applies
                // (AC0 data complexity, no materialisation cost); fall back to
                // materialization when only chase termination is guaranteed;
                // otherwise run the bounded rewriting (sound approximation).
                if self.classification.fo_rewritable() {
                    self.answer_by_rewriting(query)
                } else if self.classification.chase_terminates() {
                    self.answer_by_materialization(query)
                } else {
                    self.answer_by_rewriting(query)
                }
            }
        }
    }

    fn answer_by_rewriting(&self, query: &ConjunctiveQuery) -> ObdaAnswers {
        // Rewriting is evaluated over the retrieved ABox (ontology vocabulary);
        // with identity mappings this is the source itself.
        let abox_store = RelationalStore::from_instance(&self.retrieved_abox());
        let result = answer_by_rewriting(&self.ontology, query, &abox_store, &self.rewrite_config);
        let exact = result.is_exact();
        ObdaAnswers {
            answers: result.answers,
            strategy: Strategy::Rewriting,
            exact,
        }
    }

    fn answer_by_materialization(&self, query: &ConjunctiveQuery) -> ObdaAnswers {
        let abox = self.retrieved_abox();
        let result = certain_answers(&self.ontology, &abox, query, &self.chase_config);
        ObdaAnswers {
            answers: result.answers,
            strategy: Strategy::Materialization,
            exact: result.complete,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Mapping;
    use ontorew_core::examples::{university_ontology, university_query};
    use ontorew_model::{parse_program, parse_query};

    fn university_system() -> ObdaSystem {
        let data = ontorew_workloads::university_abox(50, 5, 10, 3);
        ObdaSystem::new(university_ontology(), data)
    }

    #[test]
    fn auto_strategy_picks_rewriting_for_fo_rewritable_ontologies() {
        let system = university_system();
        assert!(system.classification().fo_rewritable());
        let result = system.answer(&university_query(), Strategy::Auto);
        assert_eq!(result.strategy, Strategy::Rewriting);
        assert!(result.exact);
        assert!(!result.answers.is_empty());
    }

    #[test]
    fn rewriting_and_materialization_agree_when_both_are_complete() {
        // A weakly-acyclic, FO-rewritable ontology: both strategies are exact
        // and must return the same certain answers.
        let ontology = parse_program(
            "[R1] gradStudent(X) -> student(X).\n\
             [R2] student(X) -> person(X).\n\
             [R3] teaches(X, C) -> course(C).",
        )
        .unwrap();
        let mut data = Instance::new();
        data.insert_fact("gradStudent", &["gina"]);
        data.insert_fact("student", &["sara"]);
        data.insert_fact("teaches", &["alice", "db101"]);
        let system = ObdaSystem::new(ontology, data);
        let q = parse_query("q(X) :- person(X)").unwrap();
        let by_rewriting = system.answer(&q, Strategy::Rewriting);
        let by_chase = system.answer(&q, Strategy::Materialization);
        assert!(by_rewriting.exact && by_chase.exact);
        let a: Vec<_> = by_rewriting.answers.iter().cloned().collect();
        let b: Vec<_> = by_chase.answers.iter().cloned().collect();
        assert_eq!(a, b);
        // gina (via gradStudent -> student -> person) and sara.
        assert_eq!(by_rewriting.answers.len(), 2);
    }

    #[test]
    fn answers_reflect_existential_knowledge() {
        let system = university_system();
        // Every professor teaches something (U7), so professors are certain
        // answers to "who teaches a course someone might attend" only when a
        // student actually attends; instead ask who teaches anything at all.
        let q = parse_query("q(X) :- teaches(X, C)").unwrap();
        let result = system.answer(&q, Strategy::Rewriting);
        assert!(result.exact);
        // All 5 professors teach (either explicitly or by U7).
        assert!(result.answers.len() >= 5);
    }

    #[test]
    fn non_identity_mappings_bridge_a_legacy_schema() {
        let ontology = parse_program("[R1] worksIn(X, D) -> department(D).").unwrap();
        let mut source = RelationalStore::new();
        source.insert_fact("emp", &["e1", "alice", "cs", "100"]);
        source.insert_fact("emp", &["e2", "bob", "math", "90"]);
        let mut mappings = MappingSet::new();
        mappings.push(Mapping::new(
            Predicate::new("emp", 4),
            Predicate::new("worksIn", 2),
            vec![0, 2],
        ));
        let system = ObdaSystem::with_mappings(ontology, mappings, source);
        assert_eq!(system.retrieved_abox().len(), 2);
        let q = parse_query("q(D) :- department(D)").unwrap();
        let result = system.answer(&q, Strategy::Auto);
        assert!(result.exact);
        assert_eq!(result.answers.len(), 2);
        assert!(result.answers.contains_constants(&["cs"]));
    }

    #[test]
    fn auto_falls_back_to_materialization_for_non_rewritable_ontologies() {
        // Example 2 of the paper: not FO-rewritable, but weakly acyclic, so
        // the Auto strategy materializes.
        let ontology = ontorew_core::examples::example2();
        let mut data = Instance::new();
        data.insert_fact("s", &["c", "c", "a"]);
        data.insert_fact("t", &["d", "a"]);
        let system = ObdaSystem::new(ontology, data);
        assert!(!system.classification().fo_rewritable());
        assert!(system.classification().chase_terminates());
        let q = ontorew_core::examples::example2_query();
        let result = system.answer(&q, Strategy::Auto);
        assert_eq!(result.strategy, Strategy::Materialization);
        assert!(result.exact);
        assert!(result.answers.as_boolean());
    }

    #[test]
    fn empty_data_yields_empty_answers() {
        let system = ObdaSystem::new(university_ontology(), Instance::new());
        let result = system.answer(&university_query(), Strategy::Auto);
        assert!(result.answers.is_empty());
        assert!(result.exact);
    }
}
