//! Cross-checking the two answering strategies against each other.
//!
//! When both strategies are complete they must return the same certain
//! answers; when only one is complete, the other must return a subset (both
//! are sound). This module runs the comparison and reports any discrepancy —
//! it is used by the `rewriting_soundness` experiment (E9) and by the
//! integration tests as an executable statement of Theorem 1.

use crate::system::{ObdaSystem, Strategy};
use ontorew_model::prelude::*;
use serde::Serialize;
use std::collections::BTreeSet;

/// The outcome of comparing the two strategies on one query.
#[derive(Clone, Debug, Serialize)]
pub struct ConsistencyReport {
    /// Number of answers returned by rewriting.
    pub rewriting_answers: usize,
    /// Number of answers returned by materialization.
    pub materialization_answers: usize,
    /// Whether the rewriting was complete (perfect).
    pub rewriting_exact: bool,
    /// Whether the chase terminated.
    pub materialization_exact: bool,
    /// Answers found by rewriting but not by materialization (rendered).
    pub only_rewriting: Vec<String>,
    /// Answers found by materialization but not by rewriting (rendered).
    pub only_materialization: Vec<String>,
}

impl ConsistencyReport {
    /// True if the observed answer sets are consistent with the completeness
    /// claims of the two strategies:
    /// * both exact ⇒ equal sets;
    /// * only one exact ⇒ the other is a subset of it;
    /// * neither exact ⇒ anything goes (both are sound under-approximations).
    pub fn is_consistent(&self) -> bool {
        match (self.rewriting_exact, self.materialization_exact) {
            (true, true) => self.only_rewriting.is_empty() && self.only_materialization.is_empty(),
            (true, false) => self.only_materialization.is_empty(),
            (false, true) => self.only_rewriting.is_empty(),
            (false, false) => true,
        }
    }
}

/// Compare rewriting-based and materialization-based answering on one query.
pub fn cross_check(system: &ObdaSystem, query: &ConjunctiveQuery) -> ConsistencyReport {
    let by_rewriting = system.answer(query, Strategy::Rewriting);
    let by_chase = system.answer(query, Strategy::Materialization);

    let render = |rows: &ontorew_storage::AnswerSet| -> BTreeSet<String> {
        rows.iter()
            .map(|row| {
                row.iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            })
            .collect()
    };
    let rewriting_set = render(&by_rewriting.answers);
    let chase_set = render(&by_chase.answers);

    ConsistencyReport {
        rewriting_answers: rewriting_set.len(),
        materialization_answers: chase_set.len(),
        rewriting_exact: by_rewriting.exact,
        materialization_exact: by_chase.exact,
        only_rewriting: rewriting_set.difference(&chase_set).cloned().collect(),
        only_materialization: chase_set.difference(&rewriting_set).cloned().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_core::examples::{university_ontology, university_query};
    use ontorew_model::parse_query;
    use ontorew_workloads::university_abox;

    #[test]
    fn university_workload_is_consistent() {
        let system = ObdaSystem::new(university_ontology(), university_abox(60, 6, 12, 11));
        let report = cross_check(&system, &university_query());
        assert!(report.is_consistent(), "report: {report:?}");
        assert_eq!(report.rewriting_answers, report.materialization_answers);
    }

    #[test]
    fn multiple_queries_stay_consistent() {
        let system = ObdaSystem::new(university_ontology(), university_abox(40, 4, 8, 5));
        for q in [
            "q(X) :- person(X)",
            "q(X) :- employee(X)",
            "q(X) :- course(X)",
            "q(X, Y) :- advisedBy(X, Y)",
            "q(P) :- professor(P), teaches(P, C), attends(S, C)",
        ] {
            let query = parse_query(q).unwrap();
            let report = cross_check(&system, &query);
            assert!(report.is_consistent(), "query {q}: {report:?}");
        }
    }

    #[test]
    fn incomplete_rewriting_is_still_sound() {
        // Example 2: rewriting does not terminate, so it is truncated; its
        // answers must be a subset of the (terminating) chase's answers.
        let mut data = ontorew_model::Instance::new();
        data.insert_fact("s", &["c", "c", "a"]);
        data.insert_fact("t", &["d", "a"]);
        let system = ObdaSystem::new(ontorew_core::examples::example2(), data)
            .with_rewrite_config(ontorew_rewrite::RewriteConfig::with_depth(3));
        let report = cross_check(&system, &ontorew_core::examples::example2_query());
        assert!(!report.rewriting_exact);
        assert!(report.materialization_exact);
        assert!(report.is_consistent(), "report: {report:?}");
    }
}
