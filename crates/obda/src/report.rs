//! Human-readable system reports.
//!
//! `ontorew` is meant to be usable as the backend of a "working OBDA system"
//! (§8 of the paper); operators of such a system need a quick summary of what
//! the classifier concluded, how big the data is, and which answering
//! strategy will be used. [`SystemReport`] collects that summary.

use crate::system::{ObdaSystem, Strategy};
use ontorew_core::FoRewritabilityVerdict;
use ontorew_plan::PlanKind;
use std::fmt;

/// A summary of an [`ObdaSystem`]: ontology size, classification outcome,
/// data statistics and the plan kind the planner will compile.
#[derive(Clone, Debug)]
pub struct SystemReport {
    /// Number of TGDs in the ontology.
    pub rules: usize,
    /// Number of predicates in the ontology signature.
    pub predicates: usize,
    /// Maximum predicate arity.
    pub max_arity: usize,
    /// Names of the classes the ontology belongs to.
    pub classes: Vec<&'static str>,
    /// The §7 trichotomy verdict.
    pub verdict: FoRewritabilityVerdict,
    /// Whether chase materialization is guaranteed to terminate.
    pub chase_terminates: bool,
    /// Number of facts in the retrieved ABox.
    pub abox_facts: usize,
    /// The plan kind the planner compiles for this program (before
    /// per-query refinement).
    pub plan: PlanKind,
    /// The legacy strategy label the plan corresponds to (`Rewriting` for
    /// rewrite/hybrid/best-effort plans, `Materialization` for chase plans).
    pub auto_strategy: Strategy,
}

impl SystemReport {
    /// Build the report for a system. The strategy summary comes from the
    /// system's planner — the report performs no dispatch of its own.
    pub fn of(system: &ObdaSystem) -> Self {
        let classification = system.classification();
        let ontology = system.ontology();
        let plan = system.planner().plan_kind();
        let auto_strategy = match plan {
            PlanKind::Chase => Strategy::Materialization,
            _ => Strategy::Rewriting,
        };
        SystemReport {
            rules: ontology.len(),
            predicates: ontology.predicates().len(),
            max_arity: ontology.max_arity(),
            classes: classification.member_classes(),
            verdict: classification.fo_rewritability_verdict(),
            chase_terminates: classification.chase_terminates(),
            abox_facts: system.retrieved_abox().len(),
            plan,
            auto_strategy,
        }
    }
}

impl fmt::Display for SystemReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "OBDA system report")?;
        writeln!(
            f,
            "  ontology        : {} rules, {} predicates, max arity {}",
            self.rules, self.predicates, self.max_arity
        )?;
        writeln!(f, "  classes         : {}", self.classes.join(", "))?;
        writeln!(f, "  FO-rewritability: {:?}", self.verdict)?;
        writeln!(f, "  chase terminates: {}", self.chase_terminates)?;
        writeln!(f, "  retrieved ABox  : {} facts", self.abox_facts)?;
        write!(
            f,
            "  plan            : {} ({:?})",
            self.plan, self.auto_strategy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_core::examples::{example2, university_ontology};
    use ontorew_model::Instance;

    #[test]
    fn university_report_recommends_rewriting() {
        let system = ObdaSystem::new(
            university_ontology(),
            ontorew_workloads::university_abox(30, 3, 6, 1),
        );
        let report = SystemReport::of(&system);
        assert_eq!(report.rules, 12);
        // University is FO-rewritable *and* weakly acyclic: hybrid plan,
        // whose legacy strategy label is Rewriting.
        assert_eq!(report.plan, PlanKind::Hybrid);
        assert_eq!(report.auto_strategy, Strategy::Rewriting);
        assert_eq!(report.verdict, FoRewritabilityVerdict::Rewritable);
        assert!(report.abox_facts > 30);
        let rendered = report.to_string();
        assert!(rendered.contains("plan"));
        assert!(rendered.contains("SWR"));
    }

    #[test]
    fn example2_report_recommends_materialization() {
        let mut data = Instance::new();
        data.insert_fact("s", &["c", "c", "a"]);
        let system = ObdaSystem::new(example2(), data);
        let report = SystemReport::of(&system);
        assert_eq!(report.plan, PlanKind::Chase);
        assert_eq!(report.auto_strategy, Strategy::Materialization);
        assert_eq!(report.verdict, FoRewritabilityVerdict::NotKnownRewritable);
        assert!(report.chase_terminates);
    }
}
