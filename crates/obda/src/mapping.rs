//! Mappings between source relations and ontology predicates.
//!
//! §1 of the paper describes the OBDA architecture as three layers: the
//! ontology (intensional), the data sources (extensional) and, between them,
//! *mapping assertions* relating the two. This module implements the
//! GAV-style (global-as-view) mappings that cover the common case: each
//! mapping populates one ontology predicate by projecting/permuting the
//! columns of one source relation.

use ontorew_model::prelude::*;
use ontorew_storage::RelationalStore;
use serde::{Deserialize, Serialize};

/// A GAV mapping assertion: `target(x_{p_1}, ..., x_{p_k}) :- source(x_1, ..., x_n)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    /// The source relation (in the data layer).
    pub source: Predicate,
    /// The ontology predicate being populated.
    pub target: Predicate,
    /// For each argument of `target`, the 0-based source column it comes from.
    pub projection: Vec<usize>,
}

impl Mapping {
    /// Build a mapping, validating arities and column indices.
    pub fn new(source: Predicate, target: Predicate, projection: Vec<usize>) -> Self {
        assert_eq!(
            projection.len(),
            target.arity,
            "projection length must match the target arity"
        );
        assert!(
            projection.iter().all(|c| *c < source.arity),
            "projection column out of range for {source}"
        );
        Mapping {
            source,
            target,
            projection,
        }
    }

    /// The identity mapping `p -> p` (same name, same columns).
    pub fn identity(predicate: Predicate) -> Self {
        Mapping {
            source: predicate,
            target: predicate,
            projection: (0..predicate.arity).collect(),
        }
    }

    /// Apply the mapping to one source tuple.
    pub fn apply_tuple(&self, tuple: &[Term]) -> Atom {
        Atom::from_predicate(
            self.target,
            self.projection.iter().map(|c| tuple[*c]).collect(),
        )
    }
}

/// A set of mapping assertions.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappingSet {
    /// The mapping assertions.
    pub mappings: Vec<Mapping>,
}

impl MappingSet {
    /// An empty mapping set.
    pub fn new() -> Self {
        MappingSet::default()
    }

    /// The identity mapping set over every predicate of `signature` — used
    /// when the source already speaks the ontology vocabulary.
    pub fn identity_for(signature: &Signature) -> Self {
        MappingSet {
            mappings: signature.predicates().map(Mapping::identity).collect(),
        }
    }

    /// Add a mapping.
    pub fn push(&mut self, mapping: Mapping) {
        self.mappings.push(mapping);
    }

    /// Number of mapping assertions.
    pub fn len(&self) -> usize {
        self.mappings.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.mappings.is_empty()
    }

    /// Materialise the virtual ontology-level database (the "retrieved ABox"):
    /// apply every mapping to every tuple of its source relation.
    pub fn apply(&self, source: &RelationalStore) -> Instance {
        let mut out = Instance::new();
        for mapping in &self.mappings {
            if let Some(relation) = source.relation(mapping.source) {
                for tuple in relation.scan() {
                    out.insert(mapping.apply_tuple(tuple));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source_store() -> RelationalStore {
        let mut db = RelationalStore::new();
        // A wide legacy relation: emp(id, name, dept, salary)
        db.insert_fact("emp", &["e1", "alice", "cs", "100"]);
        db.insert_fact("emp", &["e2", "bob", "math", "90"]);
        db
    }

    #[test]
    fn projection_mapping_extracts_columns() {
        let m = Mapping::new(
            Predicate::new("emp", 4),
            Predicate::new("worksIn", 2),
            vec![0, 2],
        );
        let mut set = MappingSet::new();
        set.push(m);
        let abox = set.apply(&source_store());
        assert_eq!(abox.len(), 2);
        assert!(abox.contains(&Atom::fact("worksIn", &["e1", "cs"])));
    }

    #[test]
    fn identity_mappings_copy_relations() {
        let store = source_store();
        let set = MappingSet::identity_for(&store.signature());
        let abox = set.apply(&store);
        assert_eq!(abox, store.to_instance());
    }

    #[test]
    fn column_permutation_is_supported() {
        let m = Mapping::new(
            Predicate::new("emp", 4),
            Predicate::new("employs", 2),
            vec![2, 0],
        );
        let abox = MappingSet { mappings: vec![m] }.apply(&source_store());
        assert!(abox.contains(&Atom::fact("employs", &["cs", "e1"])));
    }

    #[test]
    #[should_panic(expected = "projection length")]
    fn arity_mismatch_is_rejected() {
        Mapping::new(
            Predicate::new("emp", 4),
            Predicate::new("worksIn", 2),
            vec![0],
        );
    }

    #[test]
    #[should_panic(expected = "column out of range")]
    fn out_of_range_column_is_rejected() {
        Mapping::new(
            Predicate::new("emp", 4),
            Predicate::new("worksIn", 2),
            vec![0, 9],
        );
    }

    #[test]
    fn missing_source_relations_are_silently_empty() {
        let set = MappingSet {
            mappings: vec![Mapping::identity(Predicate::new("absent", 1))],
        };
        assert!(set.apply(&source_store()).is_empty());
    }
}
