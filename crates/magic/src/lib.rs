//! Magic-sets / sideways-information-passing rewriting for goal-driven
//! chase evaluation.
//!
//! Chase plans materialize the *entire* universal model even when the query
//! touches a sliver of it. This crate rewrites a program from the query's
//! goal: predicates are **adorned** with bound/free annotations propagated
//! through rule bodies in *selectivity order* (SIP) — at each step the
//! remaining body atom with the most bound positions (ties broken by a
//! [`SipSelectivity`] estimate, then by textual position) passes its
//! bindings sideways — each reachable `(predicate, adornment)` pair gets a
//! **magic predicate** recording which bindings are actually demanded, and
//! rules that can be guarded get a magic **guard atom** prepended so they
//! only fire for demanded bindings. Chasing the
//! rewritten program over the original instance (plus ground magic *seed*
//! facts extracted from the query's constants) derives only goal-relevant
//! facts — the classic magic-sets guarantee — while answering the original
//! query identically.
//!
//! Not every program admits the restriction. Rules with existential head
//! variables or multiple head atoms cannot be guarded (restricting their
//! firing would lose labelled nulls the query may need), so their head
//! predicates must be derived in full, which in turn forces their body
//! predicates to be derived in full, and so on — an *unguarded cascade*.
//! [`rewrite_goal_driven`] computes the cascade to a fixpoint and returns
//! [`Inadmissible`] when nothing guardable survives (or the query binds no
//! constants), letting the planner fall back to a full-model chase.
//!
//! The output [`MagicProgram`] carries the transformed program, the seed
//! facts, and the counts the planner surfaces through `EXPLAIN` and
//! provenance (`goal-driven{relevant_rules, adorned_rules, ...}`).

use ontorew_model::prelude::*;
use ontorew_telemetry::{global_registry, span, Counter};
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::sync::{Arc, OnceLock};

/// Reserved prefix for generated magic predicates. Programs or queries that
/// already use it are rejected rather than silently colliding.
pub const MAGIC_PREFIX: &str = "magic_";

struct MagicMetrics {
    adornments: Arc<Counter>,
}

fn magic_metrics() -> &'static MagicMetrics {
    static METRICS: OnceLock<MagicMetrics> = OnceLock::new();
    METRICS.get_or_init(|| MagicMetrics {
        adornments: global_registry().counter(
            "magic_adornments_total",
            "Distinct (predicate, adornment) pairs reached by goal-driven rewrites.",
            &[],
        ),
    })
}

/// A bound/free annotation over a predicate's argument positions
/// (`true` = bound). Rendered as the classic `bf`-suffix: `requires^bf`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Adornment(Vec<bool>);

impl Adornment {
    /// The adornment of `atom` given the set of already-bound variables:
    /// a position is bound when its term is a constant or a known variable.
    pub fn of_atom(atom: &Atom, known: &HashSet<Variable>) -> Self {
        Adornment(
            atom.terms
                .iter()
                .map(|t| match t.as_variable() {
                    Some(v) => known.contains(&v),
                    None => true,
                })
                .collect(),
        )
    }

    /// Number of bound positions — the arity of the magic predicate.
    pub fn bound_count(&self) -> usize {
        self.0.iter().filter(|b| **b).count()
    }

    /// True when the given argument position is bound.
    pub fn bound_at(&self, position: usize) -> bool {
        self.0.get(position).copied().unwrap_or(false)
    }

    /// True when at least one position is bound.
    pub fn has_bound(&self) -> bool {
        self.0.iter().any(|b| *b)
    }

    /// The `bf`-string suffix, e.g. `"bf"` for (bound, free).
    pub fn suffix(&self) -> String {
        self.0.iter().map(|b| if *b { 'b' } else { 'f' }).collect()
    }

    /// The terms of `atom` at this adornment's bound positions, in order —
    /// the argument list of the corresponding magic atom.
    pub fn bound_terms(&self, atom: &Atom) -> Vec<Term> {
        atom.terms
            .iter()
            .zip(&self.0)
            .filter(|(_, bound)| **bound)
            .map(|(t, _)| *t)
            .collect()
    }
}

impl std::fmt::Display for Adornment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.suffix())
    }
}

/// Estimates how selective a body atom is under a given adornment, steering
/// the SIP: when two candidate atoms bind equally many positions, the one
/// with the *smaller* estimate passes its bindings first, so downstream
/// magic predicates carry the tightest demand the data supports.
///
/// The scale is oracle-relative — estimates are only compared against other
/// estimates from the same oracle, never across oracles — so a data-blind
/// implementation can return structural scores while a statistics-backed one
/// returns expected match counts.
pub trait SipSelectivity {
    /// Estimated number of facts matching `atom` when the positions marked
    /// bound in `adornment` carry concrete values.
    fn estimate(&self, atom: &Atom, adornment: &Adornment) -> f64;
}

/// Data-blind fallback oracle: an atom's estimate is its number of *free*
/// positions, so with equal bound counts the atom leaving fewer variables
/// open is deemed more selective. Combined with the most-bound-first greedy
/// this reproduces the classic "bound is better" SIP without any statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct StructuralSipSelectivity;

impl SipSelectivity for StructuralSipSelectivity {
    fn estimate(&self, atom: &Atom, adornment: &Adornment) -> f64 {
        (atom.terms.len() - adornment.bound_count()) as f64
    }
}

/// The order in which a rule body's atoms pass bindings sideways: greedily
/// pick the remaining atom with the most bound positions under the variables
/// known so far, breaking ties by the selectivity estimate and then by
/// textual position (so the ordering is deterministic and degrades to the
/// classic left-to-right SIP when nothing distinguishes the atoms).
fn sip_order(
    body: &[Atom],
    initially_known: &HashSet<Variable>,
    selectivity: &dyn SipSelectivity,
) -> Vec<usize> {
    let mut known = initially_known.clone();
    let mut remaining: Vec<usize> = (0..body.len()).collect();
    let mut order = Vec::with_capacity(body.len());
    while !remaining.is_empty() {
        let mut best_slot = 0usize;
        let mut best: Option<(usize, f64, usize)> = None;
        for (slot, &idx) in remaining.iter().enumerate() {
            let adornment = Adornment::of_atom(&body[idx], &known);
            let bound = adornment.bound_count();
            let estimate = selectivity.estimate(&body[idx], &adornment);
            let better = match &best {
                None => true,
                Some((b, e, i)) => {
                    bound > *b || (bound == *b && (estimate < *e || (estimate == *e && idx < *i)))
                }
            };
            if better {
                best = Some((bound, estimate, idx));
                best_slot = slot;
            }
        }
        let idx = remaining.remove(best_slot);
        known.extend(body[idx].variables());
        order.push(idx);
    }
    order
}

/// Why a program/query pair does not admit a goal-driven rewrite. The
/// planner treats any of these as "fall back to the full-model chase" —
/// they are expected outcomes, not errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Inadmissible {
    /// A program or query predicate already starts with [`MAGIC_PREFIX`];
    /// generating magic predicates would collide with user names.
    ReservedPrefix(String),
    /// The unguarded cascade (existential / multi-head rules forcing their
    /// inputs to be derived in full) swallowed every rule: nothing is left
    /// to guard, so the rewrite would just be the full chase.
    NoGuardedRules,
    /// No query atom binds a constant over a restricted predicate: the goal
    /// demands *all* bindings, so the restriction cannot prune anything.
    NoBoundSeed,
}

impl std::fmt::Display for Inadmissible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Inadmissible::ReservedPrefix(name) => {
                write!(f, "predicate {name:?} uses the reserved `magic_` prefix")
            }
            Inadmissible::NoGuardedRules => {
                write!(
                    f,
                    "no guardable rules: existential/multi-head rules force the full model"
                )
            }
            Inadmissible::NoBoundSeed => {
                write!(f, "query binds no constants over a restricted predicate")
            }
        }
    }
}

impl std::error::Error for Inadmissible {}

/// The result of a goal-driven rewrite: the restricted program to chase,
/// the ground magic seeds to add to the instance first, and the counts the
/// planner reports.
#[derive(Clone, Debug)]
pub struct MagicProgram {
    /// The transformed program: magic rules + guarded adorned copies +
    /// unguarded relevant rules verbatim. Rules outside the query's
    /// relevance slice are dropped.
    pub program: TgdProgram,
    /// Ground magic facts seeding the demand from the query's constants.
    pub seeds: Vec<Atom>,
    /// Rules in the original program (for the "relevant of N" report).
    pub total_rules: usize,
    /// Rules of the original program reachable backwards from the query.
    pub relevant_rules: usize,
    /// Relevant rules that could be guarded (full, single-head, restricted
    /// head predicate).
    pub guarded_rules: usize,
    /// Adorned guarded copies emitted (one per reachable (rule, adornment)).
    pub adorned_rules: usize,
    /// Magic (demand-propagation) rules emitted.
    pub magic_rules: usize,
    /// Distinct (predicate, adornment) pairs reached by the SIP worklist.
    pub adornments: usize,
    /// Predicates the restricted chase still derives in full (targets of
    /// the unguarded cascade), by name — surfaced in `EXPLAIN`.
    pub unrestricted: BTreeSet<String>,
}

impl MagicProgram {
    /// Human-readable dump of the adorned program for `EXPLAIN`: seeds
    /// first, then every rule of the transformed program.
    pub fn dump(&self) -> Vec<String> {
        let mut lines = Vec::new();
        lines.push(format!(
            "adorned program: {} rules ({} magic, {} guarded copies of {} rules, \
             {} adornments; {} of {} original rules relevant)",
            self.program.len(),
            self.magic_rules,
            self.adorned_rules,
            self.guarded_rules,
            self.adornments,
            self.relevant_rules,
            self.total_rules,
        ));
        if !self.unrestricted.is_empty() {
            let list: Vec<&str> = self.unrestricted.iter().map(String::as_str).collect();
            lines.push(format!("derived in full: {}", list.join(", ")));
        }
        for seed in &self.seeds {
            lines.push(format!("seed: {seed}"));
        }
        for rule in self.program.rules() {
            lines.push(format!("{rule}"));
        }
        lines
    }
}

/// Internal per-rewrite state.
struct Rewriter<'a> {
    program: &'a TgdProgram,
    /// Head predicates of any rule (IDB): everything else comes from the
    /// store and needs no guarding.
    derived: HashSet<Predicate>,
    /// Derived predicates the cascade forces to full derivation.
    unrestricted: HashSet<Predicate>,
    /// Relevant rules, in original order, with a flag: can it be guarded?
    relevant: Vec<(&'a Tgd, bool)>,
}

impl<'a> Rewriter<'a> {
    fn new(program: &'a TgdProgram, query: &ConjunctiveQuery) -> Result<Self, Inadmissible> {
        for pred in program.predicates() {
            if pred.name_str().starts_with(MAGIC_PREFIX) {
                return Err(Inadmissible::ReservedPrefix(pred.name_str().to_string()));
            }
        }
        for atom in &query.body {
            if atom.predicate.name_str().starts_with(MAGIC_PREFIX) {
                return Err(Inadmissible::ReservedPrefix(
                    atom.predicate.name_str().to_string(),
                ));
            }
        }

        let derived: HashSet<Predicate> = program
            .rules()
            .iter()
            .flat_map(|r| r.head.iter().map(|a| a.predicate))
            .collect();

        // Relevance slice: rules reachable backwards from the query body.
        let mut relevant_preds: HashSet<Predicate> =
            query.body.iter().map(|a| a.predicate).collect();
        let mut queue: VecDeque<Predicate> = relevant_preds.iter().copied().collect();
        let mut relevant_rule_idx: HashSet<usize> = HashSet::new();
        while let Some(pred) = queue.pop_front() {
            for (idx, rule) in program.rules().iter().enumerate() {
                if rule.head.iter().any(|a| a.predicate == pred) && relevant_rule_idx.insert(idx) {
                    for atom in &rule.body {
                        if relevant_preds.insert(atom.predicate) {
                            queue.push_back(atom.predicate);
                        }
                    }
                }
            }
        }
        let mut relevant: Vec<(&Tgd, bool)> = program
            .rules()
            .iter()
            .enumerate()
            .filter(|(idx, _)| relevant_rule_idx.contains(idx))
            .map(|(_, r)| (r, true))
            .collect();

        // Unguarded cascade: a rule with existential head variables or more
        // than one head atom cannot be guarded (restricting it would lose
        // nulls/joint derivations), so its head predicates — and, for it to
        // fire completely, its derived body predicates — must be derived in
        // full. Fully-derived head predicates in turn make every producer of
        // that predicate unguarded (a predicate is restricted all-or-nothing).
        let mut unrestricted: HashSet<Predicate> = HashSet::new();
        loop {
            let mut changed = false;
            for (rule, guardable) in relevant.iter_mut() {
                let inherently_unguardable = !rule.is_full() || rule.head.len() > 1;
                let head_unrestricted = rule
                    .head
                    .iter()
                    .any(|a| unrestricted.contains(&a.predicate));
                if inherently_unguardable || head_unrestricted {
                    *guardable = false;
                    for atom in rule.head.iter().chain(rule.body.iter()) {
                        if derived.contains(&atom.predicate) && unrestricted.insert(atom.predicate)
                        {
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        Ok(Rewriter {
            program,
            derived,
            unrestricted,
            relevant,
        })
    }

    /// A predicate the magic restriction applies to: derived by some rule
    /// and not forced to full derivation by the cascade.
    fn restricted(&self, pred: &Predicate) -> bool {
        self.derived.contains(pred) && !self.unrestricted.contains(pred)
    }

    fn rewrite(
        self,
        query: &ConjunctiveQuery,
        selectivity: &dyn SipSelectivity,
    ) -> Result<MagicProgram, Inadmissible> {
        let guarded_rules = self.relevant.iter().filter(|(_, g)| *g).count();
        if guarded_rules == 0 {
            return Err(Inadmissible::NoGuardedRules);
        }

        // Seeds: each query atom over a restricted predicate demands the
        // bindings fixed by its constants. An atom with no constants seeds
        // the all-free (propositional) magic fact — uniform demand for the
        // whole predicate, still restricted to the query's slice.
        let no_vars: HashSet<Variable> = HashSet::new();
        let mut seeds: Vec<Atom> = Vec::new();
        let mut worklist: VecDeque<(Predicate, Adornment)> = VecDeque::new();
        let mut seen: HashSet<(Predicate, Adornment)> = HashSet::new();
        let mut any_bound_seed = false;
        for atom in &query.body {
            if !self.restricted(&atom.predicate) {
                continue;
            }
            let adornment = Adornment::of_atom(atom, &no_vars);
            any_bound_seed |= adornment.has_bound();
            seeds.push(magic_atom(
                &atom.predicate,
                &adornment,
                adornment.bound_terms(atom),
            ));
            if seen.insert((atom.predicate, adornment.clone())) {
                worklist.push_back((atom.predicate, adornment));
            }
        }
        if !any_bound_seed {
            return Err(Inadmissible::NoBoundSeed);
        }
        seeds.sort();
        seeds.dedup();

        // SIP worklist: for each demanded (predicate, adornment), adorn
        // every guarded producer — prepend the magic guard, then walk the
        // body in selectivity order propagating bound variables sideways
        // and emitting one magic rule per restricted body atom. Magic rule
        // labels keep the atom's *textual* index so they are stable across
        // oracles. The adorned copy's body keeps the SIP order too, handing
        // the chase a join order that binds selective atoms first.
        let mut adorned: Vec<Tgd> = Vec::new();
        let mut magic: Vec<Tgd> = Vec::new();
        while let Some((pred, adornment)) = worklist.pop_front() {
            for (rule, guardable) in &self.relevant {
                if !*guardable {
                    continue;
                }
                let head = &rule.head[0];
                if head.predicate != pred {
                    continue;
                }
                let guard = magic_atom(&pred, &adornment, adornment.bound_terms(head));
                let mut known: HashSet<Variable> = adornment
                    .bound_terms(head)
                    .iter()
                    .filter_map(Term::as_variable)
                    .collect();
                let order = sip_order(&rule.body, &known, selectivity);
                let mut prefix: Vec<Atom> = vec![guard.clone()];
                for &i in &order {
                    let body_atom = &rule.body[i];
                    if self.restricted(&body_atom.predicate) {
                        let body_adornment = Adornment::of_atom(body_atom, &known);
                        let magic_head = magic_atom(
                            &body_atom.predicate,
                            &body_adornment,
                            body_adornment.bound_terms(body_atom),
                        );
                        magic.push(Tgd::labelled(
                            &format!("mg:{}@{}#{}", rule.label_str(), adornment.suffix(), i),
                            prefix.clone(),
                            vec![magic_head],
                        ));
                        let key = (body_atom.predicate, body_adornment);
                        if !seen.contains(&key) {
                            seen.insert(key.clone());
                            worklist.push_back(key);
                        }
                    }
                    known.extend(body_atom.variables());
                    prefix.push(body_atom.clone());
                }
                let mut body = vec![guard];
                body.extend(order.iter().map(|&i| rule.body[i].clone()));
                adorned.push(Tgd::labelled(
                    &format!("{}@{}", rule.label_str(), adornment.suffix()),
                    body,
                    rule.head.clone(),
                ));
            }
        }

        let adornments = seen.len();
        magic_metrics().adornments.add(adornments as u64);

        let mut rules: Vec<Tgd> = magic;
        let magic_rules = rules.len();
        let adorned_rules = adorned.len();
        rules.extend(adorned);
        // Unguarded relevant rules ride along verbatim: the cascade already
        // arranged for their inputs to be derived in full.
        for (rule, guardable) in &self.relevant {
            if !*guardable {
                rules.push((*rule).clone());
            }
        }

        Ok(MagicProgram {
            program: TgdProgram::from_rules(rules),
            seeds,
            total_rules: self.program.len(),
            relevant_rules: self.relevant.len(),
            guarded_rules,
            adorned_rules,
            magic_rules,
            adornments,
            unrestricted: self
                .unrestricted
                .iter()
                .map(|p| p.name_str().to_string())
                .collect(),
        })
    }
}

/// Build the magic atom `magic_<pred>_<adornment>(terms)`.
fn magic_atom(pred: &Predicate, adornment: &Adornment, terms: Vec<Term>) -> Atom {
    let name = format!("{MAGIC_PREFIX}{}_{}", pred.name_str(), adornment.suffix());
    Atom::from_predicate(Predicate::new(&name, terms.len()), terms)
}

/// Rewrite `program` for goal-driven evaluation of `query`.
///
/// On success the returned [`MagicProgram`] chases to exactly the
/// goal-relevant part of the universal model: add [`MagicProgram::seeds`]
/// to the instance, chase [`MagicProgram::program`], and evaluate the
/// *original* query over the result. On [`Inadmissible`] the caller should
/// fall back to the full-model chase.
pub fn rewrite_goal_driven(
    program: &TgdProgram,
    query: &ConjunctiveQuery,
) -> Result<MagicProgram, Inadmissible> {
    rewrite_goal_driven_with(program, query, &StructuralSipSelectivity)
}

/// Like [`rewrite_goal_driven`], but with an explicit [`SipSelectivity`]
/// oracle steering the sideways-information-passing order. The planner
/// passes a statistics-backed oracle here so demand flows through the atoms
/// the data says are selective, not the atoms the rule author wrote first;
/// any oracle yields a correct rewrite — only the tightness of the magic
/// restriction (and thus chase work) varies.
pub fn rewrite_goal_driven_with(
    program: &TgdProgram,
    query: &ConjunctiveQuery,
    selectivity: &dyn SipSelectivity,
) -> Result<MagicProgram, Inadmissible> {
    let mut guard = span("magic.adorn");
    let result = Rewriter::new(program, query)?.rewrite(query, selectivity);
    if let Ok(magic) = &result {
        guard.attr("relevant_rules", magic.relevant_rules);
        guard.attr("adorned_rules", magic.adorned_rules);
        guard.attr("magic_rules", magic.magic_rules);
        guard.attr("adornments", magic.adornments);
    }
    result
}

#[cfg(test)]
mod tests;
