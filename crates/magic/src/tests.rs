use super::*;
use ontorew_chase::{chase, ChaseConfig};
use ontorew_model::parse_program;
use ontorew_storage::{evaluate_cq, RelationalStore};

/// A Datalog registrar ontology: transitive prerequisite closure feeding a
/// per-student obligation predicate. Full, single-head, weakly acyclic —
/// everything is guardable.
fn registrar() -> TgdProgram {
    parse_program(
        r#"
        [G1] enrolled(S, C) -> student(S).
        [G2] enrolled(S, C) -> course(C).
        [G3] prereq(C1, C2) -> requires(C1, C2).
        [G4] requires(C1, C2), prereq(C2, C3) -> requires(C1, C3).
        [G5] enrolled(S, C), requires(C, P) -> mustComplete(S, P).
        "#,
    )
    .unwrap()
}

fn registrar_store() -> RelationalStore {
    let mut store = RelationalStore::new();
    // Two students, a three-course prerequisite chain, one shared course.
    store.insert_fact("enrolled", &["ann", "db3"]);
    store.insert_fact("enrolled", &["bob", "ml1"]);
    store.insert_fact("prereq", &["db3", "db2"]);
    store.insert_fact("prereq", &["db2", "db1"]);
    store.insert_fact("prereq", &["ml1", "db1"]);
    store
}

fn answers_goal_driven(
    magic: &MagicProgram,
    store: &RelationalStore,
    query: &ConjunctiveQuery,
    config: &ChaseConfig,
) -> ontorew_storage::AnswerSet {
    let mut instance = store.to_instance();
    for seed in &magic.seeds {
        instance.insert(seed.clone());
    }
    let result = chase(&magic.program, &instance, config);
    assert!(
        result.is_universal_model(),
        "magic chase must terminate here"
    );
    evaluate_cq(&RelationalStore::from_instance(&result.instance), query).without_nulls()
}

fn answers_full(
    program: &TgdProgram,
    store: &RelationalStore,
    query: &ConjunctiveQuery,
    config: &ChaseConfig,
) -> ontorew_storage::AnswerSet {
    let result = chase(program, &store.to_instance(), config);
    assert!(result.is_universal_model());
    evaluate_cq(&RelationalStore::from_instance(&result.instance), query).without_nulls()
}

#[test]
fn selective_query_is_admissible_and_equivalent() {
    let program = registrar();
    let query = ontorew_model::parse_query(r#"q(P) :- mustComplete("ann", P)"#).unwrap();
    let magic = rewrite_goal_driven(&program, &query).expect("registrar query is selective");

    // The slice drops G1/G2 (student/course are not reachable from the goal).
    assert_eq!(magic.total_rules, 5);
    assert_eq!(magic.relevant_rules, 3);
    assert_eq!(magic.guarded_rules, 3);
    assert!(magic.unrestricted.is_empty());
    assert_eq!(
        magic.seeds,
        vec![Atom::new(
            "magic_mustComplete_bf",
            vec![Term::constant("ann")]
        )]
    );

    let store = registrar_store();
    for config in [ChaseConfig::restricted(64), ChaseConfig::oblivious(64)] {
        let goal = answers_goal_driven(&magic, &store, &query, &config);
        let full = answers_full(&program, &store, &query, &config);
        assert_eq!(goal, full, "goal-driven answers must match the full chase");
        assert_eq!(goal.len(), 2); // db3 requires db2 directly and db1 transitively.
    }

    // The restriction actually prunes: bob's obligations are never derived.
    let mut instance = store.to_instance();
    for seed in &magic.seeds {
        instance.insert(seed.clone());
    }
    let result = chase(&magic.program, &instance, &ChaseConfig::restricted(64));
    let restricted_store = RelationalStore::from_instance(&result.instance);
    let bob = ontorew_model::parse_query(r#"q(P) :- mustComplete("bob", P)"#).unwrap();
    assert_eq!(evaluate_cq(&restricted_store, &bob).len(), 0);
}

#[test]
fn all_free_query_atom_seeds_a_propositional_magic_fact() {
    let program = registrar();
    // One selective atom plus one all-free atom over a restricted predicate.
    let query =
        ontorew_model::parse_query(r#"q(P, S) :- mustComplete("ann", P), student(S)"#).unwrap();
    let magic = rewrite_goal_driven(&program, &query).unwrap();
    assert!(magic
        .seeds
        .iter()
        .any(|s| s.predicate.name_str() == "magic_student_f" && s.terms.is_empty()));

    let store = registrar_store();
    let config = ChaseConfig::restricted(64);
    assert_eq!(
        answers_goal_driven(&magic, &store, &query, &config),
        answers_full(&program, &store, &query, &config)
    );
}

#[test]
fn queries_binding_no_constants_are_inadmissible() {
    let program = registrar();
    let query = ontorew_model::parse_query("q(S) :- student(S)").unwrap();
    assert_eq!(
        rewrite_goal_driven(&program, &query).err(),
        Some(Inadmissible::NoBoundSeed)
    );
}

#[test]
fn existential_cascade_makes_example2_inadmissible() {
    // Example 2's existential rule r(Y2, Y3) makes r unrestricted, which
    // cascades through s back to r: nothing guardable survives.
    let program = ontorew_core::examples::example2();
    let query = ontorew_core::examples::example2_query();
    assert_eq!(
        rewrite_goal_driven(&program, &query).err(),
        Some(Inadmissible::NoGuardedRules)
    );
}

#[test]
fn reserved_prefix_is_rejected() {
    let program = parse_program("magic_p(X) -> q(X).").unwrap();
    let query = ontorew_model::parse_query(r#"a(X) :- q(X)"#).unwrap();
    assert_eq!(
        rewrite_goal_driven(&program, &query).err(),
        Some(Inadmissible::ReservedPrefix("magic_p".to_string()))
    );
}

#[test]
fn multi_head_rules_join_the_unguarded_cascade() {
    let program = parse_program(
        r#"
        [M1] base(X) -> left(X), right(X).
        [M2] left(X), edge(X, Y) -> reach(Y).
        [M3] reach(X), edge(X, Y) -> reach(Y).
        "#,
    )
    .unwrap();
    let query = ontorew_model::parse_query(r#"q() :- reach("t")"#).unwrap();
    let magic = rewrite_goal_driven(&program, &query).unwrap();
    // M1 is multi-head: left (and right) are derived in full; reach stays
    // restricted and its rules are guarded.
    assert!(magic.unrestricted.contains("left"));
    assert_eq!(magic.guarded_rules, 2);

    let mut store = RelationalStore::new();
    store.insert_fact("base", &["a"]);
    store.insert_fact("edge", &["a", "b"]);
    store.insert_fact("edge", &["b", "t"]);
    store.insert_fact("edge", &["z", "w"]);
    let config = ChaseConfig::restricted(64);
    assert_eq!(
        answers_goal_driven(&magic, &store, &query, &config),
        answers_full(&program, &store, &query, &config)
    );
}

#[test]
fn sip_passes_bindings_through_the_most_bound_atom_first() {
    let program = registrar();
    let query = ontorew_model::parse_query(r#"q(P) :- mustComplete("ann", P)"#).unwrap();
    let magic = rewrite_goal_driven(&program, &query).unwrap();
    // G5's body is enrolled(S, C), requires(C, P): with S bound by the
    // guard, enrolled binds one position and requires none, so the greedy
    // SIP binds C through enrolled before demanding requires — the requires
    // demand must be bf, not ff.
    let demands_requires_bf = magic
        .program
        .rules()
        .iter()
        .any(|r| r.head.len() == 1 && r.head[0].predicate.name_str() == "magic_requires_bf");
    assert!(demands_requires_bf, "{:?}", magic.dump());
    // And the transitive rule G4 re-demands requires under the same
    // adornment (requires^bf depends on itself), closing the worklist.
    let g4_adorned = magic
        .program
        .rules()
        .iter()
        .any(|r| r.label_str() == "G4@bf");
    assert!(g4_adorned, "{:?}", magic.dump());
}

#[test]
fn sip_reorders_bodies_written_selective_atom_last() {
    // Same registrar semantics, but G5's body is written with requires
    // *first*: a textual left-to-right SIP would demand requires^ff (derive
    // the whole transitive closure), while the greedy SIP pulls enrolled
    // forward (it binds S from the guard) and still demands requires^bf.
    let program = parse_program(
        r#"
        [B3] prereq(C1, C2) -> requires(C1, C2).
        [B4] requires(C1, C2), prereq(C2, C3) -> requires(C1, C3).
        [B5] requires(C, P), enrolled(S, C) -> mustComplete(S, P).
        "#,
    )
    .unwrap();
    let query = ontorew_model::parse_query(r#"q(P) :- mustComplete("ann", P)"#).unwrap();
    let magic = rewrite_goal_driven(&program, &query).unwrap();
    let demanded: Vec<&str> = magic
        .program
        .rules()
        .iter()
        .filter(|r| r.head.len() == 1)
        .map(|r| r.head[0].predicate.name_str())
        .filter(|name| name.starts_with("magic_requires"))
        .collect();
    assert!(
        demanded.contains(&"magic_requires_bf"),
        "{:?}",
        magic.dump()
    );
    assert!(
        !demanded.contains(&"magic_requires_ff"),
        "textual order leaked into the SIP: {:?}",
        magic.dump()
    );
    // The adorned copy's body is in SIP order: guard, enrolled, requires.
    let adorned = magic
        .program
        .rules()
        .iter()
        .find(|r| r.label_str() == "B5@bf")
        .expect("B5 must be adorned");
    assert_eq!(adorned.body[1].predicate.name_str(), "enrolled");
    assert_eq!(adorned.body[2].predicate.name_str(), "requires");

    let store = registrar_store();
    let config = ChaseConfig::restricted(64);
    assert_eq!(
        answers_goal_driven(&magic, &store, &query, &config),
        answers_full(&program, &store, &query, &config)
    );
}

#[test]
fn selectivity_oracle_breaks_bound_count_ties() {
    struct Prefer(&'static str);
    impl SipSelectivity for Prefer {
        fn estimate(&self, atom: &Atom, _adornment: &Adornment) -> f64 {
            if atom.predicate.name_str() == self.0 {
                1.0
            } else {
                100.0
            }
        }
    }
    // Both body atoms bind X from the guard, so only the oracle's estimate
    // distinguishes them.
    let program = parse_program("[T] a(X, Y), b(X, Y) -> pair(X, Y).").unwrap();
    let query = ontorew_model::parse_query(r#"q(Y) :- pair("k", Y)"#).unwrap();

    let magic = rewrite_goal_driven_with(&program, &query, &Prefer("b")).unwrap();
    let adorned = magic
        .program
        .rules()
        .iter()
        .find(|r| r.label_str() == "T@bf")
        .expect("T must be adorned");
    assert_eq!(adorned.body[1].predicate.name_str(), "b");

    // The structural default is a full tie here and degrades to textual
    // order, keeping rewrites deterministic without statistics.
    let magic = rewrite_goal_driven(&program, &query).unwrap();
    let adorned = magic
        .program
        .rules()
        .iter()
        .find(|r| r.label_str() == "T@bf")
        .expect("T must be adorned");
    assert_eq!(adorned.body[1].predicate.name_str(), "a");
}

#[test]
fn dump_reports_the_adorned_program() {
    let program = registrar();
    let query = ontorew_model::parse_query(r#"q(P) :- mustComplete("ann", P)"#).unwrap();
    let magic = rewrite_goal_driven(&program, &query).unwrap();
    let dump = magic.dump();
    assert!(
        dump[0].contains("3 of 5 original rules relevant"),
        "{dump:?}"
    );
    assert!(
        dump.iter()
            .any(|l| l.starts_with("seed: magic_mustComplete_bf")),
        "{dump:?}"
    );
    assert!(dump.iter().any(|l| l.contains("G5@bf")), "{dump:?}");
}
