//! `ontorew-server`: stand-alone TCP query server.
//!
//! ```text
//! ontorew-server [--addr 127.0.0.1:7411] [--workers 8] [--students 1000]
//!                [--data-dir DIR] [--fsync always|every-N|off]
//!                [--slow-query-ms N] [--trace-ring N]
//! ```
//!
//! Serves the built-in university ontology (the E8/E12 workload) with a
//! synthetic ABox of `--students` students preloaded (0 for an empty store).
//! With `--data-dir`, tenants are durable: every commit is WAL-logged under
//! the directory before it is acknowledged, a background compactor
//! checkpoints tenants to on-disk segments, and a restart with the same
//! directory recovers every tenant (the persisted state then wins over the
//! `--students` seed). Prints `listening on <addr>` once ready — scripts
//! wait for that line — and runs until a client sends `SHUTDOWN`, at which
//! point in-flight connections are drained and all WALs are fsynced.

use ontorew_serve::{
    serve, serve_registry, Compactor, CompactorConfig, DurabilitySettings, QueryService,
    ServerConfig, ServiceConfig, TenantRegistry,
};
use ontorew_storage::{FsyncPolicy, RelationalStore};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7411".to_string();
    let mut workers = 8usize;
    let mut students = 1000usize;
    let mut data_dir: Option<PathBuf> = None;
    let mut fsync = FsyncPolicy::default();
    let mut slow_query: Option<Duration> = None;
    let mut trace_ring = ServerConfig::default().trace_ring;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = take("--addr"),
            "--workers" => workers = take("--workers").parse().expect("--workers: not a number"),
            "--students" => {
                students = take("--students")
                    .parse()
                    .expect("--students: not a number")
            }
            "--data-dir" => data_dir = Some(PathBuf::from(take("--data-dir"))),
            "--slow-query-ms" => {
                let ms: u64 = take("--slow-query-ms")
                    .parse()
                    .expect("--slow-query-ms: not a number");
                slow_query = Some(Duration::from_millis(ms));
            }
            "--trace-ring" => {
                trace_ring = take("--trace-ring")
                    .parse()
                    .expect("--trace-ring: not a number")
            }
            "--fsync" => {
                fsync = take("--fsync")
                    .parse()
                    .expect("--fsync: want always, every-N, or off")
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: ontorew-server [--addr HOST:PORT] [--workers N] [--students N] \
                     [--data-dir DIR] [--fsync always|every-N|off] [--slow-query-ms N] \
                     [--trace-ring N]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}; try --help");
                return ExitCode::FAILURE;
            }
        }
    }

    let program = ontorew_core::examples::university_ontology();
    let store = if students == 0 {
        RelationalStore::new()
    } else {
        let abox =
            ontorew_workloads::university_abox(students, students / 10 + 1, students / 5 + 1, 17);
        RelationalStore::from_instance(&abox)
    };
    eprintln!(
        "university ontology: {} rules, {} seed facts",
        program.len(),
        store.len()
    );

    let config = ServerConfig {
        addr,
        workers,
        slow_query,
        trace_ring,
        ..Default::default()
    };
    let (handle, compactor) = match &data_dir {
        Some(root) => {
            let registry = match TenantRegistry::recover(
                program,
                store,
                ServiceConfig::default(),
                DurabilitySettings {
                    root: root.clone(),
                    fsync,
                },
            ) {
                Ok(registry) => Arc::new(registry),
                Err(e) => {
                    eprintln!("cannot recover data dir {}: {e}", root.display());
                    return ExitCode::FAILURE;
                }
            };
            for info in registry.list() {
                let tenant = registry.get(&info.name).expect("listed tenant exists");
                let snapshot = tenant.snapshot();
                let durability = tenant.stats().durability;
                eprintln!(
                    "tenant {}: epoch {}, {} facts, recovery #{} (fsync {})",
                    info.name,
                    snapshot.epoch(),
                    snapshot.len(),
                    durability.recoveries,
                    fsync
                );
            }
            let compactor = Compactor::start(Arc::clone(&registry), CompactorConfig::default());
            match serve_registry(registry, config) {
                Ok(handle) => (handle, Some(compactor)),
                Err(e) => {
                    eprintln!("cannot bind: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            let service = Arc::new(QueryService::new(program, store, ServiceConfig::default()));
            match serve(service, config) {
                Ok(handle) => (handle, None),
                Err(e) => {
                    eprintln!("cannot bind: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    // Machine-readable readiness line (scripts/serve_smoke.sh waits for it);
    // flush explicitly because stdout is block-buffered under a pipe.
    println!("listening on {}", handle.addr());
    let _ = std::io::Write::flush(&mut std::io::stdout());
    handle.wait();
    let stats = handle.service().stats();
    eprintln!(
        "shutting down: {} queries, {} inserts, cache hit rate {:.1}%",
        stats.queries,
        stats.inserts,
        stats.cache.hit_rate() * 100.0
    );
    // Stop checkpointing first, then drain connections and fsync every WAL.
    if let Some(compactor) = compactor {
        compactor.shutdown();
    }
    handle.shutdown();
    ExitCode::SUCCESS
}
