//! `ontorew-server`: stand-alone TCP query server.
//!
//! ```text
//! ontorew-server [--addr 127.0.0.1:7411] [--workers 8] [--students 1000]
//! ```
//!
//! Serves the built-in university ontology (the E8/E12 workload) with a
//! synthetic ABox of `--students` students preloaded (0 for an empty store).
//! Prints `listening on <addr>` once ready — scripts wait for that line —
//! and runs until a client sends `SHUTDOWN`.

use ontorew_serve::{serve, QueryService, ServerConfig, ServiceConfig};
use ontorew_storage::RelationalStore;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7411".to_string();
    let mut workers = 8usize;
    let mut students = 1000usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = take("--addr"),
            "--workers" => workers = take("--workers").parse().expect("--workers: not a number"),
            "--students" => {
                students = take("--students")
                    .parse()
                    .expect("--students: not a number")
            }
            "--help" | "-h" => {
                eprintln!("usage: ontorew-server [--addr HOST:PORT] [--workers N] [--students N]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}; try --help");
                return ExitCode::FAILURE;
            }
        }
    }

    let program = ontorew_core::examples::university_ontology();
    let store = if students == 0 {
        RelationalStore::new()
    } else {
        let abox =
            ontorew_workloads::university_abox(students, students / 10 + 1, students / 5 + 1, 17);
        RelationalStore::from_instance(&abox)
    };
    eprintln!(
        "university ontology: {} rules, {} preloaded facts",
        program.len(),
        store.len()
    );
    let service = Arc::new(QueryService::new(program, store, ServiceConfig::default()));
    let handle = match serve(service, ServerConfig { addr, workers }) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Machine-readable readiness line (scripts/serve_smoke.sh waits for it);
    // flush explicitly because stdout is block-buffered under a pipe.
    println!("listening on {}", handle.addr());
    let _ = std::io::Write::flush(&mut std::io::stdout());
    handle.wait();
    let stats = handle.service().stats();
    eprintln!(
        "shutting down: {} queries, {} inserts, cache hit rate {:.1}%",
        stats.queries,
        stats.inserts,
        stats.cache.hit_rate() * 100.0
    );
    ExitCode::SUCCESS
}
