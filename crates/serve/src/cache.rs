//! The sharded LRU prepared-plan cache.
//!
//! Compiling a query — classifying, rewriting, choosing a plan — is the
//! expensive, amortisable step of the answering pipeline; the finished
//! [`PreparedQuery`] is an immutable compiled artifact that any number of
//! threads can execute concurrently. This cache stores those artifacts keyed
//! by [`PreparedKey`] — the pair of program and query fingerprints, both
//! invariant under α-renaming and atom reordering — so structurally
//! identical queries, however spelled, hit the same entry. Because the key
//! includes the *program* fingerprint, one cache instance is safely shared
//! across tenants: tenants serving the same ontology share plans, tenants
//! serving different ontologies never collide.
//!
//! The map is split into shards, each behind its own mutex, so concurrent
//! lookups for different queries rarely contend; the value is handed out as
//! an `Arc`, so the lock is held only for the map operation, never during
//! plan compilation or execution. Eviction is least-recently-used per shard,
//! with recency tracked by a global atomic tick — cheap, contention-free,
//! and precise enough at cache granularity.
//!
//! The cache is generic over the cached artifact ([`ShardedCache`]); the
//! serving layer uses [`ShardedPlanCache`] (prepared plans), and
//! [`ShardedRewritingCache`] remains for callers that cache raw rewritings.

use ontorew_plan::PreparedQuery;
use ontorew_rewrite::{PreparedKey, Rewriting};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of the prepared-plan cache.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Number of shards (rounded up to at least 1). More shards mean less
    /// lock contention; 16 is plenty below a few hundred threads.
    pub shards: usize,
    /// Maximum entries per shard; the least-recently-used entry is evicted
    /// when a shard grows past this.
    pub capacity_per_shard: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 16,
            capacity_per_shard: 256,
        }
    }
}

struct Entry<V> {
    /// The canonical text of the query the artifact was compiled for. The
    /// 64-bit fingerprint pair in the key is compact but not
    /// collision-resistant, so every hit is confirmed against this text —
    /// like the relation dedup in `ontorew-model`, a collision may cost
    /// time (the colliding queries fight over one slot and recompute), but
    /// never correctness.
    canonical: String,
    value: Arc<V>,
    last_used: u64,
}

struct Shard<V> {
    entries: HashMap<PreparedKey, Entry<V>>,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Shard {
            entries: HashMap::new(),
        }
    }
}

/// A sharded, LRU-evicting map from [`PreparedKey`] to compiled artifacts.
/// All methods take `&self`; the cache is meant to be shared behind an
/// `Arc` by every server worker (and, via the tenant registry, by every
/// tenant).
pub struct ShardedCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    capacity_per_shard: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// The cache of compiled [`PreparedQuery`] plans — what `QueryService`
/// shares across tenants.
pub type ShardedPlanCache = ShardedCache<PreparedQuery>;

/// The cache of raw [`Rewriting`]s (the pre-planner artifact kind), kept for
/// embedders that drive the rewriting engine directly.
pub type ShardedRewritingCache = ShardedCache<Rewriting>;

/// A point-in-time snapshot of cache counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently resident, across all shards.
    pub entries: usize,
    /// Entries evicted by the LRU policy so far.
    pub evictions: u64,
    /// Number of shards.
    pub shards: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0.0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl<V> ShardedCache<V> {
    /// An empty cache with the given sharding configuration.
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard: config.capacity_per_shard.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &PreparedKey) -> &Mutex<Shard<V>> {
        // Mix both fingerprints; they are already high-quality 64-bit hashes,
        // so a rotate-xor spreads shards evenly.
        let mixed = key.program.0.rotate_left(32) ^ key.query.0;
        &self.shards[(mixed % self.shards.len() as u64) as usize]
    }

    /// Look up a prepared artifact, refreshing its recency. `canonical` is
    /// the canonical text of the query being looked up; a resident entry
    /// whose text differs (a fingerprint collision) is treated as a miss.
    /// Counts a hit or a miss.
    pub fn lookup(&self, key: &PreparedKey, canonical: &str) -> Option<Arc<V>> {
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_of(key).lock();
        match shard.entries.get_mut(key) {
            Some(entry) if entry.canonical == canonical => {
                entry.last_used = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) a prepared artifact, evicting the shard's
    /// least-recently-used entry if the shard is full. Returns the stored
    /// value — the existing one if another thread inserted the same query
    /// first, so racing preparers converge on a single artifact. A colliding
    /// entry (same key, different canonical text) is displaced.
    pub fn insert(&self, key: PreparedKey, canonical: &str, value: Arc<V>) -> Arc<V> {
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_of(&key).lock();
        if let Some(existing) = shard.entries.get_mut(&key) {
            if existing.canonical == canonical {
                existing.last_used = now;
                return Arc::clone(&existing.value);
            }
            // Fingerprint collision: the slot is taken over by the newcomer
            // (either query recomputes when it next misses; correctness is
            // preserved by the text confirmation in `lookup`).
            shard.entries.remove(&key);
        }
        if shard.entries.len() >= self.capacity_per_shard {
            if let Some(victim) = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                shard.entries.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.entries.insert(
            key,
            Entry {
                canonical: canonical.to_string(),
                value: Arc::clone(&value),
                last_used: now,
            },
        );
        value
    }

    /// Look up `key`, computing and inserting the artifact on a miss. The
    /// computation runs *outside* the shard lock: concurrent misses for the
    /// same key may compute twice, but the first insert wins and both callers
    /// receive the same artifact — preferable to holding a lock across a
    /// potentially long plan compilation.
    pub fn get_or_compute<F>(&self, key: PreparedKey, canonical: &str, compute: F) -> (Arc<V>, bool)
    where
        F: FnOnce() -> V,
    {
        if let Some(found) = self.lookup(&key, canonical) {
            return (found, true);
        }
        let computed = Arc::new(compute());
        (self.insert(key, canonical, computed), false)
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().entries.len()).sum(),
            evictions: self.evictions.load(Ordering::Relaxed),
            shards: self.shards.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::{parse_program, parse_query};
    use ontorew_rewrite::fingerprint::canonical_query_text;
    use ontorew_rewrite::{prepared_key, rewrite, RewriteConfig};

    fn key_of(program: &str, query: &str) -> (PreparedKey, String) {
        let q = parse_query(query).unwrap();
        (
            prepared_key(&parse_program(program).unwrap(), &q),
            canonical_query_text(&q),
        )
    }

    fn some_rewriting() -> Rewriting {
        let p = parse_program("[R1] student(X) -> person(X).").unwrap();
        let q = parse_query("q(X) :- person(X)").unwrap();
        rewrite(&p, &q, &RewriteConfig::default())
    }

    #[test]
    fn lookup_miss_then_hit() {
        let cache = ShardedRewritingCache::new(CacheConfig::default());
        let (key, text) = key_of("[R1] student(X) -> person(X).", "q(X) :- person(X)");
        assert!(cache.lookup(&key, &text).is_none());
        cache.insert(key, &text, Arc::new(some_rewriting()));
        assert!(cache.lookup(&key, &text).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
    }

    #[test]
    fn get_or_compute_computes_once_per_key() {
        let cache = ShardedRewritingCache::new(CacheConfig::default());
        let (key, text) = key_of("[R1] student(X) -> person(X).", "q(X) :- person(X)");
        let (first, was_cached) = cache.get_or_compute(key, &text, some_rewriting);
        assert!(!was_cached);
        let (second, was_cached) =
            cache.get_or_compute(key, &text, || panic!("must not recompute"));
        assert!(was_cached);
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn alpha_variants_share_an_entry() {
        let cache = ShardedRewritingCache::new(CacheConfig::default());
        let program = "[R1] student(X) -> person(X).";
        let (a, a_text) = key_of(program, "q(X) :- person(X), enrolled(X, C)");
        let (b, b_text) = key_of(program, "q(Y) :- enrolled(Y, K), person(Y)");
        assert_eq!(a, b);
        assert_eq!(a_text, b_text);
        cache.insert(a, &a_text, Arc::new(some_rewriting()));
        assert!(cache.lookup(&b, &b_text).is_some());
    }

    #[test]
    fn plans_for_different_programs_never_collide() {
        // The program fingerprint is half the key: the same query text under
        // two ontologies resolves to two distinct entries — the property the
        // multi-tenant registry relies on to share one cache.
        let cache = ShardedRewritingCache::new(CacheConfig::default());
        let (a, a_text) = key_of("[R1] student(X) -> person(X).", "q(X) :- person(X)");
        let (b, b_text) = key_of("[R1] employee(X) -> person(X).", "q(X) :- person(X)");
        assert_ne!(a, b);
        cache.insert(a, &a_text, Arc::new(some_rewriting()));
        assert!(cache.lookup(&b, &b_text).is_none());
        cache.insert(b, &b_text, Arc::new(some_rewriting()));
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn fingerprint_collisions_are_misses_not_wrong_answers() {
        let cache = ShardedRewritingCache::new(CacheConfig::default());
        let (key, text) = key_of("[R1] student(X) -> person(X).", "q(X) :- person(X)");
        cache.insert(key, &text, Arc::new(some_rewriting()));
        // Simulate a colliding query: same 128-bit key, different canonical
        // text. It must miss, and inserting it displaces the old slot.
        assert!(cache.lookup(&key, "() other(?0000);").is_none());
        cache.insert(key, "() other(?0000);", Arc::new(some_rewriting()));
        assert!(cache.lookup(&key, &text).is_none());
        assert!(cache.lookup(&key, "() other(?0000);").is_some());
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        // One shard of two slots so the eviction order is deterministic.
        let cache = ShardedRewritingCache::new(CacheConfig {
            shards: 1,
            capacity_per_shard: 2,
        });
        let program = "[R1] student(X) -> person(X).";
        let (k1, t1) = key_of(program, "q(X) :- person(X)");
        let (k2, t2) = key_of(program, "q(X) :- student(X)");
        let (k3, t3) = key_of(program, "q(X) :- employee(X)");
        let rw = Arc::new(some_rewriting());
        cache.insert(k1, &t1, Arc::clone(&rw));
        cache.insert(k2, &t2, Arc::clone(&rw));
        // Touch k1 so k2 is the LRU victim.
        assert!(cache.lookup(&k1, &t1).is_some());
        cache.insert(k3, &t3, Arc::clone(&rw));
        assert!(
            cache.lookup(&k1, &t1).is_some(),
            "recently used entry survives"
        );
        assert!(cache.lookup(&k2, &t2).is_none(), "LRU entry was evicted");
        assert!(cache.lookup(&k3, &t3).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = Arc::new(ShardedRewritingCache::new(CacheConfig::default()));
        let program = "[R1] student(X) -> person(X).";
        let keys: Vec<(PreparedKey, String)> = (0..8)
            .map(|i| key_of(program, &format!("q(X) :- person(X), extra{i}(X)")))
            .collect();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let keys = keys.clone();
                std::thread::spawn(move || {
                    for round in 0..50 {
                        let (key, text) = &keys[(t + round) % keys.len()];
                        let (got, _) = cache.get_or_compute(*key, text, some_rewriting);
                        assert_eq!(got.ucq.arity, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 50);
        assert!(stats.entries <= 8);
    }
}
