//! The wire protocol: newline-delimited text requests and responses.
//!
//! One request per line, case-sensitive verb first; one response per
//! request. `QUERY` responses are multi-line (header, `ROW` lines, `END`);
//! all other responses are a single line. See the grammar below — this
//! module is the reference implementation, and the README mirrors it.
//!
//! ```text
//! PREPARE <cq>          compile + cache the plan of <cq>
//!   -> OK PREPARED key=<fp> plan=<kind> disjuncts=<n> exact=<bool> cached=<bool>
//! EXPLAIN <cq>          compile (cached like PREPARE) and dump the plan
//!   -> OK PLAN key=<fp> plan=<kind> disjuncts=<n> exact=<bool> cached=<bool>
//!      INFO <one line of the plan dump>       (repeated)
//!      END
//! QUERY <cq>            answer <cq> over the current snapshot
//!   -> OK ANSWERS count=<n> epoch=<e> plan=<kind> strategy=<s>
//!      cache=<hit|miss> exact=<bool> us=<t>            (one line)
//!      ROW <c1> <c2> ...      (count lines; constants are whitespace-free)
//!      END
//! INSERT <fact>[; <fact>]*   commit one batch of facts as one new epoch
//!   -> OK INSERTED added=<n> epoch=<e>
//! DELETE <fact>[; <fact>]*   retract one batch of facts as one new epoch
//!   -> OK DELETED removed=<n> epoch=<e>
//! WHY <fact>            explain how the fact is derived in this snapshot
//!   -> OK WHY fact=<f> present=<bool> steps=<n> epoch=<e>
//!      INFO <one derivation step, target first>      (repeated)
//!      END                      (an absent fact reports candidates instead)
//! WHY NOT <fact>        explain why the fact is absent from this snapshot
//!   -> OK WHYNOT fact=<f> present=<bool> candidates=<n> epoch=<e>
//!      INFO <one candidate rule and its blocked premises>   (repeated)
//!      END                      (a present fact reports WHY steps instead)
//! TENANT CREATE <name> <rule>[ <rule>]*   register a tenant (empty store)
//!   -> OK TENANT name=<n> rules=<r> program=<fp> tenants=<count>
//! TENANT USE <name>     switch this connection to a tenant
//!   -> OK TENANT name=<n> epoch=<e> facts=<n>
//! TENANT DROP <name>    unregister a tenant (default cannot be dropped)
//!   -> OK TENANT dropped=<n> tenants=<count>
//! TENANT LIST           enumerate tenants
//!   -> OK TENANTS count=<n> names=<a,b,...>
//! STATS                 current-tenant counters and latency percentiles
//!   -> OK STATS queries=<n> prepares=<n> inserts=<n> deletes=<n> whys=<n>
//!      errors=<n> cache_hits=<n> cache_misses=<n> cache_entries=<n>
//!      hit_rate=<f> epoch=<e> facts=<n> prov_nodes=<n> prov_edges=<n>
//!      prov_bytes=<n> p50_us=<t> p99_us=<t> uptime_s=<s> tenants=<n>
//!      INFO tenant=<name> requests=<n> p50_us=<t> p99_us=<t>  (repeated,
//!      END                 one line per tenant that has served requests)
//! METRICS               process-wide registry, Prometheus text exposition
//!   -> OK METRICS families=<n>
//!      <one exposition line>                   (repeated: # HELP, # TYPE,
//!      END                                      and series sample lines)
//! TRACE ON|OFF          per-connection span-tree dumps. While on, every
//!                       subsequent OK response is followed by one block:
//!                       TRACE id=<rid> spans=<n> us=<t>, INFO lines (the
//!                       indented span tree), END.
//!   -> OK TRACE enabled=<bool>
//! PING                  liveness probe        -> OK PONG
//! QUIT                  close this connection -> OK BYE
//! SHUTDOWN              stop the whole server -> OK BYE
//! <anything else>       -> ERR <message>
//! ```
//!
//! `<cq>` is the surface query syntax (`q(X) :- person(X)`); `<fact>` is
//! `predicate(c1, c2, ...)` over bare or double-quoted constants; `<rule>`
//! is the ontology syntax (`[R1] student(X) -> person(X).` — the trailing
//! period terminates each rule, so one line carries a whole program);
//! `plan=<kind>` is one of `rewrite`, `chase`, `hybrid`, `besteffort`.

use ontorew_model::prelude::*;
use ontorew_model::{parse_program, parse_query};

/// The canonical verb list — the single source the parser's unknown-verb
/// error and the README protocol reference enumerate. `WHY NOT` is spelled
/// with its subword because that is what a client types.
pub const VERBS: &[&str] = &[
    "PREPARE", "EXPLAIN", "QUERY", "INSERT", "DELETE", "WHY", "WHY NOT", "TENANT", "STATS",
    "METRICS", "TRACE", "PING", "QUIT", "SHUTDOWN",
];

/// A parsed protocol request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Compile and cache a query's plan.
    Prepare(ConjunctiveQuery),
    /// Compile (cached) and dump a query's plan.
    Explain(ConjunctiveQuery),
    /// Answer a query over the current snapshot.
    Query(ConjunctiveQuery),
    /// Commit a batch of ground facts as one epoch.
    Insert(Vec<Atom>),
    /// Retract a batch of ground facts as one epoch (repaired by DRed).
    Delete(Vec<Atom>),
    /// Explain how a fact is derived in the current snapshot.
    Why(Atom),
    /// Explain why a fact is absent from the current snapshot.
    WhyNot(Atom),
    /// Register a new tenant with the given ontology and an empty store.
    TenantCreate {
        /// The tenant's name.
        name: String,
        /// The tenant's ontology.
        program: TgdProgram,
    },
    /// Switch this connection to the named tenant.
    TenantUse(String),
    /// Unregister the named tenant.
    TenantDrop(String),
    /// Enumerate the registered tenants.
    TenantList,
    /// Report service statistics (of the connection's current tenant).
    Stats,
    /// Dump the process-wide metrics registry as Prometheus text exposition.
    Metrics,
    /// Toggle per-connection span-tree dumps after each OK response.
    Trace(bool),
    /// Liveness probe.
    Ping,
    /// Close this connection.
    Quit,
    /// Stop the server (admin command; the CI smoke test uses it for a clean
    /// shutdown).
    Shutdown,
}

/// Parse one request line. Returns a human-readable error for malformed
/// input — the server relays it verbatim after `ERR `.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    match verb {
        "PREPARE" | "QUERY" | "EXPLAIN" => {
            if rest.is_empty() {
                return Err(format!(
                    "{verb} needs a query, e.g. {verb} q(X) :- person(X)"
                ));
            }
            let query = parse_query(rest).map_err(|e| format!("cannot parse query: {e}"))?;
            Ok(match verb {
                "PREPARE" => Request::Prepare(query),
                "EXPLAIN" => Request::Explain(query),
                _ => Request::Query(query),
            })
        }
        "TENANT" => parse_tenant_request(rest),
        "INSERT" | "DELETE" => {
            if rest.is_empty() {
                return Err(format!(
                    "{verb} needs facts, e.g. {verb} student(sara); course(db101)"
                ));
            }
            let facts = parse_fact_batch(rest, verb)?;
            Ok(if verb == "INSERT" {
                Request::Insert(facts)
            } else {
                Request::Delete(facts)
            })
        }
        "WHY" => {
            // `WHY NOT <fact>` probes an absence; plain `WHY <fact>`
            // explains a derivation. A predicate actually named `NOT` is
            // still reachable as `WHY NOT(...)` (no space).
            if let Some(fact_text) = rest
                .strip_prefix("NOT")
                .filter(|r| r.starts_with(char::is_whitespace))
            {
                Ok(Request::WhyNot(parse_fact(fact_text.trim())?))
            } else if rest.is_empty() {
                Err("WHY needs a fact, e.g. WHY person(sara) — or WHY NOT person(bob)".into())
            } else {
                Ok(Request::Why(parse_fact(rest)?))
            }
        }
        "STATS" if rest.is_empty() => Ok(Request::Stats),
        "METRICS" if rest.is_empty() => Ok(Request::Metrics),
        "TRACE" => match rest {
            "ON" => Ok(Request::Trace(true)),
            "OFF" => Ok(Request::Trace(false)),
            _ => Err("TRACE needs ON or OFF".into()),
        },
        "PING" if rest.is_empty() => Ok(Request::Ping),
        "QUIT" if rest.is_empty() => Ok(Request::Quit),
        "SHUTDOWN" if rest.is_empty() => Ok(Request::Shutdown),
        "" => Err("empty request".into()),
        other => Err(format!(
            "unknown verb {other:?}; expected {}",
            VERBS.join(", ")
        )),
    }
}

/// Parse a `;`-separated fact batch (the shared payload of `INSERT` and
/// `DELETE`).
fn parse_fact_batch(rest: &str, verb: &str) -> Result<Vec<Atom>, String> {
    let mut facts = Vec::new();
    for part in split_outside_quotes(rest, ';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        facts.push(parse_fact(part)?);
    }
    if facts.is_empty() {
        return Err(format!("{verb} contained no facts"));
    }
    Ok(facts)
}

/// Parse the payload of a `TENANT` request (`CREATE <name> <rules>`,
/// `USE <name>`, `DROP <name>`, `LIST`).
fn parse_tenant_request(rest: &str) -> Result<Request, String> {
    let (subverb, rest) = match rest.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (rest, ""),
    };
    match subverb {
        "CREATE" => {
            let (name, program_text) = rest
                .split_once(char::is_whitespace)
                .map(|(n, p)| (n, p.trim()))
                .ok_or_else(|| {
                    "TENANT CREATE needs a name and an ontology, e.g. \
                     TENANT CREATE hr [R1] student(X) -> person(X)."
                        .to_string()
                })?;
            if program_text.is_empty() {
                return Err(format!("TENANT CREATE {name}: missing the ontology rules"));
            }
            let program =
                parse_program(program_text).map_err(|e| format!("cannot parse ontology: {e}"))?;
            if program.is_empty() {
                return Err("TENANT CREATE: the ontology contained no rules".into());
            }
            Ok(Request::TenantCreate {
                name: name.to_string(),
                program,
            })
        }
        "USE" | "DROP" => {
            if rest.is_empty() || rest.split_whitespace().count() != 1 {
                return Err(format!("TENANT {subverb} needs exactly one tenant name"));
            }
            let name = rest.to_string();
            Ok(if subverb == "USE" {
                Request::TenantUse(name)
            } else {
                Request::TenantDrop(name)
            })
        }
        "LIST" if rest.is_empty() => Ok(Request::TenantList),
        other => Err(format!(
            "unknown TENANT subcommand {other:?}; expected CREATE, USE, DROP or LIST"
        )),
    }
}

/// Split `text` at `sep`, but never inside a double-quoted section (with
/// `\"` escapes). The separators themselves are dropped.
fn split_outside_quotes(text: &str, sep: char) -> Vec<String> {
    let mut parts = vec![String::new()];
    let mut in_quotes = false;
    let mut escaped = false;
    for c in text.chars() {
        if escaped {
            parts.last_mut().unwrap().push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => {
                parts.last_mut().unwrap().push(c);
                escaped = true;
            }
            '"' => {
                in_quotes = !in_quotes;
                parts.last_mut().unwrap().push(c);
            }
            c if c == sep && !in_quotes => parts.push(String::new()),
            c => parts.last_mut().unwrap().push(c),
        }
    }
    parts
}

/// Decode one fact argument: a bare token, or a double-quoted string with
/// `\"` escapes (the same convention as [`encode_cell`]).
fn decode_constant(raw: &str, context: &str) -> Result<String, String> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(format!("fact {context:?} has an empty argument"));
    }
    if let Some(inner) = raw.strip_prefix('"') {
        // An empty quoted constant `""` is legal — it round-trips through
        // `encode_cell` / `format_fact`.
        let inner = inner
            .strip_suffix('"')
            .filter(|_| raw.len() >= 2)
            .ok_or_else(|| format!("fact {context:?} has an unterminated quoted argument"))?;
        Ok(inner.replace("\\\"", "\""))
    } else if raw.contains('"') {
        Err(format!("fact {context:?} has a stray quote in an argument"))
    } else {
        Ok(raw.to_string())
    }
}

/// Parse a single ground fact `predicate(c1, c2, ...)`. Constants may be
/// bare identifiers or double-quoted strings — quoting protects commas,
/// semicolons and whitespace, and `\"` escapes an embedded quote.
pub fn parse_fact(text: &str) -> Result<Atom, String> {
    let text = text.trim();
    let open = text
        .find('(')
        .ok_or_else(|| format!("fact {text:?} is missing '('"))?;
    let name = text[..open].trim();
    if name.is_empty() {
        return Err(format!("fact {text:?} is missing a predicate name"));
    }
    let close = text
        .rfind(')')
        .ok_or_else(|| format!("fact {text:?} is missing ')'"))?;
    if close < open || !text[close + 1..].trim().is_empty() {
        return Err(format!("fact {text:?} has trailing garbage"));
    }
    let args = &text[open + 1..close];
    let mut terms = Vec::new();
    for raw in split_outside_quotes(args, ',') {
        terms.push(Term::constant(&decode_constant(&raw, text)?));
    }
    if terms.is_empty() {
        return Err(format!("fact {text:?} has no arguments"));
    }
    Ok(Atom {
        predicate: Predicate::new(name, terms.len()),
        terms,
    })
}

/// Encode one constant for the wire (`ROW` cells and `INSERT` fact
/// arguments): bare when the value contains none of the protocol's
/// structural characters, double-quoted (with `\"` escapes) otherwise — so
/// constants like `"sara jones"` or `"a, b; c"` survive unambiguously.
pub fn encode_cell(value: &str) -> String {
    let needs_quoting = value.is_empty()
        || value.contains(|c: char| c.is_whitespace() || matches!(c, '"' | ',' | ';' | '(' | ')'));
    if needs_quoting {
        format!("\"{}\"", value.replace('"', "\\\""))
    } else {
        value.to_string()
    }
}

/// Split a `ROW` payload into cells, honoring double quotes and `\"`
/// escapes (the inverse of [`encode_cell`]).
pub fn parse_row(text: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut chars = text.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        match chars.peek() {
            None => break,
            Some('"') => {
                chars.next();
                let mut cell = String::new();
                while let Some(c) = chars.next() {
                    match c {
                        '\\' if chars.peek() == Some(&'"') => {
                            chars.next();
                            cell.push('"');
                        }
                        '"' => break,
                        other => cell.push(other),
                    }
                }
                cells.push(cell);
            }
            Some(_) => {
                let mut cell = String::new();
                while matches!(chars.peek(), Some(c) if !c.is_whitespace()) {
                    cell.push(chars.next().unwrap());
                }
                cells.push(cell);
            }
        }
    }
    cells
}

/// Render a ground fact in the protocol's `INSERT` syntax, quoting
/// constants that contain structural characters (the inverse of
/// [`parse_fact`]).
pub fn format_fact(atom: &Atom) -> String {
    let args: Vec<String> = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Constant(c) => encode_cell(c.name()),
            other => encode_cell(&format!("{other}")),
        })
        .collect();
    format!("{}({})", atom.predicate.name_str(), args.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_query_and_prepare() {
        let q = parse_request("QUERY q(X) :- person(X)").unwrap();
        assert!(matches!(q, Request::Query(_)));
        let p = parse_request("PREPARE q(X) :- person(X)").unwrap();
        match p {
            Request::Prepare(cq) => assert_eq!(cq.arity(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_insert_batches() {
        let r = parse_request("INSERT student(sara); attends(sara, db101)").unwrap();
        match r {
            Request::Insert(facts) => {
                assert_eq!(facts.len(), 2);
                assert_eq!(facts[0], Atom::fact("student", &["sara"]));
                assert_eq!(facts[1], Atom::fact("attends", &["sara", "db101"]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_delete_batches() {
        let r = parse_request("DELETE student(sara); attends(sara, db101)").unwrap();
        match r {
            Request::Delete(facts) => {
                assert_eq!(facts.len(), 2);
                assert_eq!(facts[0], Atom::fact("student", &["sara"]));
                assert_eq!(facts[1], Atom::fact("attends", &["sara", "db101"]));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_request("DELETE").unwrap_err().contains("needs facts"));
        assert!(parse_request("DELETE ; ;")
            .unwrap_err()
            .contains("contained no facts"));
    }

    #[test]
    fn parses_why_and_why_not() {
        assert_eq!(
            parse_request("WHY person(sara)").unwrap(),
            Request::Why(Atom::fact("person", &["sara"]))
        );
        assert_eq!(
            parse_request("WHY NOT person(bob)").unwrap(),
            Request::WhyNot(Atom::fact("person", &["bob"]))
        );
        // A predicate literally named NOT stays reachable as a WHY target.
        assert_eq!(
            parse_request("WHY NOT(x)").unwrap(),
            Request::Why(Atom::fact("NOT", &["x"]))
        );
        assert!(parse_request("WHY").unwrap_err().contains("needs a fact"));
        assert!(parse_request("WHY nonsense").is_err());
    }

    #[test]
    fn unknown_verb_error_enumerates_the_canonical_verb_list() {
        let err = parse_request("FROB x").unwrap_err();
        for verb in VERBS {
            assert!(err.contains(verb), "error {err:?} is missing verb {verb}");
        }
    }

    #[test]
    fn quoted_constants_are_unquoted() {
        let fact = parse_fact("enrolled(\"sara jones\", db101)").unwrap();
        assert_eq!(fact.terms[0], Term::constant("sara jones"));
    }

    #[test]
    fn quoted_constants_protect_structural_characters() {
        // A comma inside quotes must not split the argument list.
        let fact = parse_fact(r#"nickname(zoe, "jones, sara")"#).unwrap();
        assert_eq!(fact.predicate.arity, 2);
        assert_eq!(fact.terms[1], Term::constant("jones, sara"));
        // A semicolon inside quotes must not split the fact batch.
        let r = parse_request(r#"INSERT note(a, "x; y"); note(b, z)"#).unwrap();
        match r {
            Request::Insert(facts) => {
                assert_eq!(facts.len(), 2);
                assert_eq!(facts[0].terms[1], Term::constant("x; y"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Escaped quotes survive.
        let fact = parse_fact(r#"says(zoe, "\"hi\"")"#).unwrap();
        assert_eq!(fact.terms[1], Term::constant("\"hi\""));
        // An unterminated quote is an error, not silent corruption.
        assert!(parse_fact(r#"r("unterminated)"#).is_err());
        assert!(parse_fact(r#"r(stray"quote)"#).is_err());
    }

    #[test]
    fn fact_round_trips_through_format() {
        for constants in [
            vec!["sara", "db101"],
            vec!["jones, sara", "a; b"],
            vec!["with \"quotes\"", "and space"],
            vec!["paren(thetical)", "x"],
            vec!["", "empty-first"],
        ] {
            let fact = Atom::fact("attends", &constants);
            assert_eq!(
                parse_fact(&format_fact(&fact)).unwrap(),
                fact,
                "round-trip of {constants:?}"
            );
        }
    }

    #[test]
    fn row_cells_round_trip_through_the_codec() {
        for cells in [
            vec!["sara", "db101"],
            vec!["sara jones", "db101"],
            vec!["", "x"],
            vec!["with \"quotes\"", "and space"],
            vec!["_:n7"],
        ] {
            let encoded: Vec<String> = cells.iter().map(|c| encode_cell(c)).collect();
            let decoded = parse_row(&encoded.join(" "));
            assert_eq!(decoded, cells, "payload {:?}", encoded.join(" "));
        }
        assert_eq!(parse_row(""), Vec::<String>::new());
        assert_eq!(parse_row("  a   b  "), vec!["a", "b"]);
    }

    #[test]
    fn explain_parses_like_query() {
        let r = parse_request("EXPLAIN q(X) :- person(X)").unwrap();
        match r {
            Request::Explain(cq) => assert_eq!(cq.arity(), 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_request("EXPLAIN")
            .unwrap_err()
            .contains("needs a query"));
    }

    #[test]
    fn tenant_verbs_parse() {
        let r = parse_request(
            "TENANT CREATE hr [R1] worksIn(X, D) -> employee(X). [R2] employee(X) -> person(X).",
        )
        .unwrap();
        match r {
            Request::TenantCreate { name, program } => {
                assert_eq!(name, "hr");
                assert_eq!(program.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            parse_request("TENANT USE hr").unwrap(),
            Request::TenantUse("hr".into())
        );
        assert_eq!(
            parse_request("TENANT DROP hr").unwrap(),
            Request::TenantDrop("hr".into())
        );
        assert_eq!(parse_request("TENANT LIST").unwrap(), Request::TenantList);
    }

    #[test]
    fn malformed_tenant_requests_are_rejected() {
        assert!(parse_request("TENANT").unwrap_err().contains("subcommand"));
        assert!(parse_request("TENANT FROB x")
            .unwrap_err()
            .contains("subcommand"));
        assert!(parse_request("TENANT CREATE hr")
            .unwrap_err()
            .contains("ontology"));
        assert!(parse_request("TENANT CREATE hr garbage rules here").is_err());
        assert!(parse_request("TENANT USE").unwrap_err().contains("name"));
        assert!(parse_request("TENANT USE two names")
            .unwrap_err()
            .contains("exactly one"));
        assert!(parse_request("TENANT LIST extra").is_err());
    }

    #[test]
    fn control_verbs_parse() {
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("METRICS").unwrap(), Request::Metrics);
        assert_eq!(parse_request("TRACE ON").unwrap(), Request::Trace(true));
        assert_eq!(parse_request("TRACE OFF").unwrap(), Request::Trace(false));
        assert_eq!(parse_request(" PING ").unwrap(), Request::Ping);
        assert_eq!(parse_request("QUIT").unwrap(), Request::Quit);
        assert_eq!(parse_request("SHUTDOWN").unwrap(), Request::Shutdown);
    }

    #[test]
    fn malformed_metrics_and_trace_requests_are_rejected() {
        assert!(parse_request("METRICS now").is_err());
        assert!(parse_request("TRACE").unwrap_err().contains("ON or OFF"));
        assert!(parse_request("TRACE MAYBE")
            .unwrap_err()
            .contains("ON or OFF"));
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        assert!(parse_request("").unwrap_err().contains("empty"));
        assert!(parse_request("FROB x")
            .unwrap_err()
            .contains("unknown verb"));
        assert!(parse_request("QUERY")
            .unwrap_err()
            .contains("needs a query"));
        assert!(parse_request("QUERY nonsense here")
            .unwrap_err()
            .contains("cannot parse"));
        assert!(parse_request("INSERT").unwrap_err().contains("needs facts"));
        assert!(parse_request("INSERT student sara").is_err());
        assert!(parse_fact("student()").is_err());
        assert!(parse_fact("(a)").is_err());
        assert!(parse_fact("student(a) extra").is_err());
        // STATS with arguments is not a valid request.
        assert!(parse_request("STATS now").is_err());
    }
}
