//! # ontorew-serve
//!
//! The serving layer: turns the rewriting-based query answering of the rest
//! of the workspace into a long-running, concurrent service.
//!
//! The paper's central point is that ontological query answering compiles
//! to cheap evaluation once the expensive per-query artifact — the plan,
//! with its UCQ rewriting or materialization strategy — has been built:
//! that compilation happens *once per query shape*, and everything after is
//! plain database work. This crate exploits exactly that split:
//!
//! * [`cache`] — a sharded LRU **prepared-plan cache** keyed by
//!   `(program fingerprint, query fingerprint)` (see
//!   [`ontorew_rewrite::fingerprint`]); α-renamed and atom-permuted variants
//!   of the same CQ hit the same entry, so repeat queries skip plan
//!   compilation entirely and go straight to execution — and because the
//!   program fingerprint is part of the key, one cache is shared across all
//!   tenants;
//! * [`snapshot`] — **snapshot-isolated stores**: readers evaluate against an
//!   immutable [`Snapshot`] behind an `Arc` while writers build the next
//!   epoch off to the side and publish it with an atomic pointer swap, so
//!   fact ingestion never blocks query traffic and no reader ever observes a
//!   half-applied batch;
//! * [`service`] — [`QueryService`], the embeddable engine combining the two
//!   (canonicalize → cache → execute the plan over a snapshot, with chase
//!   materializations cached per epoch by the `ontorew-plan` planner) with
//!   per-request latency and cache-hit [`metrics`];
//! * [`tenant`] — the **multi-tenant registry**: one server process hosts
//!   many ontologies (`TenantRegistry`), each tenant with its own planner
//!   and epoch store, all sharing the prepared-plan cache;
//! * [`server`] + [`proto`] — a thread-pool TCP server (no async runtime,
//!   plain `std` networking and threads) speaking a newline-delimited text
//!   protocol (`PREPARE`, `EXPLAIN`, `QUERY`, `INSERT`, `DELETE`, `WHY`,
//!   `WHY NOT`, `TENANT`, `STATS`, `METRICS`, `TRACE` — [`proto::VERBS`] is
//!   the canonical list, [`proto`] the reference), plus [`client`], the
//!   matching blocking client used by the bench load generator and the CI
//!   smoke test.
//!
//! ```
//! use ontorew_model::{parse_program, parse_query};
//! use ontorew_serve::{QueryService, ServiceConfig};
//! use ontorew_storage::RelationalStore;
//!
//! let program = parse_program("[R1] student(X) -> person(X).").unwrap();
//! let mut store = RelationalStore::new();
//! store.insert_fact("student", &["sara"]);
//! let service = QueryService::new(program, store, ServiceConfig::default());
//!
//! let q = parse_query("q(X) :- person(X)").unwrap();
//! let first = service.query(&q).unwrap();
//! assert_eq!(first.answers.len(), 1);
//! assert!(!first.cache_hit);
//! // An α-renamed variant of the same query is a cache hit.
//! let q2 = parse_query("q(Y) :- person(Y)").unwrap();
//! assert!(service.query(&q2).unwrap().cache_hit);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod client;
pub mod durability;
pub mod metrics;
pub mod pool;
pub mod proto;
pub mod server;
pub mod service;
pub mod snapshot;
pub mod tenant;

pub use cache::{CacheConfig, CacheStats, ShardedCache, ShardedPlanCache, ShardedRewritingCache};
pub use client::{ClientError, ExplainReply, QueryReply, RetryPolicy, ServeClient};
pub use durability::{Compactor, CompactorConfig, CompactorStats};
pub use metrics::{percentile, LatencyStats, ServeMetrics};
pub use pool::ThreadPool;
pub use proto::{format_fact, parse_fact, parse_request, Request, VERBS};
pub use server::{serve, serve_registry, ServerConfig, ServerHandle};
pub use service::{
    FactExplanation, Prepared, ProvenanceStats, QueryResponse, QueryService, ServiceConfig,
    ServiceError, ServiceStats,
};
pub use snapshot::{CommitReceipt, EpochStore, Snapshot};
pub use tenant::{DurabilitySettings, TenantInfo, TenantRegistry, DEFAULT_TENANT};
