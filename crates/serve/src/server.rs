//! The TCP front-end: a thread-pool server speaking the [`crate::proto`]
//! protocol over newline-delimited text.
//!
//! The server owns nothing but plumbing — every request is answered by a
//! [`QueryService`] out of the shared [`TenantRegistry`], so all concurrency
//! guarantees (snapshot isolation, cache coherence) come from the service
//! layer, and the same behavior is observable in-process. One connection is
//! one unit of work: a worker thread reads request lines until the peer
//! disconnects, a `QUIT`, or server shutdown. Each connection carries one
//! piece of state — its *current tenant* (initially `default`), switched by
//! `TENANT USE`. Reads use a short poll timeout so idle connections notice
//! shutdown promptly without a dedicated reaper thread.

use crate::pool::ThreadPool;
use crate::proto::{parse_request, Request};
use crate::service::QueryService;
use crate::tenant::{TenantRegistry, DEFAULT_TENANT};
use ontorew_model::prelude::*;
use ontorew_telemetry::{
    global_registry, global_ring, install_collector, render_tree, span, take_collector, Series,
    Trace, TraceSink,
};
use std::io::{BufRead, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of the TCP server.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7411`; port 0 picks a free port
    /// (the bound address is reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads (= concurrently served connections).
    pub workers: usize,
    /// Reap a connection after this long without a complete request. A
    /// worker slot held by a dead or silent peer is a worker the pool can't
    /// give to live traffic, so idleness is bounded: the connection gets an
    /// `ERR idle timeout` line and is closed. Slow-trickled partial lines
    /// do not count as activity.
    pub idle_timeout: Duration,
    /// How long [`ServerHandle::shutdown`] waits for in-flight connections
    /// to finish before syncing tenant WALs and returning. Workers observe
    /// the shutdown flag between requests, so the wait normally ends well
    /// before the deadline.
    pub drain_timeout: Duration,
    /// Log any request slower than this to stderr, with its span breakdown
    /// (`--slow-query-ms`). `None` disables the slow-query log. When set,
    /// every request is traced (spans are collected even with `TRACE OFF`)
    /// so the log can explain *where* the time went.
    pub slow_query: Option<Duration>,
    /// Capacity of the process-global ring of recent traces
    /// (`--trace-ring`). Traces land in the ring whenever they are
    /// collected — by `TRACE ON` or by an armed slow-query log.
    pub trace_ring: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            idle_timeout: Duration::from_secs(300),
            drain_timeout: Duration::from_secs(5),
            slow_query: None,
            trace_ring: 64,
        }
    }
}

/// A handle to a running server: its bound address and shutdown control.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    registry: Arc<TenantRegistry>,
    default_service: Arc<QueryService>,
    active: Arc<AtomicUsize>,
    drain_timeout: Duration,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The default tenant's service (the whole server, in single-tenant
    /// deployments).
    pub fn service(&self) -> &Arc<QueryService> {
        &self.default_service
    }

    /// The tenant registry the server answers from.
    pub fn registry(&self) -> &Arc<TenantRegistry> {
        &self.registry
    }

    /// True once shutdown has been requested (by [`ServerHandle::shutdown`]
    /// or a `SHUTDOWN` request on the wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Block until shutdown is requested, polling the flag.
    pub fn wait(&self) {
        while !self.is_shutting_down() {
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Request shutdown, drain in-flight connections (up to the configured
    /// drain deadline — workers notice the flag between requests, so the
    /// wait normally ends in one poll round), join the accept loop, then
    /// fsync every durable tenant's WAL so acknowledged commits are on disk
    /// before the process exits.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the accept loop so it observes the flag even if idle.
        let _ = TcpStream::connect(self.addr);
        let deadline = std::time::Instant::now() + self.drain_timeout;
        while self.active.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Err(e) = self.registry.sync_all() {
            eprintln!("ontorew-serve: WAL sync on shutdown failed: {e}");
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let _ = self.registry.sync_all();
    }
}

/// Start a single-tenant server: `service` becomes the `default` tenant of
/// a fresh registry (additional tenants can still be created on the wire,
/// sharing `service`'s plan cache and inheriting its configuration).
/// Returns once the listener is bound.
pub fn serve(service: Arc<QueryService>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let registry = Arc::new(TenantRegistry::around(service));
    serve_registry(registry, config)
}

/// Start serving every tenant of `registry` per `config`. Returns once the
/// listener is bound; the accept loop and workers run on background threads
/// until shutdown.
pub fn serve_registry(
    registry: Arc<TenantRegistry>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    global_ring().set_capacity(config.trace_ring);
    let shutdown = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let default_service = registry.default_tenant();
    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let active = Arc::clone(&active);
        let registry = Arc::clone(&registry);
        let workers = config.workers;
        let idle_timeout = config.idle_timeout;
        let slow_query = config.slow_query;
        std::thread::Builder::new()
            .name("ontorew-accept".to_string())
            .spawn(move || {
                let pool = ThreadPool::new(workers, "ontorew-serve");
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            let registry = Arc::clone(&registry);
                            let shutdown = Arc::clone(&shutdown);
                            let active = Arc::clone(&active);
                            pool.execute(move || {
                                let _guard = ActiveGuard::enter(active);
                                handle_connection(
                                    stream,
                                    registry,
                                    shutdown,
                                    idle_timeout,
                                    slow_query,
                                )
                            });
                        }
                        Err(_) => continue,
                    }
                }
                // `pool` drops here: queue closes, workers join.
            })?
    };
    Ok(ServerHandle {
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
        registry,
        default_service,
        active,
        drain_timeout: config.drain_timeout,
    })
}

/// Counts a connection in `active` for its whole lifetime, panic-safe.
struct ActiveGuard(Arc<AtomicUsize>);

impl ActiveGuard {
    fn enter(counter: Arc<AtomicUsize>) -> Self {
        counter.fetch_add(1, Ordering::SeqCst);
        ActiveGuard(counter)
    }
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Longest accepted request line. Anything a legitimate client sends is
/// orders of magnitude smaller; without a cap, one peer streaming bytes
/// with no newline would grow the line buffer until the whole server OOMs.
/// (`TENANT CREATE` carries a whole ontology on one line, which fits
/// comfortably: the cap allows ~1000 rules of typical size.)
const MAX_REQUEST_LINE: usize = 64 * 1024;

/// Per-connection protocol state: the tenant requests are routed to, and
/// whether `TRACE ON` armed per-request trace dumps.
struct Connection {
    service: Arc<QueryService>,
    tenant: String,
    trace: bool,
}

/// Process-wide monotonically increasing request id, stamped on every
/// request for trace and slow-query correlation.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Most spans a single request's trace may hold. Far above any real
/// request (a chase round is one span); bounds memory against pathology.
const MAX_TRACE_SPANS: usize = 4096;

/// Serve one connection until EOF, `QUIT`, `SHUTDOWN`, idle timeout, or
/// server shutdown.
fn handle_connection(
    stream: TcpStream,
    registry: Arc<TenantRegistry>,
    shutdown: Arc<AtomicBool>,
    idle_timeout: Duration,
    slow_query: Option<Duration>,
) {
    // A short read timeout lets idle connections poll the shutdown flag;
    // partially read lines stay buffered in `line` across poll rounds. The
    // write timeout bounds how long a worker can be wedged by a peer that
    // stops reading, which in turn bounds shutdown drain time.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = std::io::BufReader::new(stream);
    let mut connection = Connection {
        service: registry.default_tenant(),
        tenant: DEFAULT_TENANT.to_string(),
        trace: false,
    };
    // Requests are accumulated as bytes and decoded per complete line:
    // unlike `read_line`, `read_until` never drops already-consumed bytes
    // when a poll timeout lands mid-way through a multi-byte UTF-8
    // character, and invalid UTF-8 becomes an `ERR` reply instead of a
    // silently closed connection.
    let mut line: Vec<u8> = Vec::new();
    let mut last_request = std::time::Instant::now();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // `take` bounds how much a single read_until call may append, so
        // not even a fast sender can blow past the cap inside one call.
        let mut limited = reader.take((MAX_REQUEST_LINE + 1) as u64);
        let result = limited.read_until(b'\n', &mut line);
        reader = limited.into_inner();
        if line.len() > MAX_REQUEST_LINE {
            let _ = writeln!(writer, "ERR request line exceeds {MAX_REQUEST_LINE} bytes");
            connection.service.record_error();
            return;
        }
        match result {
            Ok(0) => return, // EOF
            Ok(_) => {
                // (A final unterminated line is served as-is; the next read
                // reports EOF.)
                last_request = std::time::Instant::now();
                let request = match String::from_utf8(std::mem::take(&mut line)) {
                    Ok(request) => request,
                    Err(_) => {
                        connection.service.record_error();
                        if writeln!(writer, "ERR request is not valid UTF-8").is_err() {
                            return;
                        }
                        continue;
                    }
                };
                let outcome = serve_request(
                    &request,
                    &registry,
                    &mut connection,
                    &shutdown,
                    &mut writer,
                    slow_query,
                );
                match outcome {
                    Ok(keep_open) if keep_open => continue,
                    _ => return,
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Poll round: re-check shutdown, keep any partial line. A
                // peer that trickles bytes without ever completing a request
                // is as idle as a silent one.
                if last_request.elapsed() >= idle_timeout {
                    let _ = writeln!(writer, "ERR idle timeout");
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
    }
}

/// Write the `INFO` lines of a `WHY` / `WHY NOT` reply: derivation steps
/// (target first) for a present fact, blocked candidates for an absent one.
fn write_explanation_info(
    writer: &mut TcpStream,
    explanation: &crate::service::FactExplanation,
) -> std::io::Result<()> {
    for step in &explanation.steps {
        match step.rule {
            None => {
                writeln!(
                    writer,
                    "INFO {} asserted",
                    crate::proto::format_fact(&step.fact)
                )?;
            }
            Some(rule) => {
                let premises: Vec<String> = step
                    .premises
                    .iter()
                    .map(crate::proto::format_fact)
                    .collect();
                writeln!(
                    writer,
                    "INFO {} derived rule={} from {}",
                    crate::proto::format_fact(&step.fact),
                    rule,
                    premises.join("; ")
                )?;
            }
        }
    }
    if let Some(why_not) = &explanation.absent {
        if why_not.candidates.is_empty() {
            writeln!(writer, "INFO no rule head can produce this predicate")?;
        }
        for candidate in &why_not.candidates {
            let body: Vec<String> = candidate
                .body
                .iter()
                .map(crate::proto::format_fact)
                .collect();
            let missing: Vec<String> = candidate
                .missing
                .iter()
                .map(crate::proto::format_fact)
                .collect();
            writeln!(
                writer,
                "INFO rule={} body={} missing={} invents={}",
                candidate.rule,
                body.join("; "),
                missing.join("; "),
                candidate.needs_invented_value
            )?;
        }
    }
    Ok(())
}

/// Write `STATS`'s per-tenant `INFO` lines: one per tenant of *this*
/// registry, rolled up from the global `request_seconds` histograms across
/// verbs. (The global registry outlives any one server — tests run several
/// in one process — so the wire registry decides which tenants to show.)
fn write_tenant_breakdown(
    writer: &mut TcpStream,
    registry: &TenantRegistry,
) -> std::io::Result<()> {
    let metrics = global_registry();
    for row in registry.list() {
        let rollup = ontorew_telemetry::Histogram::new();
        metrics.visit_family("request_seconds", |labels, series| {
            let matches = labels.iter().any(|(k, v)| k == "tenant" && *v == row.name);
            if matches {
                if let Series::Histogram(h) = series {
                    rollup.merge_from(h);
                }
            }
        });
        writeln!(
            writer,
            "INFO tenant={} requests={} p50_us={} p99_us={}",
            row.name,
            rollup.count(),
            rollup.quantile(0.50),
            rollup.quantile(0.99)
        )?;
    }
    Ok(())
}

/// Render one answer row for the wire.
fn encode_row(row: &[Term]) -> String {
    let cells: Vec<String> = row
        .iter()
        .map(|t| match t {
            Term::Constant(c) => crate::proto::encode_cell(c.name()),
            other => crate::proto::encode_cell(&format!("{other}")),
        })
        .collect();
    cells.join(" ")
}

/// The canonical verb of a request line, for metric labels. Unknown verbs
/// collapse to `INVALID` so a misbehaving peer can't explode label
/// cardinality.
fn verb_label(request: &str) -> &'static str {
    let first = request.split_whitespace().next().unwrap_or("");
    crate::proto::VERBS
        .iter()
        .find(|v| v.eq_ignore_ascii_case(first))
        .copied()
        .unwrap_or("INVALID")
}

/// Serve one request line with telemetry around it: a request span (plus a
/// collector when this connection is tracing or the slow-query log is
/// armed), per-tenant × per-verb counters and latency histograms, the
/// `TRACE` dump block after traced `OK` responses, and the slow-query log.
fn serve_request(
    request: &str,
    registry: &TenantRegistry,
    connection: &mut Connection,
    shutdown: &AtomicBool,
    writer: &mut TcpStream,
    slow_query: Option<Duration>,
) -> std::io::Result<bool> {
    if request.trim().is_empty() {
        return Ok(true); // blank lines are keep-alive noise
    }
    // The tenant label is the tenant the request was *issued under*
    // (`TENANT USE` switches for subsequent requests, not its own).
    let tenant = connection.tenant.clone();
    let verb = verb_label(request);
    let trace_armed = connection.trace;
    let collect = trace_armed || slow_query.is_some();
    if collect {
        install_collector(MAX_TRACE_SPANS);
    }
    let request_id = NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed);
    let started = std::time::Instant::now();
    let outcome = {
        let mut root = span("serve.request");
        root.attr("id", request_id);
        root.attr("verb", verb);
        root.attr("tenant", &tenant);
        respond(request, registry, connection, shutdown, writer)
    };
    let elapsed = started.elapsed();
    let elapsed_us = elapsed.as_micros() as u64;
    let metrics = global_registry();
    metrics
        .counter(
            "requests_total",
            "Requests served, by tenant and verb.",
            &[("tenant", &tenant), ("verb", verb)],
        )
        .inc();
    metrics
        .histogram_us(
            "request_seconds",
            "Request wall time by tenant and verb.",
            &[("tenant", &tenant), ("verb", verb)],
        )
        .observe(elapsed_us);
    if collect {
        // Always drain the collector — worker threads are reused, and a
        // leftover collector would leak spans into the next request.
        let (spans, _) = take_collector();
        let trace = Trace {
            request_id,
            tenant,
            verb: verb.to_string(),
            total_us: elapsed_us,
            spans,
        };
        if let Some(threshold) = slow_query {
            if elapsed >= threshold {
                log_slow_query(request, &trace);
            }
        }
        if trace_armed {
            if let Ok((keep_open, ok)) = outcome {
                // Only after a kept-open OK response: an ERR reply has no
                // trailing block (clients would desync), and after BYE the
                // peer has stopped reading.
                if keep_open && ok {
                    writeln!(
                        writer,
                        "TRACE id={request_id} spans={} us={elapsed_us}",
                        trace.spans.len()
                    )?;
                    for line in render_tree(&trace) {
                        writeln!(writer, "INFO {line}")?;
                    }
                    writeln!(writer, "END")?;
                }
            }
        }
        global_ring().accept(trace);
    }
    outcome.map(|(keep_open, _)| keep_open)
}

/// One structured stderr line per slow request: correlation id, tenant,
/// verb, wall time, the phase breakdown (direct children of the request
/// span), and a preview of the offending request line.
fn log_slow_query(request: &str, trace: &Trace) {
    let root = trace.spans.first().filter(|s| s.parent.is_none());
    let phases: Vec<String> = root
        .map(|root| {
            trace
                .spans
                .iter()
                .filter(|s| s.parent == Some(root.id))
                .map(|s| format!("{}:{}us", s.name, s.dur_us))
                .collect()
        })
        .unwrap_or_default();
    let preview: String = request.trim().chars().take(80).collect();
    eprintln!(
        "ontorew-serve: slow-query id={} tenant={} verb={} us={} phases={} request={:?}",
        trace.request_id,
        trace.tenant,
        trace.verb,
        trace.total_us,
        if phases.is_empty() {
            "-".to_string()
        } else {
            phases.join(",")
        },
        preview
    );
}

/// Handle one request line; returns `(keep_open, ok)` — `keep_open` is
/// false when the connection should close, `ok` is false when the reply
/// was an `ERR` line — or `Err` when the peer is gone.
fn respond(
    request: &str,
    registry: &TenantRegistry,
    connection: &mut Connection,
    shutdown: &AtomicBool,
    writer: &mut TcpStream,
) -> std::io::Result<(bool, bool)> {
    let mut ok = true;
    let service = Arc::clone(&connection.service);
    match parse_request(request) {
        Ok(Request::Prepare(query)) => {
            let prepared = service.prepare(&query);
            writeln!(
                writer,
                "OK PREPARED key={} plan={} disjuncts={} exact={} cached={}",
                prepared.key,
                prepared.plan_kind(),
                prepared.disjuncts(),
                prepared.is_exact_plan(),
                prepared.cache_hit
            )?;
        }
        Ok(Request::Explain(query)) => {
            let (prepared, dump) = service.explain(&query);
            writeln!(
                writer,
                "OK PLAN key={} plan={} disjuncts={} exact={} cached={}",
                prepared.key,
                prepared.plan_kind(),
                prepared.disjuncts(),
                prepared.is_exact_plan(),
                prepared.cache_hit
            )?;
            for info in dump.lines() {
                writeln!(writer, "INFO {info}")?;
            }
            writeln!(writer, "END")?;
        }
        Ok(Request::Query(query)) => match service.query(&query) {
            Ok(response) => {
                writeln!(
                    writer,
                    "OK ANSWERS count={} epoch={} plan={} strategy={} cache={} exact={} us={}",
                    response.answers.len(),
                    response.epoch,
                    response.plan,
                    response.provenance.strategy,
                    if response.cache_hit { "hit" } else { "miss" },
                    response.exact,
                    response.micros
                )?;
                for row in response.answers.iter() {
                    writeln!(writer, "ROW {}", encode_row(row))?;
                }
                writeln!(writer, "END")?;
            }
            Err(e) => {
                ok = false;
                writeln!(writer, "ERR {e}")?;
            }
        },
        Ok(Request::Insert(facts)) => match service.insert_facts(&facts) {
            Ok((epoch, added)) => {
                writeln!(writer, "OK INSERTED added={added} epoch={epoch}")?;
            }
            Err(e) => {
                ok = false;
                writeln!(writer, "ERR {e}")?;
            }
        },
        Ok(Request::Delete(facts)) => match service.delete_facts(&facts) {
            Ok((epoch, removed)) => {
                writeln!(writer, "OK DELETED removed={removed} epoch={epoch}")?;
            }
            Err(e) => {
                ok = false;
                writeln!(writer, "ERR {e}")?;
            }
        },
        Ok(Request::Why(fact)) => match service.explain_fact(&fact) {
            Ok(explanation) => {
                writeln!(
                    writer,
                    "OK WHY present={} steps={} epoch={} fact={}",
                    explanation.present,
                    explanation.steps.len(),
                    explanation.epoch,
                    crate::proto::format_fact(&fact)
                )?;
                write_explanation_info(writer, &explanation)?;
                writeln!(writer, "END")?;
            }
            Err(e) => {
                ok = false;
                writeln!(writer, "ERR {e}")?;
            }
        },
        Ok(Request::WhyNot(fact)) => match service.explain_fact(&fact) {
            Ok(explanation) => {
                let candidates = explanation
                    .absent
                    .as_ref()
                    .map_or(0, |why_not| why_not.candidates.len());
                writeln!(
                    writer,
                    "OK WHYNOT present={} candidates={} epoch={} fact={}",
                    explanation.present,
                    candidates,
                    explanation.epoch,
                    crate::proto::format_fact(&fact)
                )?;
                write_explanation_info(writer, &explanation)?;
                writeln!(writer, "END")?;
            }
            Err(e) => {
                ok = false;
                writeln!(writer, "ERR {e}")?;
            }
        },
        Ok(Request::TenantCreate { name, program }) => match registry.create(&name, program) {
            Ok(created) => {
                writeln!(
                    writer,
                    "OK TENANT name={} rules={} program={} tenants={}",
                    name,
                    created.program().len(),
                    created.program_fingerprint(),
                    registry.len()
                )?;
            }
            Err(e) => {
                ok = false;
                service.record_error();
                writeln!(writer, "ERR {e}")?;
            }
        },
        Ok(Request::TenantUse(name)) => match registry.get(&name) {
            Some(tenant) => {
                let snapshot = tenant.snapshot();
                connection.service = tenant;
                connection.tenant = name.clone();
                writeln!(
                    writer,
                    "OK TENANT name={} epoch={} facts={}",
                    name,
                    snapshot.epoch(),
                    snapshot.len()
                )?;
            }
            None => {
                ok = false;
                service.record_error();
                writeln!(writer, "ERR bad request: no tenant {name:?}")?;
            }
        },
        Ok(Request::TenantDrop(name)) => match registry.drop_tenant(&name) {
            Ok(()) => {
                // A connection sitting on the dropped tenant falls back to
                // the default tenant (its handle would otherwise answer
                // from a ghost store).
                if connection.tenant == name {
                    connection.service = registry.default_tenant();
                    connection.tenant = DEFAULT_TENANT.to_string();
                }
                writeln!(
                    writer,
                    "OK TENANT dropped={} tenants={}",
                    name,
                    registry.len()
                )?;
            }
            Err(e) => {
                ok = false;
                service.record_error();
                writeln!(writer, "ERR {e}")?;
            }
        },
        Ok(Request::TenantList) => {
            let rows = registry.list();
            let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
            writeln!(
                writer,
                "OK TENANTS count={} names={}",
                rows.len(),
                names.join(",")
            )?;
        }
        Ok(Request::Stats) => {
            let stats = service.stats();
            writeln!(
                writer,
                "OK STATS queries={} prepares={} inserts={} deletes={} whys={} errors={} \
                 cache_hits={} cache_misses={} cache_entries={} hit_rate={:.4} epoch={} \
                 facts={} prov_nodes={} prov_edges={} prov_bytes={} p50_us={} p99_us={} \
                 uptime_s={} tenants={} wal_bytes={} segments_on_disk={} checkpoint_epoch={} \
                 recoveries={}",
                stats.queries,
                stats.prepares,
                stats.inserts,
                stats.deletes,
                stats.whys,
                stats.errors,
                stats.cache.hits,
                stats.cache.misses,
                stats.cache.entries,
                stats.cache.hit_rate(),
                stats.epoch,
                stats.facts,
                stats.provenance.nodes,
                stats.provenance.edges,
                stats.provenance.bytes,
                stats.latency.p50_us,
                stats.latency.p99_us,
                stats.uptime_s,
                registry.len(),
                stats.durability.wal_bytes,
                stats.durability.segments_on_disk,
                stats.durability.checkpoint_epoch,
                stats.durability.recoveries
            )?;
            write_tenant_breakdown(writer, registry)?;
            writeln!(writer, "END")?;
        }
        Ok(Request::Metrics) => {
            let text = global_registry().render_prometheus();
            let families = text.matches("# TYPE ").count();
            writeln!(writer, "OK METRICS families={families}")?;
            writer.write_all(text.as_bytes())?;
            writeln!(writer, "END")?;
        }
        Ok(Request::Trace(enabled)) => {
            connection.trace = enabled;
            writeln!(writer, "OK TRACE enabled={enabled}")?;
        }
        Ok(Request::Ping) => {
            writeln!(writer, "OK PONG")?;
        }
        Ok(Request::Quit) => {
            writeln!(writer, "OK BYE")?;
            return Ok((false, true));
        }
        Ok(Request::Shutdown) => {
            writeln!(writer, "OK BYE")?;
            shutdown.store(true, Ordering::SeqCst);
            return Ok((false, true));
        }
        Err(message) => {
            ok = false;
            service.record_error();
            writeln!(writer, "ERR {message}")?;
        }
    }
    Ok((true, ok))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use ontorew_model::parse_program;
    use ontorew_storage::RelationalStore;
    use std::io::{BufRead, BufReader};

    fn start_test_server() -> ServerHandle {
        let program = parse_program("[R1] student(X) -> person(X).").unwrap();
        let mut store = RelationalStore::new();
        store.insert_fact("student", &["sara"]);
        let service = Arc::new(QueryService::new(program, store, ServiceConfig::default()));
        serve(
            service,
            ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                ..Default::default()
            },
        )
        .expect("server binds")
    }

    fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> String {
        writeln!(stream, "{req}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line
    }

    /// Read lines up to and including `END`.
    fn read_block(reader: &mut BufReader<TcpStream>) -> Vec<String> {
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let trimmed = line.trim().to_string();
            let done = trimmed == "END";
            lines.push(trimmed);
            if done {
                return lines;
            }
        }
    }

    #[test]
    fn serves_the_whole_protocol_over_tcp() {
        let handle = start_test_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        assert_eq!(
            roundtrip(&mut stream, &mut reader, "PING").trim(),
            "OK PONG"
        );

        let prepared = roundtrip(&mut stream, &mut reader, "PREPARE q(X) :- person(X)");
        assert!(prepared.starts_with("OK PREPARED key=p"), "{prepared}");
        assert!(prepared.contains("plan=hybrid"), "{prepared}");
        assert!(prepared.contains("cached=false"), "{prepared}");

        let header = roundtrip(&mut stream, &mut reader, "QUERY q(X) :- person(X)");
        assert!(
            header.contains("count=1") && header.contains("cache=hit"),
            "{header}"
        );
        assert!(
            header.contains("plan=hybrid") && header.contains("strategy=rewriting"),
            "{header}"
        );
        let mut row = String::new();
        reader.read_line(&mut row).unwrap();
        assert_eq!(row.trim(), "ROW sara");
        let mut end = String::new();
        reader.read_line(&mut end).unwrap();
        assert_eq!(end.trim(), "END");

        let inserted = roundtrip(&mut stream, &mut reader, "INSERT student(zoe)");
        assert!(
            inserted.contains("added=1") && inserted.contains("epoch=1"),
            "{inserted}"
        );

        let header = roundtrip(&mut stream, &mut reader, "QUERY q(X) :- person(X)");
        assert!(
            header.contains("count=2") && header.contains("epoch=1"),
            "{header}"
        );
        for _ in 0..3 {
            let mut skip = String::new();
            reader.read_line(&mut skip).unwrap();
        }

        let err = roundtrip(&mut stream, &mut reader, "GARBAGE");
        assert!(err.starts_with("ERR "), "{err}");

        let stats = roundtrip(&mut stream, &mut reader, "STATS");
        assert!(
            stats.contains("queries=2") && stats.contains("errors=1"),
            "{stats}"
        );
        assert!(
            stats.contains("uptime_s=") && stats.contains("tenants=1"),
            "{stats}"
        );
        // In-memory tenants report zeroed durability gauges.
        assert!(
            stats.contains("wal_bytes=0") && stats.contains("recoveries=0"),
            "{stats}"
        );
        // The header is followed by one INFO line per tenant, then END.
        let block = read_block(&mut reader);
        assert!(
            block
                .iter()
                .any(|l| l.starts_with("INFO tenant=default requests=")),
            "{block:?}"
        );
        assert_eq!(block.last().map(String::as_str), Some("END"));

        assert_eq!(roundtrip(&mut stream, &mut reader, "QUIT").trim(), "OK BYE");
        handle.shutdown();
    }

    #[test]
    fn delete_and_why_round_the_full_crud_loop_over_tcp() {
        let handle = start_test_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        // WHY of a derived fact walks the derivation down to the assertion.
        let why = roundtrip(&mut stream, &mut reader, "WHY person(sara)");
        assert!(why.starts_with("OK WHY present=true steps=2"), "{why}");
        let block = read_block(&mut reader);
        assert!(
            block
                .iter()
                .any(|l| l.contains("person(sara) derived rule=0 from student(sara)")),
            "{block:?}"
        );
        assert!(
            block.iter().any(|l| l.contains("student(sara) asserted")),
            "{block:?}"
        );

        // WHY NOT of an absent fact reports the blocked candidate rule.
        let why_not = roundtrip(&mut stream, &mut reader, "WHY NOT person(bob)");
        assert!(
            why_not.starts_with("OK WHYNOT present=false candidates=1"),
            "{why_not}"
        );
        let block = read_block(&mut reader);
        assert!(
            block.iter().any(|l| l.contains("missing=student(bob)")),
            "{block:?}"
        );

        // DELETE retracts as one epoch; the derived fact disappears with it.
        let deleted = roundtrip(&mut stream, &mut reader, "DELETE student(sara)");
        assert_eq!(deleted.trim(), "OK DELETED removed=1 epoch=1", "{deleted}");
        let header = roundtrip(&mut stream, &mut reader, "QUERY q(X) :- person(X)");
        assert!(
            header.contains("count=0") && header.contains("epoch=1"),
            "{header}"
        );
        read_block(&mut reader);
        let why_gone = roundtrip(&mut stream, &mut reader, "WHY person(sara)");
        assert!(
            why_gone.starts_with("OK WHY present=false steps=0"),
            "{why_gone}"
        );
        read_block(&mut reader);

        // Non-ground facts are rejected at the service layer.
        let bad = roundtrip(&mut stream, &mut reader, "DELETE student(X)");
        // (X parses as a constant on the wire — ground — so deleting it is a
        // no-op epoch, not an error.)
        assert!(bad.contains("removed=0"), "{bad}");

        let stats = roundtrip(&mut stream, &mut reader, "STATS");
        assert!(stats.contains("deletes=2"), "{stats}");
        assert!(stats.contains("whys=3"), "{stats}");
        assert!(stats.contains("prov_nodes="), "{stats}");
        read_block(&mut reader);
        handle.shutdown();
    }

    #[test]
    fn explain_dumps_the_plan_over_tcp() {
        let handle = start_test_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let header = roundtrip(&mut stream, &mut reader, "EXPLAIN q(X) :- person(X)");
        assert!(header.starts_with("OK PLAN key=p"), "{header}");
        assert!(header.contains("plan=hybrid"), "{header}");
        let block = read_block(&mut reader);
        assert!(
            block.iter().any(|l| l.starts_with("INFO plan: hybrid")),
            "{block:?}"
        );
        assert!(
            block.iter().any(|l| l.starts_with("INFO reason:")),
            "{block:?}"
        );
        assert_eq!(block.last().map(String::as_str), Some("END"));
        // EXPLAIN warmed the cache: the same query is a PREPARE hit.
        let prepared = roundtrip(&mut stream, &mut reader, "PREPARE q(X) :- person(X)");
        assert!(prepared.contains("cached=true"), "{prepared}");
        handle.shutdown();
    }

    #[test]
    fn tenants_are_created_used_and_dropped_over_tcp() {
        let handle = start_test_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        let created = roundtrip(
            &mut stream,
            &mut reader,
            "TENANT CREATE hr [R1] worksIn(X, D) -> employee(X).",
        );
        assert!(created.contains("name=hr"), "{created}");
        assert!(created.contains("rules=1"), "{created}");
        assert!(created.contains("tenants=2"), "{created}");

        // Switch to hr: empty store, its own ontology.
        let used = roundtrip(&mut stream, &mut reader, "TENANT USE hr");
        assert!(
            used.contains("name=hr") && used.contains("facts=0"),
            "{used}"
        );
        let inserted = roundtrip(&mut stream, &mut reader, "INSERT worksIn(ann, cs)");
        assert!(inserted.contains("added=1"), "{inserted}");
        let header = roundtrip(&mut stream, &mut reader, "QUERY q(X) :- employee(X)");
        assert!(header.contains("count=1"), "{header}");
        let block = read_block(&mut reader);
        assert!(block.contains(&"ROW ann".to_string()), "{block:?}");

        // The default tenant is untouched by hr's insert.
        let back = roundtrip(&mut stream, &mut reader, "TENANT USE default");
        assert!(back.contains("facts=1"), "{back}");
        let header = roundtrip(&mut stream, &mut reader, "QUERY q(X) :- employee(X)");
        assert!(header.contains("count=0"), "{header}");
        read_block(&mut reader);

        let listed = roundtrip(&mut stream, &mut reader, "TENANT LIST");
        assert!(
            listed.contains("count=2") && listed.contains("names=default,hr"),
            "{listed}"
        );

        let dropped = roundtrip(&mut stream, &mut reader, "TENANT DROP hr");
        assert!(
            dropped.contains("dropped=hr") && dropped.contains("tenants=1"),
            "{dropped}"
        );
        let gone = roundtrip(&mut stream, &mut reader, "TENANT USE hr");
        assert!(gone.starts_with("ERR "), "{gone}");
        let default_refused = roundtrip(&mut stream, &mut reader, "TENANT DROP default");
        assert!(default_refused.starts_with("ERR "), "{default_refused}");
        handle.shutdown();
    }

    #[test]
    fn dropping_the_current_tenant_falls_back_to_default() {
        let handle = start_test_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        roundtrip(
            &mut stream,
            &mut reader,
            "TENANT CREATE temp [R1] a(X) -> b(X).",
        );
        roundtrip(&mut stream, &mut reader, "TENANT USE temp");
        let dropped = roundtrip(&mut stream, &mut reader, "TENANT DROP temp");
        assert!(dropped.starts_with("OK TENANT"), "{dropped}");
        // Back on default: sara is visible again.
        let header = roundtrip(&mut stream, &mut reader, "QUERY q(X) :- person(X)");
        assert!(header.contains("count=1"), "{header}");
        read_block(&mut reader);
        handle.shutdown();
    }

    #[test]
    fn shutdown_request_stops_the_server() {
        let handle = start_test_server();
        let addr = handle.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        assert_eq!(
            roundtrip(&mut stream, &mut reader, "SHUTDOWN").trim(),
            "OK BYE"
        );
        handle.wait();
        assert!(handle.is_shutting_down());
        handle.shutdown();
        // The listener is gone (or refuses) shortly after.
        std::thread::sleep(Duration::from_millis(50));
        let refused = TcpStream::connect(addr)
            .map(|mut s| {
                // Accepted by OS backlog at worst; the server won't answer.
                let _ = writeln!(s, "PING");
                let mut r = BufReader::new(s);
                let mut line = String::new();
                matches!(r.read_line(&mut line), Ok(0) | Err(_))
            })
            .unwrap_or(true);
        assert!(refused, "server still answering after shutdown");
    }

    #[test]
    fn oversized_request_lines_are_rejected_not_buffered() {
        let handle = start_test_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Stream well past the cap without ever sending a newline.
        let chunk = vec![b'x'; 32 * 1024];
        for _ in 0..4 {
            if stream.write_all(&chunk).is_err() {
                break; // server already hung up
            }
        }
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(
            reply.starts_with("ERR request line exceeds"),
            "expected a line-cap rejection, got {reply:?}"
        );
        // The connection is closed afterwards.
        let mut end = String::new();
        assert!(matches!(reader.read_line(&mut end), Ok(0) | Err(_)));
        handle.shutdown();
    }

    #[test]
    fn idle_connections_are_reaped() {
        let program = parse_program("[R1] student(X) -> person(X).").unwrap();
        let service = Arc::new(QueryService::new(
            program,
            RelationalStore::new(),
            ServiceConfig::default(),
        ));
        let handle = serve(
            service,
            ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                idle_timeout: Duration::from_millis(300),
                ..Default::default()
            },
        )
        .expect("server binds");
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        // An active connection is served normally...
        assert_eq!(
            roundtrip(&mut stream, &mut reader, "PING").trim(),
            "OK PONG"
        );
        // ...then goes silent and is reaped with an explanatory error.
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "ERR idle timeout", "{line:?}");
        let mut end = String::new();
        assert!(matches!(reader.read_line(&mut end), Ok(0) | Err(_)));
        handle.shutdown();
    }

    #[test]
    fn shutdown_drains_with_no_active_connections_left() {
        let handle = start_test_server();
        let addr = handle.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        assert_eq!(
            roundtrip(&mut stream, &mut reader, "PING").trim(),
            "OK PONG"
        );
        handle.shutdown();
        // After shutdown returns, no connection is still being served.
        let mut line = String::new();
        assert!(matches!(reader.read_line(&mut line), Ok(0) | Err(_)));
    }

    #[test]
    fn metrics_exposition_has_no_duplicate_families_or_series() {
        let handle = start_test_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        // Generate some traffic so the interesting families exist.
        roundtrip(&mut stream, &mut reader, "QUERY q(X) :- person(X)");
        read_block(&mut reader);

        let header = roundtrip(&mut stream, &mut reader, "METRICS");
        assert!(header.starts_with("OK METRICS families="), "{header}");
        let block = read_block(&mut reader);
        assert_eq!(block.last().map(String::as_str), Some("END"));

        let mut families = std::collections::HashSet::new();
        let mut series = std::collections::HashSet::new();
        for line in &block {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split_whitespace().next().unwrap().to_string();
                assert!(families.insert(name.clone()), "duplicate # TYPE for {name}");
            } else if !line.starts_with('#') && *line != "END" && !line.is_empty() {
                // A series line is `name{labels} value`; the key is
                // everything before the value.
                let key = line.rsplit_once(' ').map(|(k, _)| k.to_string()).unwrap();
                assert!(series.insert(key.clone()), "duplicate series {key}");
            }
        }
        let stated: usize = header
            .trim()
            .rsplit_once('=')
            .and_then(|(_, n)| n.parse().ok())
            .unwrap();
        assert_eq!(stated, families.len(), "{header}");
        // The per-tenant per-verb request series is present...
        assert!(
            block.iter().any(|l| l.starts_with("requests_total{")
                && l.contains("tenant=\"default\"")
                && l.contains("verb=\"QUERY\"")),
            "no per-tenant QUERY series in {block:?}"
        );
        // ...as are the engine-layer families the smoke scrape relies on.
        for family in ["queries_total", "chase_rounds_total", "plan_plans_total"] {
            assert!(
                families.contains(family),
                "family {family} missing from {families:?}"
            );
        }
        handle.shutdown();
    }

    #[test]
    fn trace_toggle_dumps_span_trees_after_ok_responses() {
        let handle = start_test_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        // TRACE ON itself gets no dump (it was not traced when issued).
        assert_eq!(
            roundtrip(&mut stream, &mut reader, "TRACE ON").trim(),
            "OK TRACE enabled=true"
        );

        let header = roundtrip(&mut stream, &mut reader, "QUERY q(X) :- person(X)");
        assert!(header.starts_with("OK ANSWERS"), "{header}");
        read_block(&mut reader); // rows + END
        let trace_header = {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line
        };
        assert!(trace_header.starts_with("TRACE id="), "{trace_header}");
        assert!(trace_header.contains("spans="), "{trace_header}");
        let block = read_block(&mut reader);
        assert!(
            block
                .iter()
                .any(|l| l.contains("serve.request") && l.contains("verb=QUERY")),
            "{block:?}"
        );
        // Errors get no trailing dump — the client would desync.
        let err = roundtrip(&mut stream, &mut reader, "GARBAGE");
        assert!(err.starts_with("ERR "), "{err}");

        // TRACE OFF was issued while tracing was armed, so it is the last
        // request to carry a dump; afterwards responses are bare again.
        assert_eq!(
            roundtrip(&mut stream, &mut reader, "TRACE OFF").trim(),
            "OK TRACE enabled=false"
        );
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("TRACE id="), "{line}");
        read_block(&mut reader);
        assert_eq!(
            roundtrip(&mut stream, &mut reader, "PING").trim(),
            "OK PONG"
        );
        handle.shutdown();
    }

    #[test]
    fn slow_query_threshold_collects_traces_into_the_global_ring() {
        let program = parse_program("[R1] student(X) -> person(X).").unwrap();
        let mut store = RelationalStore::new();
        store.insert_fact("student", &["sara"]);
        let service = Arc::new(QueryService::new(program, store, ServiceConfig::default()));
        let handle = serve(
            service,
            ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                // Zero threshold: every request is slow, so every request
                // is collected and logged.
                slow_query: Some(Duration::ZERO),
                ..Default::default()
            },
        )
        .expect("server binds");
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let header = roundtrip(&mut stream, &mut reader, "QUERY q(X) :- person(X)");
        // No TRACE dump on the wire (the connection did not opt in)...
        assert!(header.starts_with("OK ANSWERS"), "{header}");
        read_block(&mut reader);
        assert_eq!(
            roundtrip(&mut stream, &mut reader, "PING").trim(),
            "OK PONG"
        );
        // ...but the trace landed in the process-global ring.
        let ring = ontorew_telemetry::global_ring().snapshot();
        assert!(
            ring.iter()
                .any(|t| t.verb == "QUERY" && t.tenant == "default" && !t.spans.is_empty()),
            "no QUERY trace in the ring ({} traces)",
            ring.len()
        );
        handle.shutdown();
    }

    #[test]
    fn concurrent_connections_are_served() {
        let handle = start_test_server();
        let addr = handle.addr();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    for _ in 0..10 {
                        let header = roundtrip(&mut stream, &mut reader, "QUERY q(X) :- person(X)");
                        assert!(header.starts_with("OK ANSWERS"), "{header}");
                        let mut line = String::new();
                        while line.trim() != "END" {
                            line.clear();
                            reader.read_line(&mut line).unwrap();
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        handle.shutdown();
    }
}
