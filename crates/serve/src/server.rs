//! The TCP front-end: a thread-pool server speaking the [`crate::proto`]
//! protocol over newline-delimited text.
//!
//! The server owns nothing but plumbing — every request is answered by the
//! shared [`QueryService`], so all concurrency guarantees (snapshot
//! isolation, cache coherence) come from the service layer, and the same
//! behavior is observable in-process. One connection is one unit of work: a
//! worker thread reads request lines until the peer disconnects, a `QUIT`,
//! or server shutdown. Reads use a short poll timeout so idle connections
//! notice shutdown promptly without a dedicated reaper thread.

use crate::pool::ThreadPool;
use crate::proto::{parse_request, Request};
use crate::service::QueryService;
use ontorew_model::prelude::*;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of the TCP server.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7411`; port 0 picks a free port
    /// (the bound address is reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads (= concurrently served connections).
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
        }
    }
}

/// A handle to a running server: its bound address and shutdown control.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    service: Arc<QueryService>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service the server answers from.
    pub fn service(&self) -> &Arc<QueryService> {
        &self.service
    }

    /// True once shutdown has been requested (by [`ServerHandle::shutdown`]
    /// or a `SHUTDOWN` request on the wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Block until shutdown is requested, polling the flag.
    pub fn wait(&self) {
        while !self.is_shutting_down() {
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Request shutdown and join the accept loop (worker threads finish
    /// their current connections as the pool drops).
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the accept loop so it observes the flag even if idle.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Start serving `service` per `config`. Returns once the listener is bound;
/// the accept loop and workers run on background threads until shutdown.
pub fn serve(service: Arc<QueryService>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let service = Arc::clone(&service);
        let workers = config.workers;
        std::thread::Builder::new()
            .name("ontorew-accept".to_string())
            .spawn(move || {
                let pool = ThreadPool::new(workers, "ontorew-serve");
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            let service = Arc::clone(&service);
                            let shutdown = Arc::clone(&shutdown);
                            pool.execute(move || handle_connection(stream, service, shutdown));
                        }
                        Err(_) => continue,
                    }
                }
                // `pool` drops here: queue closes, workers join.
            })?
    };
    Ok(ServerHandle {
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
        service,
    })
}

/// Longest accepted request line. Anything a legitimate client sends is
/// orders of magnitude smaller; without a cap, one peer streaming bytes
/// with no newline would grow the line buffer until the whole server OOMs.
const MAX_REQUEST_LINE: usize = 64 * 1024;

/// Serve one connection until EOF, `QUIT`, `SHUTDOWN`, or server shutdown.
fn handle_connection(stream: TcpStream, service: Arc<QueryService>, shutdown: Arc<AtomicBool>) {
    // A short read timeout lets idle connections poll the shutdown flag;
    // partially read lines stay buffered in `line` across poll rounds.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // Requests are accumulated as bytes and decoded per complete line:
    // unlike `read_line`, `read_until` never drops already-consumed bytes
    // when a poll timeout lands mid-way through a multi-byte UTF-8
    // character, and invalid UTF-8 becomes an `ERR` reply instead of a
    // silently closed connection.
    let mut line: Vec<u8> = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // `take` bounds how much a single read_until call may append, so
        // not even a fast sender can blow past the cap inside one call.
        let mut limited = reader.take((MAX_REQUEST_LINE + 1) as u64);
        let result = limited.read_until(b'\n', &mut line);
        reader = limited.into_inner();
        if line.len() > MAX_REQUEST_LINE {
            let _ = writeln!(writer, "ERR request line exceeds {MAX_REQUEST_LINE} bytes");
            service.record_error();
            return;
        }
        match result {
            Ok(0) => return, // EOF
            Ok(_) => {
                // (A final unterminated line is served as-is; the next read
                // reports EOF.)
                let request = match String::from_utf8(std::mem::take(&mut line)) {
                    Ok(request) => request,
                    Err(_) => {
                        service.record_error();
                        if writeln!(writer, "ERR request is not valid UTF-8").is_err() {
                            return;
                        }
                        continue;
                    }
                };
                match respond(&request, &service, &shutdown, &mut writer) {
                    Ok(keep_open) if keep_open => continue,
                    _ => return,
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue; // poll round: re-check shutdown, keep partial line
            }
            Err(_) => return,
        }
    }
}

/// Handle one request line; returns `Ok(false)` when the connection should
/// close, `Err` when the peer is gone.
fn respond(
    request: &str,
    service: &QueryService,
    shutdown: &AtomicBool,
    writer: &mut TcpStream,
) -> std::io::Result<bool> {
    if request.trim().is_empty() {
        return Ok(true); // blank lines are keep-alive noise
    }
    match parse_request(request) {
        Ok(Request::Prepare(query)) => {
            let prepared = service.prepare(&query);
            writeln!(
                writer,
                "OK PREPARED key={} disjuncts={} complete={} cached={}",
                prepared.key,
                prepared.rewriting.len(),
                prepared.rewriting.complete,
                prepared.cache_hit
            )?;
        }
        Ok(Request::Query(query)) => match service.query(&query) {
            Ok(response) => {
                writeln!(
                    writer,
                    "OK ANSWERS count={} epoch={} cache={} exact={} us={}",
                    response.answers.len(),
                    response.epoch,
                    if response.cache_hit { "hit" } else { "miss" },
                    response.exact,
                    response.micros
                )?;
                for row in response.answers.iter() {
                    let cells: Vec<String> = row
                        .iter()
                        .map(|t| match t {
                            Term::Constant(c) => crate::proto::encode_cell(c.name()),
                            other => crate::proto::encode_cell(&format!("{other}")),
                        })
                        .collect();
                    writeln!(writer, "ROW {}", cells.join(" "))?;
                }
                writeln!(writer, "END")?;
            }
            Err(e) => {
                writeln!(writer, "ERR {e}")?;
            }
        },
        Ok(Request::Insert(facts)) => match service.insert_facts(&facts) {
            Ok((epoch, added)) => {
                writeln!(writer, "OK INSERTED added={added} epoch={epoch}")?;
            }
            Err(e) => {
                writeln!(writer, "ERR {e}")?;
            }
        },
        Ok(Request::Stats) => {
            let stats = service.stats();
            writeln!(
                writer,
                "OK STATS queries={} prepares={} inserts={} errors={} cache_hits={} \
                 cache_misses={} cache_entries={} hit_rate={:.4} epoch={} facts={} \
                 p50_us={} p99_us={}",
                stats.queries,
                stats.prepares,
                stats.inserts,
                stats.errors,
                stats.cache.hits,
                stats.cache.misses,
                stats.cache.entries,
                stats.cache.hit_rate(),
                stats.epoch,
                stats.facts,
                stats.latency.p50_us,
                stats.latency.p99_us
            )?;
        }
        Ok(Request::Ping) => {
            writeln!(writer, "OK PONG")?;
        }
        Ok(Request::Quit) => {
            writeln!(writer, "OK BYE")?;
            return Ok(false);
        }
        Ok(Request::Shutdown) => {
            writeln!(writer, "OK BYE")?;
            shutdown.store(true, Ordering::SeqCst);
            return Ok(false);
        }
        Err(message) => {
            service.record_error();
            writeln!(writer, "ERR {message}")?;
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use ontorew_model::parse_program;
    use ontorew_storage::RelationalStore;
    use std::io::BufRead;

    fn start_test_server() -> ServerHandle {
        let program = parse_program("[R1] student(X) -> person(X).").unwrap();
        let mut store = RelationalStore::new();
        store.insert_fact("student", &["sara"]);
        let service = Arc::new(QueryService::new(program, store, ServiceConfig::default()));
        serve(
            service,
            ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
            },
        )
        .expect("server binds")
    }

    fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> String {
        writeln!(stream, "{req}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line
    }

    #[test]
    fn serves_the_whole_protocol_over_tcp() {
        let handle = start_test_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        assert_eq!(
            roundtrip(&mut stream, &mut reader, "PING").trim(),
            "OK PONG"
        );

        let prepared = roundtrip(&mut stream, &mut reader, "PREPARE q(X) :- person(X)");
        assert!(prepared.starts_with("OK PREPARED key=p"), "{prepared}");
        assert!(prepared.contains("cached=false"));

        let header = roundtrip(&mut stream, &mut reader, "QUERY q(X) :- person(X)");
        assert!(
            header.contains("count=1") && header.contains("cache=hit"),
            "{header}"
        );
        let mut row = String::new();
        reader.read_line(&mut row).unwrap();
        assert_eq!(row.trim(), "ROW sara");
        let mut end = String::new();
        reader.read_line(&mut end).unwrap();
        assert_eq!(end.trim(), "END");

        let inserted = roundtrip(&mut stream, &mut reader, "INSERT student(zoe)");
        assert!(
            inserted.contains("added=1") && inserted.contains("epoch=1"),
            "{inserted}"
        );

        let header = roundtrip(&mut stream, &mut reader, "QUERY q(X) :- person(X)");
        assert!(
            header.contains("count=2") && header.contains("epoch=1"),
            "{header}"
        );
        for _ in 0..3 {
            let mut skip = String::new();
            reader.read_line(&mut skip).unwrap();
        }

        let err = roundtrip(&mut stream, &mut reader, "GARBAGE");
        assert!(err.starts_with("ERR "), "{err}");

        let stats = roundtrip(&mut stream, &mut reader, "STATS");
        assert!(
            stats.contains("queries=2") && stats.contains("errors=1"),
            "{stats}"
        );

        assert_eq!(roundtrip(&mut stream, &mut reader, "QUIT").trim(), "OK BYE");
        handle.shutdown();
    }

    #[test]
    fn shutdown_request_stops_the_server() {
        let handle = start_test_server();
        let addr = handle.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        assert_eq!(
            roundtrip(&mut stream, &mut reader, "SHUTDOWN").trim(),
            "OK BYE"
        );
        handle.wait();
        assert!(handle.is_shutting_down());
        handle.shutdown();
        // The listener is gone (or refuses) shortly after.
        std::thread::sleep(Duration::from_millis(50));
        let refused = TcpStream::connect(addr)
            .map(|mut s| {
                // Accepted by OS backlog at worst; the server won't answer.
                let _ = writeln!(s, "PING");
                let mut r = BufReader::new(s);
                let mut line = String::new();
                matches!(r.read_line(&mut line), Ok(0) | Err(_))
            })
            .unwrap_or(true);
        assert!(refused, "server still answering after shutdown");
    }

    #[test]
    fn oversized_request_lines_are_rejected_not_buffered() {
        let handle = start_test_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Stream well past the cap without ever sending a newline.
        let chunk = vec![b'x'; 32 * 1024];
        for _ in 0..4 {
            if stream.write_all(&chunk).is_err() {
                break; // server already hung up
            }
        }
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(
            reply.starts_with("ERR request line exceeds"),
            "expected a line-cap rejection, got {reply:?}"
        );
        // The connection is closed afterwards.
        let mut end = String::new();
        assert!(matches!(reader.read_line(&mut end), Ok(0) | Err(_)));
        handle.shutdown();
    }

    #[test]
    fn concurrent_connections_are_served() {
        let handle = start_test_server();
        let addr = handle.addr();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    for _ in 0..10 {
                        let header = roundtrip(&mut stream, &mut reader, "QUERY q(X) :- person(X)");
                        assert!(header.starts_with("OK ANSWERS"), "{header}");
                        let mut line = String::new();
                        while line.trim() != "END" {
                            line.clear();
                            reader.read_line(&mut line).unwrap();
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        handle.shutdown();
    }
}
