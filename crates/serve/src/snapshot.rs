//! Snapshot-isolated stores: immutable epochs, atomically swapped.
//!
//! Query evaluation only needs shared access to a [`RelationalStore`], but
//! fact ingestion mutates it. Rather than a reader-writer lock over one
//! store — where every insert stalls all query traffic — the [`EpochStore`]
//! keeps the *published* store immutable behind an `Arc`: readers grab the
//! current [`Snapshot`] (an `Arc` clone, held for as long as they like) and
//! evaluate against it without any further synchronisation, while the writer
//! applies its batch to a private working copy and publishes the result as
//! the next epoch with a pointer swap.
//!
//! The guarantees, in transactional terms, are **snapshot isolation for
//! readers and serialized writers**: a reader sees exactly the facts of one
//! epoch — never a torn batch, never a moving store — and epochs are
//! totally ordered. Since PR 5 the store's relations are segmented and
//! copy-on-write, so a commit *freezes* the working store (publishing the
//! batch as `Arc`-shared segments) and the publish clone shares every
//! frozen segment by reference — commit cost scales with the batch (plus
//! the amortised size-tiered segment merges), not with the store.

use ontorew_model::prelude::*;
use ontorew_storage::RelationalStore;
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// An immutable, epoch-stamped view of the relational data. Cheap to clone
/// the `Arc` handle; the store inside never changes after publication.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    store: RelationalStore,
}

impl Snapshot {
    /// The epoch number (0 for the initial load, +1 per committed batch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The relational store of this epoch.
    pub fn store(&self) -> &RelationalStore {
        &self.store
    }

    /// Total facts in this epoch.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True if the epoch holds no facts.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

/// The epoch-swapping store: one published immutable snapshot, one private
/// working copy for the (serialized) writers.
pub struct EpochStore {
    /// The published snapshot. The `RwLock` protects only the `Arc` swap —
    /// it is held for nanoseconds, never during evaluation or mutation.
    current: RwLock<Arc<Snapshot>>,
    /// The writers' working copy: the next epoch being built. It is kept
    /// frozen between commits, so the publish clone only shares `Arc`
    /// segments — commit cost is the batch mutation plus the freeze of that
    /// batch, never a copy of the whole store.
    writer: Mutex<RelationalStore>,
}

impl EpochStore {
    /// Publish `initial` as epoch 0.
    pub fn new(initial: RelationalStore) -> Self {
        EpochStore::with_epoch(initial, 0)
    }

    /// Publish `initial` at a given starting epoch — the recovery path,
    /// where the store reconstructed from checkpoint + WAL replay resumes
    /// at the epoch it had reached before the crash.
    pub fn with_epoch(mut initial: RelationalStore, epoch: u64) -> Self {
        initial.freeze();
        EpochStore {
            current: RwLock::new(Arc::new(Snapshot {
                epoch,
                store: initial.clone(),
            })),
            writer: Mutex::new(initial),
        }
    }

    /// The current snapshot. The returned `Arc` stays valid (and immutable)
    /// for as long as the caller holds it, regardless of later commits.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read())
    }

    /// The epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.current.read().epoch
    }

    /// Apply `mutate` to the working copy and publish the result as the next
    /// epoch. Returns the new epoch number. Writers are serialized by the
    /// working-copy lock; readers are never blocked (they keep using the
    /// previous snapshot until the swap, which is a pointer store).
    ///
    /// Everything `mutate` does becomes visible *atomically*: no reader can
    /// observe a prefix of the batch. The working store is frozen after the
    /// mutation, so the publish clone shares every segment by reference —
    /// O(batch), not O(store).
    pub fn commit<F>(&self, mutate: F) -> u64
    where
        F: FnOnce(&mut RelationalStore),
    {
        self.commit_logged(|_| Ok(()), mutate)
            .expect("no-op logger cannot fail")
    }

    /// [`commit`](EpochStore::commit) with a write-ahead hook: `log` runs
    /// with the epoch about to be published, *before* the working copy is
    /// touched. If `log` fails the commit is aborted — nothing was mutated,
    /// nothing published, and the error is returned. This is the WAL
    /// discipline: a record reaches the log before its epoch can ever be
    /// observed, and an epoch that was never acknowledged leaves no trace
    /// in memory.
    pub fn commit_logged<L, F>(&self, log: L, mutate: F) -> std::io::Result<u64>
    where
        L: FnOnce(u64) -> std::io::Result<()>,
        F: FnOnce(&mut RelationalStore),
    {
        let mut working = self.writer.lock();
        let epoch = self.current.read().epoch + 1;
        log(epoch)?;
        mutate(&mut working);
        working.freeze();
        let published = Arc::new(Snapshot {
            epoch,
            store: working.clone(),
        });
        *self.current.write() = published;
        Ok(epoch)
    }

    /// Convenience: commit a batch of ground facts as one epoch. Returns
    /// the [`CommitReceipt`] describing the published epoch.
    pub fn commit_facts(&self, facts: &[Atom]) -> CommitReceipt {
        let mut added = 0usize;
        let mut total = 0usize;
        let epoch = self.commit(|store| {
            for fact in facts {
                if store.insert_atom(fact) {
                    added += 1;
                }
            }
            total = store.len();
        });
        CommitReceipt {
            epoch,
            added,
            facts: total,
        }
    }
}

/// What [`EpochStore::commit_facts`] published: the new epoch, how many of
/// the batch's facts were new, and the total facts of the published
/// snapshot. The fact total lets callers (the serving layer) hand the
/// planner a verifiable delta edge without re-reading the snapshot (which
/// could already belong to a later epoch).
#[derive(Clone, Copy, Debug)]
pub struct CommitReceipt {
    /// The newly published epoch.
    pub epoch: u64,
    /// Facts of the batch that were not already present.
    pub added: usize,
    /// Total facts in the published snapshot.
    pub facts: usize,
}

impl std::fmt::Debug for EpochStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        write!(
            f,
            "EpochStore(epoch={}, facts={})",
            snap.epoch(),
            snap.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_snapshot_is_epoch_zero() {
        let mut db = RelationalStore::new();
        db.insert_fact("r", &["a"]);
        let store = EpochStore::new(db);
        let snap = store.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.len(), 1);
        assert!(!snap.is_empty());
    }

    #[test]
    fn commits_advance_the_epoch_atomically() {
        let store = EpochStore::new(RelationalStore::new());
        let before = store.snapshot();
        let receipt = store.commit_facts(&[
            Atom::fact("pair", &["1", "a"]),
            Atom::fact("pair", &["1", "b"]),
        ]);
        assert_eq!(receipt.epoch, 1);
        assert_eq!(receipt.added, 2);
        assert_eq!(receipt.facts, 2);
        // The old snapshot is untouched; the new one has the whole batch.
        assert!(before.is_empty());
        assert_eq!(store.snapshot().len(), 2);
        assert_eq!(store.epoch(), 1);
    }

    #[test]
    fn duplicate_facts_count_as_not_added_but_still_advance_the_epoch() {
        let store = EpochStore::new(RelationalStore::new());
        store.commit_facts(&[Atom::fact("r", &["a"])]);
        let receipt = store.commit_facts(&[Atom::fact("r", &["a"])]);
        assert_eq!(receipt.epoch, 2);
        assert_eq!(receipt.added, 0);
        assert_eq!(receipt.facts, 1);
        assert_eq!(store.snapshot().len(), 1);
    }

    #[test]
    fn published_snapshots_share_segments_with_the_working_store() {
        let mut initial = RelationalStore::new();
        for i in 0..100 {
            initial.insert_fact("base", &[&format!("b{i}")]);
        }
        let store = EpochStore::new(initial);
        let epoch0 = store.snapshot();
        store.commit_facts(&[Atom::fact("base", &["extra"])]);
        let epoch1 = store.snapshot();
        // The preloaded 100 facts were frozen at construction: both epochs
        // share that segment by reference, and the old snapshot still serves.
        let p = Predicate::new("base", 1);
        let before = epoch0.store().relation(p).unwrap();
        let after = epoch1.store().relation(p).unwrap();
        assert_eq!(before.len(), 100);
        assert_eq!(after.len(), 101);
        assert!(
            after.scan().take(100).eq(before.scan()),
            "shared prefix preserved in order"
        );
    }

    #[test]
    fn held_snapshots_survive_later_commits() {
        let store = EpochStore::new(RelationalStore::new());
        store.commit_facts(&[Atom::fact("r", &["a"])]);
        let held = store.snapshot();
        for i in 0..10 {
            store.commit_facts(&[Atom::fact("r", &[format!("b{i}").as_str()])]);
        }
        assert_eq!(held.epoch(), 1);
        assert_eq!(held.len(), 1);
        assert_eq!(store.snapshot().len(), 11);
    }

    #[test]
    fn with_epoch_resumes_numbering_after_recovery() {
        let mut db = RelationalStore::new();
        db.insert_fact("r", &["a"]);
        let store = EpochStore::with_epoch(db, 41);
        assert_eq!(store.epoch(), 41);
        let receipt = store.commit_facts(&[Atom::fact("r", &["b"])]);
        assert_eq!(receipt.epoch, 42);
    }

    #[test]
    fn failed_log_hook_aborts_the_commit_without_a_trace() {
        let store = EpochStore::new(RelationalStore::new());
        store.commit_facts(&[Atom::fact("r", &["a"])]);
        let err = store.commit_logged(
            |epoch| {
                assert_eq!(epoch, 2, "log sees the epoch about to publish");
                Err(std::io::Error::other("disk on fire"))
            },
            |db| {
                db.insert_fact("r", &["b"]);
            },
        );
        assert!(err.is_err());
        // Nothing mutated, nothing published: the next commit re-uses the
        // aborted epoch number.
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.snapshot().len(), 1);
        let receipt = store.commit_facts(&[Atom::fact("r", &["c"])]);
        assert_eq!(receipt.epoch, 2);
        assert_eq!(store.snapshot().len(), 2);
    }

    #[test]
    fn concurrent_readers_see_whole_epochs_only() {
        let store = Arc::new(EpochStore::new(RelationalStore::new()));
        let writer = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..200 {
                    let tag = format!("{i}");
                    store.commit_facts(&[
                        Atom::fact("marker", &[&tag, "a"]),
                        Atom::fact("marker", &[&tag, "b"]),
                    ]);
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    let mut last_epoch = 0u64;
                    for _ in 0..500 {
                        let snap = store.snapshot();
                        assert!(snap.epoch() >= last_epoch, "epochs are monotone");
                        last_epoch = snap.epoch();
                        // Batch atomicity: every marker k present with "a"
                        // must be present with "b" — a torn batch would
                        // break the pairing.
                        let rel = snap.store().relation(Predicate::new("marker", 2));
                        if let Some(rel) = rel {
                            assert_eq!(rel.len() % 2, 0, "torn batch observed");
                        }
                        assert_eq!(snap.len() as u64, snap.epoch() * 2);
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(store.epoch(), 200);
    }
}
