//! The background compactor: checkpoints off the commit path.
//!
//! Commits only ever append to the tenant WAL — cheap and O(batch). Left
//! alone, the WAL grows without bound and recovery replay time grows with
//! it. The [`Compactor`] thread watches every durable tenant and, when a
//! tenant's WAL exceeds the configured threshold, checkpoints it: the
//! frozen store is spilled to fresh segment files (off the commit path —
//! commits keep flowing during the spill), the manifest is published, and
//! the WAL is truncated at the checkpoint. This also bounds the occasional
//! large in-memory LSM merge: the spill walks the already-frozen segments,
//! so the commit path never pays for it.
//!
//! The compactor is deliberately simple — one thread, polling — because
//! correctness never depends on it: a tenant that is never compacted just
//! has a longer WAL to replay. Every checkpoint failure is counted and
//! retried on the next sweep.

use crate::tenant::TenantRegistry;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for the [`Compactor`].
#[derive(Clone, Copy, Debug)]
pub struct CompactorConfig {
    /// Checkpoint a tenant when its WAL exceeds this many bytes.
    pub wal_threshold_bytes: u64,
    /// How often to sweep the tenant list.
    pub interval: Duration,
}

impl Default for CompactorConfig {
    fn default() -> Self {
        CompactorConfig {
            // 4 MiB of WAL ≈ tens of thousands of facts to replay: small
            // enough for sub-second recovery, large enough that steady
            // small-batch traffic is not checkpointing constantly.
            wal_threshold_bytes: 4 << 20,
            interval: Duration::from_millis(250),
        }
    }
}

/// Counters the compactor publishes (visible in server logs/tests).
#[derive(Debug, Default)]
pub struct CompactorStats {
    /// Checkpoints completed.
    pub checkpoints: AtomicU64,
    /// Checkpoint attempts that failed (retried on the next sweep).
    pub failures: AtomicU64,
}

/// Handle to the background compactor thread.
pub struct Compactor {
    stop: Arc<AtomicBool>,
    stats: Arc<CompactorStats>,
    thread: Option<JoinHandle<()>>,
}

impl Compactor {
    /// Start a compactor sweeping `registry`'s durable tenants. If the
    /// registry is not durable the thread still runs, finds no WALs over
    /// threshold, and sleeps — harmless, but callers normally gate on
    /// [`TenantRegistry::durability`].
    pub fn start(registry: Arc<TenantRegistry>, config: CompactorConfig) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(CompactorStats::default());
        let thread = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("ontorew-compactor".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        sweep(&registry, &config, &stats);
                        // Sleep in short slices so shutdown is prompt.
                        let mut remaining = config.interval;
                        while !stop.load(Ordering::Relaxed) && remaining > Duration::ZERO {
                            let slice = remaining.min(Duration::from_millis(25));
                            std::thread::sleep(slice);
                            remaining = remaining.saturating_sub(slice);
                        }
                    }
                })
                .expect("spawn compactor thread")
        };
        Compactor {
            stop,
            stats,
            thread: Some(thread),
        }
    }

    /// The compactor's counters.
    pub fn stats(&self) -> &CompactorStats {
        &self.stats
    }

    /// Signal the thread to stop and join it.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn sweep(registry: &TenantRegistry, config: &CompactorConfig, stats: &CompactorStats) {
    for service in registry.services() {
        let Some(storage) = service.durability() else {
            continue;
        };
        if storage.state().wal_bytes < config.wal_threshold_bytes {
            continue;
        }
        match service.checkpoint() {
            Ok(_) => {
                stats.checkpoints.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                stats.failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use crate::tenant::DurabilitySettings;
    use ontorew_model::prelude::*;
    use ontorew_storage::{FsyncPolicy, RelationalStore};
    use std::path::PathBuf;

    fn temp_root(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ontorew-compactor-{}-{}-{}",
            tag,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn compactor_checkpoints_when_the_wal_crosses_the_threshold() {
        let root = temp_root("threshold");
        let program = parse_program("[R1] node(X) -> seen(X).").unwrap();
        let registry = Arc::new(
            TenantRegistry::recover(
                program,
                RelationalStore::new(),
                ServiceConfig::default(),
                DurabilitySettings {
                    root: root.clone(),
                    fsync: FsyncPolicy::Off,
                },
            )
            .unwrap(),
        );
        let service = registry.default_tenant();
        let compactor = Compactor::start(
            Arc::clone(&registry),
            CompactorConfig {
                wal_threshold_bytes: 256,
                interval: Duration::from_millis(10),
            },
        );
        // Push enough commits to cross 256 bytes of WAL.
        for i in 0..50 {
            service
                .insert_facts(&[Atom::fact("node", &[format!("n{i}").as_str()])])
                .unwrap();
        }
        // Wait for at least one checkpoint.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while compactor.stats().checkpoints.load(Ordering::Relaxed) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "compactor never checkpointed"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        compactor.shutdown();
        let state = service.stats().durability;
        assert!(state.checkpoint_epoch > 0, "{state:?}");
        assert!(state.segments_on_disk > 0, "{state:?}");
        // Everything survives a recovery, including post-checkpoint commits.
        drop(registry);
        let program = parse_program("[R1] node(X) -> seen(X).").unwrap();
        let again = TenantRegistry::recover(
            program,
            RelationalStore::new(),
            ServiceConfig::default(),
            DurabilitySettings {
                root,
                fsync: FsyncPolicy::Off,
            },
        )
        .unwrap();
        assert_eq!(again.default_tenant().snapshot().len(), 50);
        assert_eq!(again.default_tenant().snapshot().epoch(), 50);
    }
}
