//! A minimal fixed-size thread pool.
//!
//! Connections are handed to the pool as boxed closures over one shared
//! `mpsc` channel; workers loop on the receiver until the pool drops the
//! sender. No work stealing, no dynamic sizing — the server's unit of work
//! is a whole connection, so a handful of long-lived workers is the right
//! shape. Everything here is plain `std` threads and channels; the only
//! lock comes from the workspace's `parking_lot` (offline stub, itself a
//! thin wrapper over `std::sync`), the same as the rest of the crate.

use parking_lot::Mutex;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of named worker threads.
pub struct ThreadPool {
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `size` workers (at least 1) named `<name>-0 ... <name>-n`.
    pub fn new(size: usize, name: &str) -> Self {
        let size = size.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only to dequeue, never while running
                        // the job.
                        let job = receiver.lock().recv();
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // all senders gone: shut down
                        }
                    })
                    .expect("spawning a pool worker failed")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Run `job` on some worker. Jobs submitted after shutdown began are
    /// dropped silently.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        if let Some(sender) = &self.sender {
            let _ = sender.send(Box::new(job));
        }
    }
}

impl Drop for ThreadPool {
    /// Closes the queue and waits for workers to finish their current jobs.
    fn drop(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_jobs_across_workers() {
        let pool = ThreadPool::new(4, "test-pool");
        assert_eq!(pool.size(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // joins workers, draining the queue
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_size_is_clamped_to_one_worker() {
        let pool = ThreadPool::new(0, "tiny");
        assert_eq!(pool.size(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.fetch_add(1, Ordering::Relaxed);
        });
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }
}
