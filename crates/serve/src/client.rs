//! A blocking client for the serve protocol.
//!
//! Used by the bench load generator, the CI smoke test and the
//! `query_server` example; kept deliberately synchronous (one in-flight
//! request per connection) because that is what the load generator wants to
//! model — per-request latency under N independent connections.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Errors surfaced by the client.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure.
    Io(std::io::Error),
    /// The server answered `ERR <message>`.
    Server(String),
    /// The server answered something the client cannot parse.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A parsed `QUERY` reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryReply {
    /// Number of answer tuples.
    pub count: usize,
    /// Epoch of the snapshot the answers came from.
    pub epoch: u64,
    /// The plan kind the server executed (`rewrite`, `chase`, `hybrid`,
    /// `besteffort`).
    pub plan: String,
    /// The strategy that actually ran (`rewriting`, `materialization`,
    /// `combined`).
    pub strategy: String,
    /// True if the plan came from the cache.
    pub cache_hit: bool,
    /// True if the answers are exactly the certain answers.
    pub exact: bool,
    /// Server-side latency, microseconds.
    pub server_us: u64,
    /// The answer rows (constants as plain strings).
    pub rows: Vec<Vec<String>>,
}

/// A parsed `EXPLAIN` reply: the header fields plus the plan dump lines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExplainReply {
    /// The header key-value fields (`key`, `plan`, `disjuncts`, `exact`,
    /// `cached`).
    pub fields: BTreeMap<String, String>,
    /// The `INFO` lines of the plan dump, in order.
    pub info: Vec<String>,
}

/// Bounded reconnect-and-retry for transient transport failures —
/// **off by default**; opt in with [`ServeClient::with_retry`].
///
/// When armed, a request that fails transiently (an I/O error, the server
/// closing the connection, or an `idle timeout` reap) is retried: the
/// client backs off exponentially with deterministic jitter, reconnects,
/// replays the connection's `TENANT USE` state, and resends the request.
/// Mutating requests (`INSERT`/`DELETE`) retried this way are
/// **at-least-once**: a commit that was applied but whose acknowledgement
/// was lost is applied again. Other server-reported `ERR` replies are
/// never retried.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retry attempts after the initial failure.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Seed of the deterministic jitter stream (an LCG), so a test or a
    /// reproduced incident backs off identically run to run.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            jitter_seed: 0x0005_eed5_eed5_eed5,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry `attempt` (0-based): the exponential step,
    /// capped, then jittered into `[50%, 100%]` so a fleet of clients
    /// recovering from the same outage does not thunder back in lockstep.
    fn delay(&self, attempt: u32, state: &mut u64) -> Duration {
        let doubled = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX));
        let capped = doubled.min(self.max_delay);
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let unit = (*state >> 11) as f64 / (1u64 << 53) as f64;
        Duration::from_secs_f64(capped.as_secs_f64() * (0.5 + unit / 2.0))
    }
}

/// True for failures a reconnect can plausibly cure.
fn is_transient(e: &ClientError) -> bool {
    match e {
        ClientError::Io(_) => true,
        ClientError::Protocol(m) => m == "server closed the connection",
        ClientError::Server(m) => m == "idle timeout",
    }
}

/// A blocking connection to an `ontorew-serve` server.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    peer: Option<std::net::SocketAddr>,
    retry: Option<RetryPolicy>,
    jitter_state: u64,
    tenant: Option<String>,
    /// Whether this connection sent `TRACE ON`: every subsequent kept-open
    /// `OK` response is followed by a trace dump block the client must
    /// drain to stay in sync.
    traced: bool,
}

impl ServeClient {
    /// Connect to `addr` (e.g. `127.0.0.1:7411`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Generous timeout so a wedged server fails the caller instead of
        // hanging it forever.
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let writer = stream.try_clone()?;
        let peer = stream.peer_addr().ok();
        Ok(ServeClient {
            reader: BufReader::new(stream),
            writer,
            peer,
            retry: None,
            jitter_state: 0,
            tenant: None,
            traced: false,
        })
    }

    /// Arm this client with a [`RetryPolicy`] (retries are off by default).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.jitter_state = policy.jitter_seed;
        self.retry = Some(policy);
        self
    }

    /// Re-establish the TCP connection and replay the `TENANT USE` state,
    /// so a retried request lands on the tenant the caller selected.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let peer = self.peer.ok_or_else(|| {
            ClientError::Protocol("cannot reconnect: peer address unknown".into())
        })?;
        let stream = TcpStream::connect(peer)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        self.writer = stream.try_clone()?;
        self.reader = BufReader::new(stream);
        if let Some(tenant) = self.tenant.clone() {
            self.tenant_use_once(&tenant)?;
        }
        // Re-arm tracing: the server's flag is per-connection. The fresh
        // connection is not yet traced, so neither replay reply carries a
        // trace block.
        if self.traced {
            self.trace_once(true)?;
        }
        Ok(())
    }

    /// Run `op`, retrying transient failures per the armed policy (none by
    /// default: the first error is final).
    fn retrying<T>(
        &mut self,
        mut op: impl FnMut(&mut Self) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut attempt = 0u32;
        loop {
            let err = match op(self) {
                Ok(value) => {
                    // A traced connection gets a trace dump block after
                    // every kept-open OK response (never after ERR); drain
                    // it here so every verb stays framed correctly.
                    if self.traced {
                        self.drain_trace_block()?;
                    }
                    return Ok(value);
                }
                Err(e) => e,
            };
            let Some(policy) = self.retry else {
                return Err(err);
            };
            if attempt >= policy.max_retries || !is_transient(&err) {
                return Err(err);
            }
            std::thread::sleep(policy.delay(attempt, &mut self.jitter_state));
            attempt += 1;
            // Reconnect best-effort: if it fails transiently the next
            // attempt fails fast on the dead stream and consumes budget;
            // a hard failure (e.g. the selected tenant no longer exists)
            // surfaces instead of silently rerouting requests.
            if let Err(e) = self.reconnect() {
                if !is_transient(&e) {
                    return Err(e);
                }
            }
        }
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        writeln!(self.writer, "{line}")?;
        Ok(())
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        Ok(line.trim_end().to_string())
    }

    fn expect_ok(&mut self, line: String) -> Result<String, ClientError> {
        if let Some(rest) = line.strip_prefix("OK ") {
            Ok(rest.to_string())
        } else if let Some(msg) = line.strip_prefix("ERR ") {
            Err(ClientError::Server(msg.to_string()))
        } else {
            Err(ClientError::Protocol(format!("unexpected reply: {line}")))
        }
    }

    /// `PING` → `PONG`.
    fn ping_once(&mut self) -> Result<(), ClientError> {
        self.send("PING")?;
        let reply = self.read_line()?;
        match self.expect_ok(reply)?.as_str() {
            "PONG" => Ok(()),
            other => Err(ClientError::Protocol(format!("expected PONG, got {other}"))),
        }
    }

    /// `PREPARE <query>` → (key, disjuncts, complete, cached).
    fn prepare_once(&mut self, query: &str) -> Result<BTreeMap<String, String>, ClientError> {
        self.send(&format!("PREPARE {query}"))?;
        let reply = self.read_line()?;
        let rest = self.expect_ok(reply)?;
        let rest = rest
            .strip_prefix("PREPARED ")
            .ok_or_else(|| ClientError::Protocol(format!("expected PREPARED, got {rest}")))?;
        Ok(parse_kv(rest))
    }

    /// `QUERY <query>` → answers plus response metadata.
    fn query_once(&mut self, query: &str) -> Result<QueryReply, ClientError> {
        self.send(&format!("QUERY {query}"))?;
        let reply = self.read_line()?;
        let rest = self.expect_ok(reply)?;
        let rest = rest
            .strip_prefix("ANSWERS ")
            .ok_or_else(|| ClientError::Protocol(format!("expected ANSWERS, got {rest}")))?;
        let kv = parse_kv(rest);
        let count: usize = field(&kv, "count")?;
        let mut rows = Vec::with_capacity(count);
        loop {
            let line = self.read_line()?;
            if line == "END" {
                break;
            }
            match line.strip_prefix("ROW") {
                Some(cells) => rows.push(crate::proto::parse_row(cells)),
                None => {
                    return Err(ClientError::Protocol(format!(
                        "expected ROW or END, got {line}"
                    )))
                }
            }
        }
        if rows.len() != count {
            return Err(ClientError::Protocol(format!(
                "header said count={count} but {} rows arrived",
                rows.len()
            )));
        }
        Ok(QueryReply {
            count,
            epoch: field(&kv, "epoch")?,
            plan: kv.get("plan").cloned().unwrap_or_default(),
            strategy: kv.get("strategy").cloned().unwrap_or_default(),
            cache_hit: kv.get("cache").map(|v| v == "hit").unwrap_or(false),
            exact: kv.get("exact").map(|v| v == "true").unwrap_or(false),
            server_us: field(&kv, "us")?,
            rows,
        })
    }

    /// `EXPLAIN <query>` → the plan header plus the dump lines.
    fn explain_once(&mut self, query: &str) -> Result<ExplainReply, ClientError> {
        self.send(&format!("EXPLAIN {query}"))?;
        let reply = self.read_line()?;
        let rest = self.expect_ok(reply)?;
        let rest = rest
            .strip_prefix("PLAN ")
            .ok_or_else(|| ClientError::Protocol(format!("expected PLAN, got {rest}")))?;
        let fields = parse_kv(rest);
        let mut info = Vec::new();
        loop {
            let line = self.read_line()?;
            if line == "END" {
                break;
            }
            match line.strip_prefix("INFO ") {
                Some(text) => info.push(text.to_string()),
                None => {
                    return Err(ClientError::Protocol(format!(
                        "expected INFO or END, got {line}"
                    )))
                }
            }
        }
        Ok(ExplainReply { fields, info })
    }

    /// `TENANT CREATE <name> <program>` → the reported fields.
    fn tenant_create_once(
        &mut self,
        name: &str,
        program: &str,
    ) -> Result<BTreeMap<String, String>, ClientError> {
        self.send(&format!("TENANT CREATE {name} {program}"))?;
        self.tenant_reply()
    }

    /// `TENANT USE <name>`: route this connection's requests to a tenant.
    fn tenant_use_once(&mut self, name: &str) -> Result<BTreeMap<String, String>, ClientError> {
        self.send(&format!("TENANT USE {name}"))?;
        self.tenant_reply()
    }

    /// `TENANT DROP <name>`.
    fn tenant_drop_once(&mut self, name: &str) -> Result<BTreeMap<String, String>, ClientError> {
        self.send(&format!("TENANT DROP {name}"))?;
        self.tenant_reply()
    }

    /// `TENANT LIST` → (count, names).
    fn tenant_list_once(&mut self) -> Result<Vec<String>, ClientError> {
        self.send("TENANT LIST")?;
        let reply = self.read_line()?;
        let rest = self.expect_ok(reply)?;
        let rest = rest
            .strip_prefix("TENANTS ")
            .ok_or_else(|| ClientError::Protocol(format!("expected TENANTS, got {rest}")))?;
        let kv = parse_kv(rest);
        Ok(kv
            .get("names")
            .map(|names| names.split(',').map(str::to_string).collect())
            .unwrap_or_default())
    }

    fn tenant_reply(&mut self) -> Result<BTreeMap<String, String>, ClientError> {
        let reply = self.read_line()?;
        let rest = self.expect_ok(reply)?;
        let rest = rest
            .strip_prefix("TENANT ")
            .ok_or_else(|| ClientError::Protocol(format!("expected TENANT, got {rest}")))?;
        Ok(parse_kv(rest))
    }

    /// `INSERT <facts>` → (added, epoch).
    fn insert_once(&mut self, facts: &str) -> Result<(usize, u64), ClientError> {
        self.send(&format!("INSERT {facts}"))?;
        let reply = self.read_line()?;
        let rest = self.expect_ok(reply)?;
        let rest = rest
            .strip_prefix("INSERTED ")
            .ok_or_else(|| ClientError::Protocol(format!("expected INSERTED, got {rest}")))?;
        let kv = parse_kv(rest);
        Ok((field(&kv, "added")?, field(&kv, "epoch")?))
    }

    /// `DELETE <facts>` → (removed, epoch).
    fn delete_once(&mut self, facts: &str) -> Result<(usize, u64), ClientError> {
        self.send(&format!("DELETE {facts}"))?;
        let reply = self.read_line()?;
        let rest = self.expect_ok(reply)?;
        let rest = rest
            .strip_prefix("DELETED ")
            .ok_or_else(|| ClientError::Protocol(format!("expected DELETED, got {rest}")))?;
        let kv = parse_kv(rest);
        Ok((field(&kv, "removed")?, field(&kv, "epoch")?))
    }

    /// `WHY <fact>` → the explanation header plus its `INFO` lines
    /// (derivation steps when present, blocked candidates when absent).
    fn why_once(&mut self, fact: &str) -> Result<ExplainReply, ClientError> {
        self.send(&format!("WHY {fact}"))?;
        self.explanation_reply("WHY ")
    }

    /// `WHY NOT <fact>` → the explanation header plus its `INFO` lines.
    fn why_not_once(&mut self, fact: &str) -> Result<ExplainReply, ClientError> {
        self.send(&format!("WHY NOT {fact}"))?;
        self.explanation_reply("WHYNOT ")
    }

    fn explanation_reply(&mut self, header: &str) -> Result<ExplainReply, ClientError> {
        let reply = self.read_line()?;
        let rest = self.expect_ok(reply)?;
        let rest = rest.strip_prefix(header).ok_or_else(|| {
            ClientError::Protocol(format!("expected {}, got {rest}", header.trim()))
        })?;
        let fields = parse_kv(rest);
        let mut info = Vec::new();
        loop {
            let line = self.read_line()?;
            if line == "END" {
                break;
            }
            match line.strip_prefix("INFO ") {
                Some(text) => info.push(text.to_string()),
                None => {
                    return Err(ClientError::Protocol(format!(
                        "expected INFO or END, got {line}"
                    )))
                }
            }
        }
        Ok(ExplainReply { fields, info })
    }

    /// `STATS` → all reported fields as a string map. The header fields
    /// keep their plain names; each per-tenant `INFO` line is folded in
    /// under `tenant.<name>.<field>` keys.
    fn stats_once(&mut self) -> Result<BTreeMap<String, String>, ClientError> {
        self.send("STATS")?;
        let reply = self.read_line()?;
        let rest = self.expect_ok(reply)?;
        let rest = rest
            .strip_prefix("STATS ")
            .ok_or_else(|| ClientError::Protocol(format!("expected STATS, got {rest}")))?;
        let mut fields = parse_kv(rest);
        loop {
            let line = self.read_line()?;
            if line == "END" {
                break;
            }
            let Some(text) = line.strip_prefix("INFO ") else {
                return Err(ClientError::Protocol(format!(
                    "expected INFO or END, got {line}"
                )));
            };
            let kv = parse_kv(text);
            if let Some(name) = kv.get("tenant").cloned() {
                for (k, v) in kv {
                    if k != "tenant" {
                        fields.insert(format!("tenant.{name}.{k}"), v);
                    }
                }
            }
        }
        Ok(fields)
    }

    /// `METRICS` → the Prometheus text exposition (without the wire
    /// framing).
    fn metrics_once(&mut self) -> Result<String, ClientError> {
        self.send("METRICS")?;
        let reply = self.read_line()?;
        let rest = self.expect_ok(reply)?;
        if !rest.starts_with("METRICS ") {
            return Err(ClientError::Protocol(format!(
                "expected METRICS, got {rest}"
            )));
        }
        let mut text = String::new();
        loop {
            let line = self.read_line()?;
            if line == "END" {
                break;
            }
            text.push_str(&line);
            text.push('\n');
        }
        Ok(text)
    }

    /// `TRACE ON|OFF` → the server-confirmed state.
    fn trace_once(&mut self, enabled: bool) -> Result<bool, ClientError> {
        self.send(if enabled { "TRACE ON" } else { "TRACE OFF" })?;
        let reply = self.read_line()?;
        let rest = self.expect_ok(reply)?;
        let rest = rest
            .strip_prefix("TRACE enabled=")
            .ok_or_else(|| ClientError::Protocol(format!("expected TRACE, got {rest}")))?;
        Ok(rest == "true")
    }

    /// Read one trace dump block (`TRACE id=...`, `INFO` lines, `END`).
    fn drain_trace_block(&mut self) -> Result<Vec<String>, ClientError> {
        let header = self.read_line()?;
        if !header.starts_with("TRACE id=") {
            return Err(ClientError::Protocol(format!(
                "expected a trace dump, got {header}"
            )));
        }
        let mut lines = vec![header];
        loop {
            let line = self.read_line()?;
            if line == "END" {
                return Ok(lines);
            }
            lines.push(line);
        }
    }

    /// `PING` → `PONG`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.retrying(|c| c.ping_once())
    }

    /// `PREPARE <query>` → (key, disjuncts, complete, cached).
    pub fn prepare(&mut self, query: &str) -> Result<BTreeMap<String, String>, ClientError> {
        self.retrying(|c| c.prepare_once(query))
    }

    /// `QUERY <query>` → answers plus response metadata.
    pub fn query(&mut self, query: &str) -> Result<QueryReply, ClientError> {
        self.retrying(|c| c.query_once(query))
    }

    /// `EXPLAIN <query>` → the plan header plus the dump lines.
    pub fn explain(&mut self, query: &str) -> Result<ExplainReply, ClientError> {
        self.retrying(|c| c.explain_once(query))
    }

    /// `TENANT CREATE <name> <program>` → the reported fields.
    pub fn tenant_create(
        &mut self,
        name: &str,
        program: &str,
    ) -> Result<BTreeMap<String, String>, ClientError> {
        self.retrying(|c| c.tenant_create_once(name, program))
    }

    /// `TENANT USE <name>`: route this connection's requests to a tenant.
    /// The selection is remembered and replayed after a retry reconnect.
    pub fn tenant_use(&mut self, name: &str) -> Result<BTreeMap<String, String>, ClientError> {
        let reply = self.retrying(|c| c.tenant_use_once(name))?;
        self.tenant = Some(name.to_string());
        Ok(reply)
    }

    /// `TENANT DROP <name>`.
    pub fn tenant_drop(&mut self, name: &str) -> Result<BTreeMap<String, String>, ClientError> {
        let reply = self.retrying(|c| c.tenant_drop_once(name))?;
        // Dropping the current tenant reroutes the connection to default
        // server-side; forget it so a reconnect does not replay a ghost.
        if self.tenant.as_deref() == Some(name) {
            self.tenant = None;
        }
        Ok(reply)
    }

    /// `TENANT LIST` → the tenant names.
    pub fn tenant_list(&mut self) -> Result<Vec<String>, ClientError> {
        self.retrying(|c| c.tenant_list_once())
    }

    /// `INSERT <facts>` → (added, epoch). With retries armed this is
    /// at-least-once: see [`RetryPolicy`].
    pub fn insert(&mut self, facts: &str) -> Result<(usize, u64), ClientError> {
        self.retrying(|c| c.insert_once(facts))
    }

    /// `DELETE <facts>` → (removed, epoch). With retries armed this is
    /// at-least-once: see [`RetryPolicy`].
    pub fn delete(&mut self, facts: &str) -> Result<(usize, u64), ClientError> {
        self.retrying(|c| c.delete_once(facts))
    }

    /// `WHY <fact>` → the explanation header plus its `INFO` lines
    /// (derivation steps when present, blocked candidates when absent).
    pub fn why(&mut self, fact: &str) -> Result<ExplainReply, ClientError> {
        self.retrying(|c| c.why_once(fact))
    }

    /// `WHY NOT <fact>` → the explanation header plus its `INFO` lines.
    pub fn why_not(&mut self, fact: &str) -> Result<ExplainReply, ClientError> {
        self.retrying(|c| c.why_not_once(fact))
    }

    /// `STATS` → all reported fields as a string map (per-tenant lines
    /// under `tenant.<name>.<field>` keys).
    pub fn stats(&mut self) -> Result<BTreeMap<String, String>, ClientError> {
        self.retrying(|c| c.stats_once())
    }

    /// `METRICS` → the server's Prometheus text exposition.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.retrying(|c| c.metrics_once())
    }

    /// `TRACE ON|OFF`: toggle per-request trace dumps on this connection.
    /// While on, the client silently drains the dump that follows every
    /// `OK` response; use the raw protocol to inspect the dumps themselves.
    pub fn trace(&mut self, enabled: bool) -> Result<bool, ClientError> {
        // While still armed, the toggle's own OK reply carries one final
        // dump, which `retrying` drains before this returns.
        let confirmed = self.retrying(|c| c.trace_once(enabled))?;
        self.traced = confirmed;
        Ok(confirmed)
    }

    /// `QUIT`: close this connection politely.
    pub fn quit(mut self) -> Result<(), ClientError> {
        self.send("QUIT")?;
        let _ = self.read_line();
        Ok(())
    }

    /// `SHUTDOWN`: stop the whole server.
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        self.send("SHUTDOWN")?;
        let _ = self.read_line();
        Ok(())
    }
}

/// Parse `k1=v1 k2=v2 ...` into a map.
fn parse_kv(text: &str) -> BTreeMap<String, String> {
    text.split_whitespace()
        .filter_map(|pair| {
            pair.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
        })
        .collect()
}

fn field<T: std::str::FromStr>(kv: &BTreeMap<String, String>, key: &str) -> Result<T, ClientError> {
    kv.get(key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("missing or malformed field {key}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve, ServerConfig};
    use crate::service::{QueryService, ServiceConfig};
    use ontorew_model::parse_program;
    use ontorew_storage::RelationalStore;
    use std::sync::Arc;

    fn start() -> crate::server::ServerHandle {
        let program = parse_program("[R1] student(X) -> person(X).").unwrap();
        let mut store = RelationalStore::new();
        store.insert_fact("student", &["sara"]);
        let service = Arc::new(QueryService::new(program, store, ServiceConfig::default()));
        serve(service, ServerConfig::default()).unwrap()
    }

    #[test]
    fn full_client_session() {
        let handle = start();
        let mut client = ServeClient::connect(handle.addr()).unwrap();
        client.ping().unwrap();

        let prepared = client.prepare("q(X) :- person(X)").unwrap();
        assert_eq!(prepared.get("cached").map(String::as_str), Some("false"));
        assert!(prepared.get("key").is_some_and(|k| k.starts_with('p')));
        assert_eq!(prepared.get("plan").map(String::as_str), Some("hybrid"));

        let reply = client.query("q(X) :- person(X)").unwrap();
        assert_eq!(reply.count, 1);
        assert!(reply.cache_hit);
        assert!(reply.exact);
        assert_eq!(reply.plan, "hybrid");
        assert_eq!(reply.strategy, "rewriting");
        assert_eq!(reply.rows, vec![vec!["sara".to_string()]]);

        let explained = client.explain("q(X) :- person(X)").unwrap();
        assert_eq!(
            explained.fields.get("plan").map(String::as_str),
            Some("hybrid")
        );
        assert!(explained.info.iter().any(|l| l.starts_with("reason:")));

        let (added, epoch) = client.insert("student(zoe); student(ada)").unwrap();
        assert_eq!((added, epoch), (2, 1));
        let reply = client.query("q(X) :- person(X)").unwrap();
        assert_eq!((reply.count, reply.epoch), (3, 1));

        // Constants with whitespace survive the ROW codec end to end.
        client.insert("nickname(zoe, \"zoe the great\")").unwrap();
        let reply = client.query("q(N) :- nickname(zoe, N)").unwrap();
        assert_eq!(reply.rows, vec![vec!["zoe the great".to_string()]]);

        let stats = client.stats().unwrap();
        assert_eq!(stats.get("inserts").map(String::as_str), Some("2"));

        // A malformed query surfaces as a server error, not a wedge.
        let err = client.query("garbage").unwrap_err();
        assert!(matches!(err, ClientError::Server(_)), "{err}");
        // The connection is still usable afterwards.
        client.ping().unwrap();
        client.quit().unwrap();
        handle.shutdown();
    }

    #[test]
    fn client_drives_delete_and_why() {
        let handle = start();
        let mut client = ServeClient::connect(handle.addr()).unwrap();

        let why = client.why("person(sara)").unwrap();
        assert_eq!(why.fields.get("present").map(String::as_str), Some("true"));
        assert_eq!(why.fields.get("steps").map(String::as_str), Some("2"));
        assert!(
            why.info
                .iter()
                .any(|l| l.contains("student(sara) asserted")),
            "{:?}",
            why.info
        );

        let why_not = client.why_not("person(bob)").unwrap();
        assert_eq!(
            why_not.fields.get("present").map(String::as_str),
            Some("false")
        );
        assert!(
            why_not
                .info
                .iter()
                .any(|l| l.contains("missing=student(bob)")),
            "{:?}",
            why_not.info
        );

        let (removed, epoch) = client.delete("student(sara)").unwrap();
        assert_eq!((removed, epoch), (1, 1));
        assert_eq!(client.query("q(X) :- person(X)").unwrap().count, 0);

        let stats = client.stats().unwrap();
        assert_eq!(stats.get("deletes").map(String::as_str), Some("1"));
        assert_eq!(stats.get("whys").map(String::as_str), Some("2"));
        client.quit().unwrap();
        handle.shutdown();
    }

    #[test]
    fn retry_reconnects_after_an_idle_reap_and_replays_the_tenant() {
        let program = parse_program("[R1] student(X) -> person(X).").unwrap();
        let service = Arc::new(QueryService::new(
            program,
            RelationalStore::new(),
            ServiceConfig::default(),
        ));
        let handle = serve(
            service,
            ServerConfig {
                idle_timeout: Duration::from_millis(250),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = ServeClient::connect(handle.addr())
            .unwrap()
            .with_retry(RetryPolicy {
                base_delay: Duration::from_millis(1),
                ..RetryPolicy::default()
            });
        client
            .tenant_create("hr", "[R1] worksIn(X, D) -> employee(X).")
            .unwrap();
        client.tenant_use("hr").unwrap();
        client.insert("worksIn(ann, cs)").unwrap();
        // Go idle long enough to be reaped, then keep using the client: the
        // retry layer reconnects and lands back on the hr tenant.
        std::thread::sleep(Duration::from_millis(700));
        let reply = client.query("q(X) :- employee(X)").unwrap();
        assert_eq!(reply.rows, vec![vec!["ann".to_string()]]);
        client.quit().unwrap();
        handle.shutdown();
    }

    #[test]
    fn retries_are_off_by_default() {
        let program = parse_program("[R1] student(X) -> person(X).").unwrap();
        let service = Arc::new(QueryService::new(
            program,
            RelationalStore::new(),
            ServiceConfig::default(),
        ));
        let handle = serve(
            service,
            ServerConfig {
                idle_timeout: Duration::from_millis(250),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = ServeClient::connect(handle.addr()).unwrap();
        client.ping().unwrap();
        std::thread::sleep(Duration::from_millis(700));
        let err = client.ping().unwrap_err();
        assert!(
            is_transient(&err),
            "reap surfaces as a transient error: {err}"
        );
        handle.shutdown();
    }

    #[test]
    fn retry_gives_up_after_the_budget() {
        let handle = start();
        let addr = handle.addr();
        let mut client = ServeClient::connect(addr).unwrap().with_retry(RetryPolicy {
            max_retries: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            ..RetryPolicy::default()
        });
        client.ping().unwrap();
        handle.shutdown();
        // The server is gone for good: a bounded number of attempts, then
        // the last transient error is returned.
        let err = client.ping().unwrap_err();
        assert!(is_transient(&err), "{err}");
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy::default();
        let mut a = policy.jitter_seed;
        let mut b = policy.jitter_seed;
        for attempt in 0..10 {
            let x = policy.delay(attempt, &mut a);
            let y = policy.delay(attempt, &mut b);
            assert_eq!(x, y, "same seed, same schedule");
            assert!(x <= policy.max_delay);
            let step = policy
                .base_delay
                .saturating_mul(1u32 << attempt.min(20))
                .min(policy.max_delay);
            assert!(x >= step / 2, "jitter stays within [50%, 100%] of the step");
        }
    }

    #[test]
    fn client_scrapes_metrics_and_toggles_tracing() {
        let handle = start();
        let mut client = ServeClient::connect(handle.addr()).unwrap();
        client.query("q(X) :- person(X)").unwrap();

        let text = client.metrics().unwrap();
        assert!(text.contains("# TYPE requests_total counter"), "{text}");
        assert!(
            text.contains("request_seconds_count{") && text.contains("tenant=\"default\""),
            "{text}"
        );

        // With tracing on, every verb still round-trips cleanly (the
        // client drains the dump blocks), including STATS and METRICS.
        assert!(client.trace(true).unwrap());
        let reply = client.query("q(X) :- person(X)").unwrap();
        assert_eq!(reply.count, 1);
        let stats = client.stats().unwrap();
        assert!(stats.contains_key("uptime_s"), "{stats:?}");
        assert!(stats.contains_key("tenant.default.requests"), "{stats:?}");
        client.metrics().unwrap();
        // Errors carry no dump and don't desync the connection.
        let err = client.query("garbage").unwrap_err();
        assert!(matches!(err, ClientError::Server(_)), "{err}");
        assert!(!client.trace(false).unwrap());
        client.ping().unwrap();
        client.quit().unwrap();
        handle.shutdown();
    }

    #[test]
    fn client_drives_the_tenant_verbs() {
        let handle = start();
        let mut client = ServeClient::connect(handle.addr()).unwrap();
        let created = client
            .tenant_create("hr", "[R1] worksIn(X, D) -> employee(X).")
            .unwrap();
        assert_eq!(created.get("name").map(String::as_str), Some("hr"));
        assert_eq!(client.tenant_list().unwrap(), vec!["default", "hr"]);

        client.tenant_use("hr").unwrap();
        client.insert("worksIn(ann, cs)").unwrap();
        let reply = client.query("q(X) :- employee(X)").unwrap();
        assert_eq!(reply.rows, vec![vec!["ann".to_string()]]);

        client.tenant_use("default").unwrap();
        assert_eq!(client.query("q(X) :- employee(X)").unwrap().count, 0);

        let dropped = client.tenant_drop("hr").unwrap();
        assert_eq!(dropped.get("tenants").map(String::as_str), Some("1"));
        let err = client.tenant_use("hr").unwrap_err();
        assert!(matches!(err, ClientError::Server(_)), "{err}");
        client.quit().unwrap();
        handle.shutdown();
    }
}
