//! A blocking client for the serve protocol.
//!
//! Used by the bench load generator, the CI smoke test and the
//! `query_server` example; kept deliberately synchronous (one in-flight
//! request per connection) because that is what the load generator wants to
//! model — per-request latency under N independent connections.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Errors surfaced by the client.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure.
    Io(std::io::Error),
    /// The server answered `ERR <message>`.
    Server(String),
    /// The server answered something the client cannot parse.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A parsed `QUERY` reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryReply {
    /// Number of answer tuples.
    pub count: usize,
    /// Epoch of the snapshot the answers came from.
    pub epoch: u64,
    /// The plan kind the server executed (`rewrite`, `chase`, `hybrid`,
    /// `besteffort`).
    pub plan: String,
    /// The strategy that actually ran (`rewriting`, `materialization`,
    /// `combined`).
    pub strategy: String,
    /// True if the plan came from the cache.
    pub cache_hit: bool,
    /// True if the answers are exactly the certain answers.
    pub exact: bool,
    /// Server-side latency, microseconds.
    pub server_us: u64,
    /// The answer rows (constants as plain strings).
    pub rows: Vec<Vec<String>>,
}

/// A parsed `EXPLAIN` reply: the header fields plus the plan dump lines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExplainReply {
    /// The header key-value fields (`key`, `plan`, `disjuncts`, `exact`,
    /// `cached`).
    pub fields: BTreeMap<String, String>,
    /// The `INFO` lines of the plan dump, in order.
    pub info: Vec<String>,
}

/// A blocking connection to an `ontorew-serve` server.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServeClient {
    /// Connect to `addr` (e.g. `127.0.0.1:7411`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Generous timeout so a wedged server fails the caller instead of
        // hanging it forever.
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let writer = stream.try_clone()?;
        Ok(ServeClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        writeln!(self.writer, "{line}")?;
        Ok(())
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        Ok(line.trim_end().to_string())
    }

    fn expect_ok(&mut self, line: String) -> Result<String, ClientError> {
        if let Some(rest) = line.strip_prefix("OK ") {
            Ok(rest.to_string())
        } else if let Some(msg) = line.strip_prefix("ERR ") {
            Err(ClientError::Server(msg.to_string()))
        } else {
            Err(ClientError::Protocol(format!("unexpected reply: {line}")))
        }
    }

    /// `PING` → `PONG`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send("PING")?;
        let reply = self.read_line()?;
        match self.expect_ok(reply)?.as_str() {
            "PONG" => Ok(()),
            other => Err(ClientError::Protocol(format!("expected PONG, got {other}"))),
        }
    }

    /// `PREPARE <query>` → (key, disjuncts, complete, cached).
    pub fn prepare(&mut self, query: &str) -> Result<BTreeMap<String, String>, ClientError> {
        self.send(&format!("PREPARE {query}"))?;
        let reply = self.read_line()?;
        let rest = self.expect_ok(reply)?;
        let rest = rest
            .strip_prefix("PREPARED ")
            .ok_or_else(|| ClientError::Protocol(format!("expected PREPARED, got {rest}")))?;
        Ok(parse_kv(rest))
    }

    /// `QUERY <query>` → answers plus response metadata.
    pub fn query(&mut self, query: &str) -> Result<QueryReply, ClientError> {
        self.send(&format!("QUERY {query}"))?;
        let reply = self.read_line()?;
        let rest = self.expect_ok(reply)?;
        let rest = rest
            .strip_prefix("ANSWERS ")
            .ok_or_else(|| ClientError::Protocol(format!("expected ANSWERS, got {rest}")))?;
        let kv = parse_kv(rest);
        let count: usize = field(&kv, "count")?;
        let mut rows = Vec::with_capacity(count);
        loop {
            let line = self.read_line()?;
            if line == "END" {
                break;
            }
            match line.strip_prefix("ROW") {
                Some(cells) => rows.push(crate::proto::parse_row(cells)),
                None => {
                    return Err(ClientError::Protocol(format!(
                        "expected ROW or END, got {line}"
                    )))
                }
            }
        }
        if rows.len() != count {
            return Err(ClientError::Protocol(format!(
                "header said count={count} but {} rows arrived",
                rows.len()
            )));
        }
        Ok(QueryReply {
            count,
            epoch: field(&kv, "epoch")?,
            plan: kv.get("plan").cloned().unwrap_or_default(),
            strategy: kv.get("strategy").cloned().unwrap_or_default(),
            cache_hit: kv.get("cache").map(|v| v == "hit").unwrap_or(false),
            exact: kv.get("exact").map(|v| v == "true").unwrap_or(false),
            server_us: field(&kv, "us")?,
            rows,
        })
    }

    /// `EXPLAIN <query>` → the plan header plus the dump lines.
    pub fn explain(&mut self, query: &str) -> Result<ExplainReply, ClientError> {
        self.send(&format!("EXPLAIN {query}"))?;
        let reply = self.read_line()?;
        let rest = self.expect_ok(reply)?;
        let rest = rest
            .strip_prefix("PLAN ")
            .ok_or_else(|| ClientError::Protocol(format!("expected PLAN, got {rest}")))?;
        let fields = parse_kv(rest);
        let mut info = Vec::new();
        loop {
            let line = self.read_line()?;
            if line == "END" {
                break;
            }
            match line.strip_prefix("INFO ") {
                Some(text) => info.push(text.to_string()),
                None => {
                    return Err(ClientError::Protocol(format!(
                        "expected INFO or END, got {line}"
                    )))
                }
            }
        }
        Ok(ExplainReply { fields, info })
    }

    /// `TENANT CREATE <name> <program>` → the reported fields.
    pub fn tenant_create(
        &mut self,
        name: &str,
        program: &str,
    ) -> Result<BTreeMap<String, String>, ClientError> {
        self.send(&format!("TENANT CREATE {name} {program}"))?;
        self.tenant_reply()
    }

    /// `TENANT USE <name>`: route this connection's requests to a tenant.
    pub fn tenant_use(&mut self, name: &str) -> Result<BTreeMap<String, String>, ClientError> {
        self.send(&format!("TENANT USE {name}"))?;
        self.tenant_reply()
    }

    /// `TENANT DROP <name>`.
    pub fn tenant_drop(&mut self, name: &str) -> Result<BTreeMap<String, String>, ClientError> {
        self.send(&format!("TENANT DROP {name}"))?;
        self.tenant_reply()
    }

    /// `TENANT LIST` → (count, names).
    pub fn tenant_list(&mut self) -> Result<Vec<String>, ClientError> {
        self.send("TENANT LIST")?;
        let reply = self.read_line()?;
        let rest = self.expect_ok(reply)?;
        let rest = rest
            .strip_prefix("TENANTS ")
            .ok_or_else(|| ClientError::Protocol(format!("expected TENANTS, got {rest}")))?;
        let kv = parse_kv(rest);
        Ok(kv
            .get("names")
            .map(|names| names.split(',').map(str::to_string).collect())
            .unwrap_or_default())
    }

    fn tenant_reply(&mut self) -> Result<BTreeMap<String, String>, ClientError> {
        let reply = self.read_line()?;
        let rest = self.expect_ok(reply)?;
        let rest = rest
            .strip_prefix("TENANT ")
            .ok_or_else(|| ClientError::Protocol(format!("expected TENANT, got {rest}")))?;
        Ok(parse_kv(rest))
    }

    /// `INSERT <facts>` → (added, epoch).
    pub fn insert(&mut self, facts: &str) -> Result<(usize, u64), ClientError> {
        self.send(&format!("INSERT {facts}"))?;
        let reply = self.read_line()?;
        let rest = self.expect_ok(reply)?;
        let rest = rest
            .strip_prefix("INSERTED ")
            .ok_or_else(|| ClientError::Protocol(format!("expected INSERTED, got {rest}")))?;
        let kv = parse_kv(rest);
        Ok((field(&kv, "added")?, field(&kv, "epoch")?))
    }

    /// `DELETE <facts>` → (removed, epoch).
    pub fn delete(&mut self, facts: &str) -> Result<(usize, u64), ClientError> {
        self.send(&format!("DELETE {facts}"))?;
        let reply = self.read_line()?;
        let rest = self.expect_ok(reply)?;
        let rest = rest
            .strip_prefix("DELETED ")
            .ok_or_else(|| ClientError::Protocol(format!("expected DELETED, got {rest}")))?;
        let kv = parse_kv(rest);
        Ok((field(&kv, "removed")?, field(&kv, "epoch")?))
    }

    /// `WHY <fact>` → the explanation header plus its `INFO` lines
    /// (derivation steps when present, blocked candidates when absent).
    pub fn why(&mut self, fact: &str) -> Result<ExplainReply, ClientError> {
        self.send(&format!("WHY {fact}"))?;
        self.explanation_reply("WHY ")
    }

    /// `WHY NOT <fact>` → the explanation header plus its `INFO` lines.
    pub fn why_not(&mut self, fact: &str) -> Result<ExplainReply, ClientError> {
        self.send(&format!("WHY NOT {fact}"))?;
        self.explanation_reply("WHYNOT ")
    }

    fn explanation_reply(&mut self, header: &str) -> Result<ExplainReply, ClientError> {
        let reply = self.read_line()?;
        let rest = self.expect_ok(reply)?;
        let rest = rest.strip_prefix(header).ok_or_else(|| {
            ClientError::Protocol(format!("expected {}, got {rest}", header.trim()))
        })?;
        let fields = parse_kv(rest);
        let mut info = Vec::new();
        loop {
            let line = self.read_line()?;
            if line == "END" {
                break;
            }
            match line.strip_prefix("INFO ") {
                Some(text) => info.push(text.to_string()),
                None => {
                    return Err(ClientError::Protocol(format!(
                        "expected INFO or END, got {line}"
                    )))
                }
            }
        }
        Ok(ExplainReply { fields, info })
    }

    /// `STATS` → all reported fields as a string map.
    pub fn stats(&mut self) -> Result<BTreeMap<String, String>, ClientError> {
        self.send("STATS")?;
        let reply = self.read_line()?;
        let rest = self.expect_ok(reply)?;
        let rest = rest
            .strip_prefix("STATS ")
            .ok_or_else(|| ClientError::Protocol(format!("expected STATS, got {rest}")))?;
        Ok(parse_kv(rest))
    }

    /// `QUIT`: close this connection politely.
    pub fn quit(mut self) -> Result<(), ClientError> {
        self.send("QUIT")?;
        let _ = self.read_line();
        Ok(())
    }

    /// `SHUTDOWN`: stop the whole server.
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        self.send("SHUTDOWN")?;
        let _ = self.read_line();
        Ok(())
    }
}

/// Parse `k1=v1 k2=v2 ...` into a map.
fn parse_kv(text: &str) -> BTreeMap<String, String> {
    text.split_whitespace()
        .filter_map(|pair| {
            pair.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
        })
        .collect()
}

fn field<T: std::str::FromStr>(kv: &BTreeMap<String, String>, key: &str) -> Result<T, ClientError> {
    kv.get(key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("missing or malformed field {key}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve, ServerConfig};
    use crate::service::{QueryService, ServiceConfig};
    use ontorew_model::parse_program;
    use ontorew_storage::RelationalStore;
    use std::sync::Arc;

    fn start() -> crate::server::ServerHandle {
        let program = parse_program("[R1] student(X) -> person(X).").unwrap();
        let mut store = RelationalStore::new();
        store.insert_fact("student", &["sara"]);
        let service = Arc::new(QueryService::new(program, store, ServiceConfig::default()));
        serve(service, ServerConfig::default()).unwrap()
    }

    #[test]
    fn full_client_session() {
        let handle = start();
        let mut client = ServeClient::connect(handle.addr()).unwrap();
        client.ping().unwrap();

        let prepared = client.prepare("q(X) :- person(X)").unwrap();
        assert_eq!(prepared.get("cached").map(String::as_str), Some("false"));
        assert!(prepared.get("key").is_some_and(|k| k.starts_with('p')));
        assert_eq!(prepared.get("plan").map(String::as_str), Some("hybrid"));

        let reply = client.query("q(X) :- person(X)").unwrap();
        assert_eq!(reply.count, 1);
        assert!(reply.cache_hit);
        assert!(reply.exact);
        assert_eq!(reply.plan, "hybrid");
        assert_eq!(reply.strategy, "rewriting");
        assert_eq!(reply.rows, vec![vec!["sara".to_string()]]);

        let explained = client.explain("q(X) :- person(X)").unwrap();
        assert_eq!(
            explained.fields.get("plan").map(String::as_str),
            Some("hybrid")
        );
        assert!(explained.info.iter().any(|l| l.starts_with("reason:")));

        let (added, epoch) = client.insert("student(zoe); student(ada)").unwrap();
        assert_eq!((added, epoch), (2, 1));
        let reply = client.query("q(X) :- person(X)").unwrap();
        assert_eq!((reply.count, reply.epoch), (3, 1));

        // Constants with whitespace survive the ROW codec end to end.
        client.insert("nickname(zoe, \"zoe the great\")").unwrap();
        let reply = client.query("q(N) :- nickname(zoe, N)").unwrap();
        assert_eq!(reply.rows, vec![vec!["zoe the great".to_string()]]);

        let stats = client.stats().unwrap();
        assert_eq!(stats.get("inserts").map(String::as_str), Some("2"));

        // A malformed query surfaces as a server error, not a wedge.
        let err = client.query("garbage").unwrap_err();
        assert!(matches!(err, ClientError::Server(_)), "{err}");
        // The connection is still usable afterwards.
        client.ping().unwrap();
        client.quit().unwrap();
        handle.shutdown();
    }

    #[test]
    fn client_drives_delete_and_why() {
        let handle = start();
        let mut client = ServeClient::connect(handle.addr()).unwrap();

        let why = client.why("person(sara)").unwrap();
        assert_eq!(why.fields.get("present").map(String::as_str), Some("true"));
        assert_eq!(why.fields.get("steps").map(String::as_str), Some("2"));
        assert!(
            why.info
                .iter()
                .any(|l| l.contains("student(sara) asserted")),
            "{:?}",
            why.info
        );

        let why_not = client.why_not("person(bob)").unwrap();
        assert_eq!(
            why_not.fields.get("present").map(String::as_str),
            Some("false")
        );
        assert!(
            why_not
                .info
                .iter()
                .any(|l| l.contains("missing=student(bob)")),
            "{:?}",
            why_not.info
        );

        let (removed, epoch) = client.delete("student(sara)").unwrap();
        assert_eq!((removed, epoch), (1, 1));
        assert_eq!(client.query("q(X) :- person(X)").unwrap().count, 0);

        let stats = client.stats().unwrap();
        assert_eq!(stats.get("deletes").map(String::as_str), Some("1"));
        assert_eq!(stats.get("whys").map(String::as_str), Some("2"));
        client.quit().unwrap();
        handle.shutdown();
    }

    #[test]
    fn client_drives_the_tenant_verbs() {
        let handle = start();
        let mut client = ServeClient::connect(handle.addr()).unwrap();
        let created = client
            .tenant_create("hr", "[R1] worksIn(X, D) -> employee(X).")
            .unwrap();
        assert_eq!(created.get("name").map(String::as_str), Some("hr"));
        assert_eq!(client.tenant_list().unwrap(), vec!["default", "hr"]);

        client.tenant_use("hr").unwrap();
        client.insert("worksIn(ann, cs)").unwrap();
        let reply = client.query("q(X) :- employee(X)").unwrap();
        assert_eq!(reply.rows, vec![vec!["ann".to_string()]]);

        client.tenant_use("default").unwrap();
        assert_eq!(client.query("q(X) :- employee(X)").unwrap().count, 0);

        let dropped = client.tenant_drop("hr").unwrap();
        assert_eq!(dropped.get("tenants").map(String::as_str), Some("1"));
        let err = client.tenant_use("hr").unwrap_err();
        assert!(matches!(err, ClientError::Server(_)), "{err}");
        client.quit().unwrap();
        handle.shutdown();
    }
}
