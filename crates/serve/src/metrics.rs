//! Per-request service metrics: counters and latency percentiles.
//!
//! The recorder keeps a fixed-size ring of recent per-request latencies
//! (micros) and derives p50/p99 on demand — O(window) with a small constant,
//! no histogram buckets to tune, and immune to unbounded growth under heavy
//! traffic. Counters are plain relaxed atomics.

use parking_lot::Mutex;
use std::sync::atomic::AtomicU64;

/// How many recent samples the latency window retains.
const LATENCY_WINDOW: usize = 16_384;

/// A ring buffer of recent latency samples.
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
    filled: bool,
}

/// Ceil-rank percentile over an ascending-sorted sample (0 when empty).
/// The single implementation behind `STATS`, the E12 experiment and the
/// `load_gen` binary, so every surface reports p50/p99 with one convention.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[idx.clamp(1, sorted.len()) - 1]
}

/// Latency summary over the recorded window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of samples the summary was computed from.
    pub samples: usize,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Maximum latency in the window, microseconds.
    pub max_us: u64,
}

/// Counters and latency window for one service instance.
pub struct ServeMetrics {
    /// `QUERY` requests served.
    pub queries: AtomicU64,
    /// `PREPARE` requests served.
    pub prepares: AtomicU64,
    /// `INSERT` requests served.
    pub inserts: AtomicU64,
    /// `DELETE` requests served (retraction epochs committed).
    pub deletes: AtomicU64,
    /// `WHY` / `WHY NOT` explanations served.
    pub whys: AtomicU64,
    /// Requests rejected with an error.
    pub errors: AtomicU64,
    latencies: Mutex<LatencyRing>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics {
            queries: AtomicU64::new(0),
            prepares: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            whys: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latencies: Mutex::new(LatencyRing {
                samples: Vec::with_capacity(1024),
                next: 0,
                filled: false,
            }),
        }
    }
}

impl ServeMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        ServeMetrics::default()
    }

    /// Record one request latency in microseconds.
    pub fn record_latency_us(&self, us: u64) {
        let mut ring = self.latencies.lock();
        if ring.filled {
            let at = ring.next;
            ring.samples[at] = us;
            ring.next = (at + 1) % LATENCY_WINDOW;
        } else {
            ring.samples.push(us);
            if ring.samples.len() == LATENCY_WINDOW {
                ring.filled = true;
                ring.next = 0;
            }
        }
    }

    /// Percentile summary of the current window.
    pub fn latency_stats(&self) -> LatencyStats {
        let mut sorted = self.latencies.lock().samples.clone();
        if sorted.is_empty() {
            return LatencyStats::default();
        }
        sorted.sort_unstable();
        LatencyStats {
            samples: sorted.len(),
            p50_us: percentile(&sorted, 0.50),
            p99_us: percentile(&sorted, 0.99),
            max_us: *sorted.last().unwrap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn empty_window_reports_zeroes() {
        let m = ServeMetrics::new();
        assert_eq!(m.latency_stats(), LatencyStats::default());
    }

    #[test]
    fn percentiles_over_a_known_distribution() {
        let m = ServeMetrics::new();
        for us in 1..=100 {
            m.record_latency_us(us);
        }
        let stats = m.latency_stats();
        assert_eq!(stats.samples, 100);
        assert_eq!(stats.p50_us, 50);
        assert_eq!(stats.p99_us, 99);
        assert_eq!(stats.max_us, 100);
    }

    #[test]
    fn window_wraps_without_growing() {
        let m = ServeMetrics::new();
        for us in 0..(LATENCY_WINDOW as u64 + 500) {
            m.record_latency_us(us);
        }
        let stats = m.latency_stats();
        assert_eq!(stats.samples, LATENCY_WINDOW);
        // The oldest 500 samples were overwritten.
        assert_eq!(stats.max_us, LATENCY_WINDOW as u64 + 499);
    }

    #[test]
    fn counters_are_independent() {
        let m = ServeMetrics::new();
        m.queries.fetch_add(3, Ordering::Relaxed);
        m.errors.fetch_add(1, Ordering::Relaxed);
        assert_eq!(m.queries.load(Ordering::Relaxed), 3);
        assert_eq!(m.prepares.load(Ordering::Relaxed), 0);
        assert_eq!(m.errors.load(Ordering::Relaxed), 1);
    }
}
