//! Per-request service metrics: counters and latency percentiles.
//!
//! Latencies land in a lock-free log2 [`Histogram`] from `ontorew-telemetry`
//! — recording is one relaxed `fetch_add` per observation and `STATS` reads
//! a near-point snapshot without blocking writers. This replaces the old
//! sort-the-window ring, whose `latency_stats` cloned and sorted 16k
//! samples *under the recording mutex* on every `STATS` call. Percentiles
//! are now rounded up to a power of two (the histogram's bucket bounds);
//! `max` stays exact. Counters are plain relaxed atomics.

use ontorew_telemetry::Histogram;
use std::sync::atomic::AtomicU64;
use std::time::Instant;

/// Ceil-rank percentile over an ascending-sorted sample (0 when empty).
/// Shared by the E12 experiment and the `load_gen` binary, which compute
/// exact percentiles over their own sample vectors.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[idx.clamp(1, sorted.len()) - 1]
}

/// Latency summary derived from the histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of recorded samples (all of them — no window).
    pub samples: usize,
    /// Median latency upper bound, microseconds (log2-bucket resolution).
    pub p50_us: u64,
    /// 99th-percentile latency upper bound, microseconds.
    pub p99_us: u64,
    /// Maximum latency ever recorded, microseconds (exact).
    pub max_us: u64,
}

/// Counters and the latency histogram for one service instance.
pub struct ServeMetrics {
    /// `QUERY` requests served.
    pub queries: AtomicU64,
    /// `PREPARE` requests served.
    pub prepares: AtomicU64,
    /// `INSERT` requests served.
    pub inserts: AtomicU64,
    /// `DELETE` requests served (retraction epochs committed).
    pub deletes: AtomicU64,
    /// `WHY` / `WHY NOT` explanations served.
    pub whys: AtomicU64,
    /// Requests rejected with an error.
    pub errors: AtomicU64,
    latencies: Histogram,
    started: Instant,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics {
            queries: AtomicU64::new(0),
            prepares: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            whys: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latencies: Histogram::new(),
            started: Instant::now(),
        }
    }
}

impl ServeMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        ServeMetrics::default()
    }

    /// Record one request latency in microseconds. Lock-free.
    pub fn record_latency_us(&self, us: u64) {
        self.latencies.observe(us);
    }

    /// Percentile summary of everything recorded so far.
    pub fn latency_stats(&self) -> LatencyStats {
        let samples = self.latencies.count() as usize;
        if samples == 0 {
            return LatencyStats::default();
        }
        LatencyStats {
            samples,
            p50_us: self.latencies.quantile(0.50),
            p99_us: self.latencies.quantile(0.99),
            max_us: self.latencies.max(),
        }
    }

    /// Seconds since this service instance was created.
    pub fn uptime_s(&self) -> u64 {
        self.started.elapsed().as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let m = ServeMetrics::new();
        assert_eq!(m.latency_stats(), LatencyStats::default());
    }

    #[test]
    fn percentiles_over_a_known_distribution() {
        let m = ServeMetrics::new();
        for us in 1..=100 {
            m.record_latency_us(us);
        }
        let stats = m.latency_stats();
        assert_eq!(stats.samples, 100);
        // Log2 buckets: the p50 rank lands in the (32, 64] bucket, so the
        // reported value is its upper bound; max stays exact and caps p99.
        assert_eq!(stats.p50_us, 64);
        assert_eq!(stats.p99_us, 100);
        assert_eq!(stats.max_us, 100);
    }

    #[test]
    fn exact_percentile_helper_is_unchanged() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn histogram_never_forgets_the_max() {
        let m = ServeMetrics::new();
        for us in 0..20_000u64 {
            m.record_latency_us(us);
        }
        let stats = m.latency_stats();
        // No window: every sample is counted and the max is exact.
        assert_eq!(stats.samples, 20_000);
        assert_eq!(stats.max_us, 19_999);
    }

    #[test]
    fn counters_are_independent() {
        let m = ServeMetrics::new();
        m.queries.fetch_add(3, Ordering::Relaxed);
        m.errors.fetch_add(1, Ordering::Relaxed);
        assert_eq!(m.queries.load(Ordering::Relaxed), 3);
        assert_eq!(m.prepares.load(Ordering::Relaxed), 0);
        assert_eq!(m.errors.load(Ordering::Relaxed), 1);
    }
}
