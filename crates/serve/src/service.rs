//! [`QueryService`]: the embeddable serving engine for one tenant.
//!
//! One `QueryService` owns an ontology (fixed for the service's lifetime, as
//! a compiled artifact cache demands) through its [`Planner`], the sharded
//! prepared-plan cache (private, or shared across tenants by the
//! [`crate::tenant::TenantRegistry`]), the epoch-swapped data store and the
//! metrics. It is entirely `&self`-based and meant to be shared behind an
//! `Arc` by any number of threads — the TCP server does exactly that, but
//! the service is just as usable in-process (the examples and benchmarks
//! drive it directly).
//!
//! The request path is the three-step pipeline the crate docs advertise:
//! **canonicalize** (fingerprint the query), **cache** (fetch or compile the
//! [`PreparedQuery`] plan), **execute** (run the plan over an immutable
//! snapshot, with chase materializations cached per epoch inside the
//! planner).

use crate::cache::{CacheConfig, CacheStats, ShardedPlanCache};
use crate::metrics::{LatencyStats, ServeMetrics};
use crate::snapshot::{EpochStore, Snapshot};
use ontorew_model::prelude::*;
use ontorew_plan::{
    explain_absent, ChaseConfig, PlanKind, Planner, PlannerConfig, PreparedQuery, Provenance,
    WhyNot, WhyStep,
};
use ontorew_rewrite::fingerprint::query_identity;
use ontorew_rewrite::{fingerprint_program, PreparedKey, ProgramFingerprint, RewriteConfig};
use ontorew_storage::persist::{TenantStorage, TenantStorageState, WalOpKind, WalRecord};
use ontorew_storage::{AnswerSet, RelationalStore};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of a [`QueryService`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceConfig {
    /// Rewriting engine limits used when compiling uncached plans. `None`
    /// (the default) uses the size-aware `RewriteConfig::for_program`
    /// heuristic.
    pub rewrite: Option<RewriteConfig>,
    /// Prepared-plan cache shape (ignored by services attached to a shared
    /// cache).
    pub cache: CacheConfig,
}

/// The result of preparing a query (compiling it to a cached plan).
#[derive(Clone)]
pub struct Prepared {
    /// The cache key the plan is stored under.
    pub key: PreparedKey,
    /// The compiled plan.
    pub prepared: Arc<PreparedQuery>,
    /// True if the plan was already cached.
    pub cache_hit: bool,
}

impl Prepared {
    /// The kind of the compiled plan (part of how the cache entry is
    /// reported on the wire: `key=<fp> plan=<kind>`).
    pub fn plan_kind(&self) -> PlanKind {
        self.prepared.plan().kind()
    }

    /// Total rewriting fan-out of the plan (0 for pure chase plans).
    pub fn disjuncts(&self) -> usize {
        self.prepared.plan().disjuncts()
    }

    /// True when the plan guarantees exact certain answers (perfect
    /// rewriting or terminating chase — hybrid plans qualify even when
    /// their rewriting was budget-cut, because execution falls back to the
    /// terminating materialization). Delegates to
    /// [`PreparedQuery::guarantees_exact`].
    pub fn is_exact_plan(&self) -> bool {
        self.prepared.guarantees_exact()
    }
}

/// The result of answering a query.
pub struct QueryResponse {
    /// The answers, evaluated over exactly one snapshot.
    pub answers: AnswerSet,
    /// The epoch of the snapshot the answers came from.
    pub epoch: u64,
    /// The cache key of the plan that was executed.
    pub key: PreparedKey,
    /// The kind of the executed plan.
    pub plan: PlanKind,
    /// True if the plan came from the cache (no compilation ran).
    pub cache_hit: bool,
    /// True if the answers are exactly the certain answers; false means a
    /// sound approximation from a budget-bounded run.
    pub exact: bool,
    /// The full provenance report of the plan execution (strategy taken,
    /// reason, timings, materialization cache state).
    pub provenance: Provenance,
    /// End-to-end service time for this request, microseconds.
    pub micros: u64,
}

/// The result of a `WHY` / `WHY NOT` explanation request. One shape serves
/// both verbs: a present fact carries its derivation steps (target first), an
/// absent fact carries the blocked-candidate analysis — whichever verb the
/// client used, it learns the truth about the snapshot.
#[derive(Clone, Debug)]
pub struct FactExplanation {
    /// The epoch of the snapshot the explanation describes.
    pub epoch: u64,
    /// True when the fact is in the materialized model of that snapshot
    /// (asserted or derived).
    pub present: bool,
    /// Derivation steps, target first (empty when the fact is absent).
    pub steps: Vec<WhyStep>,
    /// Why the fact is absent: per-rule candidates with their blocked
    /// premises (`None` when the fact is present).
    pub absent: Option<WhyNot>,
    /// End-to-end service time for this request, microseconds.
    pub micros: u64,
}

/// Derivation-graph footprint of the current epoch's cached materialization
/// (all zero when no materialization is cached for the epoch).
#[derive(Clone, Copy, Debug, Default)]
pub struct ProvenanceStats {
    /// Alive fact nodes in the derivation graph.
    pub nodes: usize,
    /// Derivation edges (fired + witness).
    pub edges: usize,
    /// Rough heap footprint of the graph, bytes.
    pub bytes: usize,
}

/// A point-in-time summary of service state and counters.
#[derive(Clone, Copy, Debug)]
pub struct ServiceStats {
    /// `QUERY` requests served.
    pub queries: u64,
    /// `PREPARE`/`EXPLAIN` requests served.
    pub prepares: u64,
    /// `INSERT` requests served.
    pub inserts: u64,
    /// `DELETE` requests served (retraction epochs committed).
    pub deletes: u64,
    /// `WHY` / `WHY NOT` explanations served.
    pub whys: u64,
    /// Requests rejected with an error.
    pub errors: u64,
    /// Cache counters (of the plan cache, which may be shared across
    /// tenants).
    pub cache: CacheStats,
    /// Latency percentiles over the recent window.
    pub latency: LatencyStats,
    /// Currently published epoch.
    pub epoch: u64,
    /// Facts in the current epoch.
    pub facts: usize,
    /// Derivation-graph footprint of the epoch's cached materialization.
    pub provenance: ProvenanceStats,
    /// Durable-state gauges (all zero for an in-memory service): WAL size,
    /// manifest-referenced segment files, recoveries survived.
    pub durability: TenantStorageState,
    /// Seconds since this service instance was created.
    pub uptime_s: u64,
}

/// Errors a service request can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The request is malformed at the service level (non-ground insert,
    /// bad tenant name, unknown tenant, ...) — reported rather than
    /// silently ignored.
    BadRequest(String),
    /// The request was valid but could not be made durable (WAL append
    /// failed). Nothing was committed; the client may retry.
    Unavailable(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServiceError::Unavailable(msg) => write!(f, "unavailable: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The concurrent query-answering service for one ontology. See the module
/// docs.
pub struct QueryService {
    planner: Planner,
    program_fp: ProgramFingerprint,
    config: ServiceConfig,
    cache: Arc<ShardedPlanCache>,
    store: EpochStore,
    metrics: ServeMetrics,
    /// Disambiguates this service's data versions inside the planner's
    /// materialization cache when the plan cache (and hence prepared plans,
    /// for identical programs) is shared across tenants: the version token
    /// is `tenant_tag << 32 | epoch`.
    tenant_tag: u64,
    /// The durable backing of this tenant, when serving from a data
    /// directory: every commit write-ahead-logs through it before
    /// publishing. `None` for a purely in-memory service.
    durability: Option<Arc<TenantStorage>>,
}

impl QueryService {
    /// Build a stand-alone service for `program` with `initial` data as
    /// epoch 0 and a private plan cache.
    pub fn new(program: TgdProgram, initial: RelationalStore, config: ServiceConfig) -> Self {
        let cache = Arc::new(ShardedPlanCache::new(config.cache));
        QueryService::with_shared_cache(program, initial, config, cache, 0)
    }

    /// Build a service that shares `cache` with other tenants. `tenant_tag`
    /// must be unique per service sharing the cache (the tenant registry
    /// assigns it) and below 2^32.
    pub fn with_shared_cache(
        program: TgdProgram,
        initial: RelationalStore,
        config: ServiceConfig,
        cache: Arc<ShardedPlanCache>,
        tenant_tag: u64,
    ) -> Self {
        QueryService::durable(program, initial, 0, config, cache, tenant_tag, None)
    }

    /// Build a service backed by durable storage, resuming at `epoch` (the
    /// recovery path — `epoch` is what checkpoint + WAL replay reached; 0
    /// for a freshly created tenant). When `durability` is `Some`, every
    /// `INSERT`/`DELETE` epoch is write-ahead-logged through it before
    /// publication.
    ///
    /// Cached chase materializations are *not* persisted: after recovery
    /// the first chase-plan query materializes from scratch and later
    /// epochs resume the incremental/DRed paths (see the planner docs).
    #[allow(clippy::too_many_arguments)]
    pub fn durable(
        program: TgdProgram,
        initial: RelationalStore,
        epoch: u64,
        config: ServiceConfig,
        cache: Arc<ShardedPlanCache>,
        tenant_tag: u64,
        durability: Option<Arc<TenantStorage>>,
    ) -> Self {
        let program_fp = fingerprint_program(&program);
        // The serving layer always tracks provenance: `WHY` explanations
        // walk the derivation graph, and `DELETE` repairs materializations
        // with DRed, which needs the graph of the cached ancestor. Embedders
        // that want the leaner chase can use the planner directly.
        let planner = Planner::with_config(
            program,
            PlannerConfig {
                rewrite: config.rewrite,
                chase: ChaseConfig::default().with_provenance(true),
                ..PlannerConfig::default()
            },
        );
        QueryService {
            planner,
            program_fp,
            config,
            cache,
            store: EpochStore::with_epoch(initial, epoch),
            metrics: ServeMetrics::new(),
            tenant_tag,
            durability,
        }
    }

    /// The ontology this service answers under.
    pub fn program(&self) -> &TgdProgram {
        self.planner.program()
    }

    /// The configuration this service was built with (the tenant registry
    /// reuses it for tenants created around an existing service).
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// The planner compiling this service's plans.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// The fingerprint of the ontology (half of every cache key, and the
    /// tenant registry's notion of program identity).
    pub fn program_fingerprint(&self) -> ProgramFingerprint {
        self.program_fp
    }

    /// The plan cache this service reads through (possibly shared).
    pub fn cache(&self) -> &Arc<ShardedPlanCache> {
        &self.cache
    }

    /// The current data snapshot (for direct evaluation by embedders).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.store.snapshot()
    }

    /// The cache key `query` resolves to under this service's program,
    /// along with the canonical text that confirms cache hits (the 64-bit
    /// fingerprint pair alone is not collision-resistant).
    fn identity_of(&self, query: &ConjunctiveQuery) -> (PreparedKey, String) {
        let (canonical, fingerprint) = query_identity(query);
        (
            PreparedKey {
                program: self.program_fp,
                query: fingerprint,
            },
            canonical,
        )
    }

    /// The cache key `query` resolves to under this service's program.
    pub fn key_of(&self, query: &ConjunctiveQuery) -> PreparedKey {
        self.identity_of(query).0
    }

    /// The version token executions run under: the current epoch, tagged by
    /// tenant so shared planners never mix materializations across tenants.
    fn version_of(&self, epoch: u64) -> u64 {
        (self.tenant_tag << 32) | epoch
    }

    /// Compile `query` into its plan, caching the artifact. Repeat
    /// preparations (of this query or any α-renamed / atom-permuted variant)
    /// are cache hits.
    pub fn prepare(&self, query: &ConjunctiveQuery) -> Prepared {
        let start = Instant::now();
        let (key, canonical) = self.identity_of(query);
        let (prepared, cache_hit) = self
            .cache
            .get_or_compute(key, &canonical, || self.planner.prepare(query));
        self.metrics.prepares.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .record_latency_us(start.elapsed().as_micros() as u64);
        Prepared {
            key,
            prepared,
            cache_hit,
        }
    }

    /// The `EXPLAIN` entry point: fetch or compile the plan (cached like
    /// `prepare`) and return it together with its human-readable dump. The
    /// dump is version-aware — it reports the cached-materialization state
    /// and the cost model's per-strategy estimates against the current
    /// snapshot, so operators see the numbers the executor would decide
    /// with.
    pub fn explain(&self, query: &ConjunctiveQuery) -> (Prepared, String) {
        let prepared = self.prepare(query);
        let snapshot = self.store.snapshot();
        let dump = prepared
            .prepared
            .explain_versioned(snapshot.store(), self.version_of(snapshot.epoch()));
        (prepared, dump)
    }

    /// Answer `query`: fetch or compile its plan, then execute it over the
    /// current snapshot. The entire evaluation runs against one immutable
    /// epoch — concurrent inserts are invisible until the next request —
    /// and chase materializations are cached per (tenant, epoch) inside the
    /// planner.
    pub fn query(&self, query: &ConjunctiveQuery) -> Result<QueryResponse, ServiceError> {
        let start = Instant::now();
        let (key, canonical) = self.identity_of(query);
        let (prepared, cache_hit) = self
            .cache
            .get_or_compute(key, &canonical, || self.planner.prepare(query));
        let snapshot = self.store.snapshot();
        let execution =
            prepared.execute_versioned(snapshot.store(), self.version_of(snapshot.epoch()));
        let micros = start.elapsed().as_micros() as u64;
        self.metrics.queries.fetch_add(1, Ordering::Relaxed);
        self.metrics.record_latency_us(micros);
        let registry = ontorew_telemetry::global_registry();
        registry
            .counter("queries_total", "QUERY requests served.", &[])
            .inc();
        registry
            .counter(
                if cache_hit {
                    "plan_cache_hits_total"
                } else {
                    "plan_cache_misses_total"
                },
                "Plan cache lookups, by outcome.",
                &[],
            )
            .inc();
        Ok(QueryResponse {
            answers: execution.answers,
            epoch: snapshot.epoch(),
            key,
            plan: prepared.plan().kind(),
            cache_hit,
            exact: execution.provenance.exact,
            provenance: execution.provenance,
            micros,
        })
    }

    /// Ingest a batch of ground facts as one new epoch. The whole batch
    /// becomes visible atomically. Returns `(new epoch, facts added)`.
    ///
    /// The batch is also threaded through to the planner as a delta edge
    /// between the two (tenant-tagged) data versions, so a chase-plan
    /// `QUERY` right after an `INSERT` extends the previous epoch's cached
    /// materialization incrementally — O(closure of the batch) — instead of
    /// re-chasing the whole store.
    pub fn insert_facts(&self, facts: &[Atom]) -> Result<(u64, usize), ServiceError> {
        for fact in facts {
            if !fact.is_ground() {
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::BadRequest(format!(
                    "fact {fact} contains a variable"
                )));
            }
        }
        let mut added = 0usize;
        let mut total = 0usize;
        let epoch = self
            .store
            .commit_logged(
                |epoch| self.log_epoch(epoch, WalOpKind::Insert, facts),
                |store| {
                    for fact in facts {
                        if store.insert_atom(fact) {
                            added += 1;
                        }
                    }
                    total = store.len();
                },
            )
            .map_err(|e| self.not_durable(e))?;
        self.planner.record_delta(
            self.version_of(epoch - 1),
            self.version_of(epoch),
            facts,
            total,
        );
        self.metrics.inserts.fetch_add(1, Ordering::Relaxed);
        Ok((epoch, added))
    }

    /// Retract a batch of ground facts as one new epoch. The whole batch
    /// disappears atomically; held snapshots of earlier epochs are
    /// untouched. Returns `(new epoch, facts actually removed)` — facts that
    /// were not present count as not removed, but the epoch still advances
    /// (mirroring how duplicate inserts behave).
    ///
    /// The batch is threaded through to the planner as a **delete** edge, so
    /// a chase-plan `QUERY` right after a `DELETE` repairs the previous
    /// epoch's cached materialization with DRed (delete-and-rederive over
    /// the derivation graph) — O(affected derivations) — instead of
    /// re-chasing the whole store.
    pub fn delete_facts(&self, facts: &[Atom]) -> Result<(u64, usize), ServiceError> {
        for fact in facts {
            if !fact.is_ground() {
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::BadRequest(format!(
                    "fact {fact} contains a variable"
                )));
            }
        }
        let mut removed = 0usize;
        let mut total = 0usize;
        let epoch = self
            .store
            .commit_logged(
                |epoch| self.log_epoch(epoch, WalOpKind::Delete, facts),
                |store| {
                    for fact in facts {
                        if store.remove_atom(fact) {
                            removed += 1;
                        }
                    }
                    total = store.len();
                },
            )
            .map_err(|e| self.not_durable(e))?;
        self.planner.record_retraction(
            self.version_of(epoch - 1),
            self.version_of(epoch),
            facts,
            total,
        );
        self.metrics.deletes.fetch_add(1, Ordering::Relaxed);
        Ok((epoch, removed))
    }

    /// Explain `fact` against the current snapshot's materialized model:
    /// derivation steps when it is present, blocked candidates when it is
    /// absent. Serves both `WHY` and `WHY NOT` (the verbs differ only in
    /// which outcome the client expected).
    ///
    /// Materializes the snapshot if no cached materialization exists yet
    /// (same per-version cache as `QUERY`, so a warm epoch explains in
    /// microseconds).
    pub fn explain_fact(&self, fact: &Atom) -> Result<FactExplanation, ServiceError> {
        let start = Instant::now();
        if !fact.is_ground() {
            self.metrics.errors.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::BadRequest(format!(
                "fact {fact} contains a variable"
            )));
        }
        let snapshot = self.store.snapshot();
        let (materialization, _cached) = self
            .planner
            .materialize(snapshot.store(), Some(self.version_of(snapshot.epoch())));
        let present = materialization.instance().contains(fact);
        let steps = if present {
            materialization
                .provenance()
                .and_then(|graph| graph.why(fact))
                .unwrap_or_default()
        } else {
            Vec::new()
        };
        let absent = (!present)
            .then(|| explain_absent(self.planner.program(), materialization.instance(), fact));
        let micros = start.elapsed().as_micros() as u64;
        self.metrics.whys.fetch_add(1, Ordering::Relaxed);
        self.metrics.record_latency_us(micros);
        Ok(FactExplanation {
            epoch: snapshot.epoch(),
            present,
            steps,
            absent,
            micros,
        })
    }

    /// The write-ahead hook `commit_logged` runs before publishing an
    /// epoch: a no-op for in-memory services, a WAL append for durable
    /// ones.
    fn log_epoch(&self, epoch: u64, kind: WalOpKind, facts: &[Atom]) -> std::io::Result<()> {
        match &self.durability {
            Some(storage) => storage.log_commit(&WalRecord {
                epoch,
                kind,
                facts: facts.to_vec(),
            }),
            None => Ok(()),
        }
    }

    fn not_durable(&self, e: std::io::Error) -> ServiceError {
        self.metrics.errors.fetch_add(1, Ordering::Relaxed);
        ServiceError::Unavailable(format!("commit not durable: {e}"))
    }

    /// The durable backing of this tenant, if any (the compactor and the
    /// registry's flush path go through this).
    pub fn durability(&self) -> Option<&Arc<TenantStorage>> {
        self.durability.as_ref()
    }

    /// Checkpoint the current snapshot to durable storage: spill segments,
    /// publish the manifest, truncate the WAL. `Ok(None)` for in-memory
    /// services. Runs off the commit path (commits block only for the
    /// manifest publish + WAL truncation).
    pub fn checkpoint(&self) -> std::io::Result<Option<TenantStorageState>> {
        let Some(storage) = &self.durability else {
            return Ok(None);
        };
        let snapshot = self.store.snapshot();
        storage
            .checkpoint(snapshot.store(), snapshot.epoch())
            .map(Some)
    }

    /// Force this tenant's WAL to stable storage regardless of fsync
    /// policy (graceful shutdown). No-op for in-memory services.
    pub fn sync_wal(&self) -> std::io::Result<()> {
        match &self.durability {
            Some(storage) => storage.sync(),
            None => Ok(()),
        }
    }

    /// Count one protocol-level error (bad request line etc.) so it shows in
    /// `STATS`.
    pub fn record_error(&self) {
        self.metrics.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// `DELETE` requests this service has served (the tenant registry
    /// surfaces this as the per-tenant retraction counter).
    pub fn retractions(&self) -> u64 {
        self.metrics.deletes.load(Ordering::Relaxed)
    }

    /// Current counters, cache statistics and latency percentiles.
    pub fn stats(&self) -> ServiceStats {
        let snapshot = self.store.snapshot();
        // Peek (never compute) the epoch's cached materialization for the
        // derivation-graph footprint — STATS must stay cheap.
        let provenance = self
            .planner
            .cached_materialization(self.version_of(snapshot.epoch()), snapshot.len())
            .and_then(|m| {
                m.provenance().map(|graph| ProvenanceStats {
                    nodes: graph.node_count(),
                    edges: graph.edge_count(),
                    bytes: graph.bytes_estimate(),
                })
            })
            .unwrap_or_default();
        ServiceStats {
            queries: self.metrics.queries.load(Ordering::Relaxed),
            prepares: self.metrics.prepares.load(Ordering::Relaxed),
            inserts: self.metrics.inserts.load(Ordering::Relaxed),
            deletes: self.metrics.deletes.load(Ordering::Relaxed),
            whys: self.metrics.whys.load(Ordering::Relaxed),
            errors: self.metrics.errors.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            latency: self.metrics.latency_stats(),
            epoch: snapshot.epoch(),
            facts: snapshot.len(),
            provenance,
            durability: self
                .durability
                .as_ref()
                .map(|storage| storage.state())
                .unwrap_or_default(),
            uptime_s: self.metrics.uptime_s(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::{parse_program, parse_query};
    use ontorew_plan::StrategyTaken;

    fn university_service() -> QueryService {
        let program = ontorew_core::examples::university_ontology();
        let mut store = RelationalStore::new();
        store.insert_fact("professor", &["alice"]);
        store.insert_fact("teaches", &["alice", "db101"]);
        store.insert_fact("attends", &["sara", "db101"]);
        store.insert_fact("student", &["sara"]);
        QueryService::new(program, store, ServiceConfig::default())
    }

    #[test]
    fn query_answers_match_answer_by_rewriting() {
        let service = university_service();
        let q = parse_query("q(X) :- person(X)").unwrap();
        let served = service.query(&q).unwrap();
        let direct = ontorew_rewrite::answer_by_rewriting(
            service.program(),
            &q,
            service.snapshot().store(),
            &RewriteConfig::default(),
        );
        assert_eq!(served.answers, direct.answers);
        assert!(served.exact);
        assert_eq!(served.epoch, 0);
        // The university ontology satisfies both guarantees: hybrid plan,
        // rewriting strategy (narrow fan-out).
        assert_eq!(served.plan, PlanKind::Hybrid);
        assert_eq!(served.provenance.strategy, StrategyTaken::Rewriting);
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let service = university_service();
        let q = parse_query("q(X) :- person(X)").unwrap();
        assert!(!service.query(&q).unwrap().cache_hit);
        assert!(service.query(&q).unwrap().cache_hit);
        // An α-renamed, atom-permuted variant also hits.
        let v = parse_query("people(Z) :- person(Z)").unwrap();
        assert!(service.query(&v).unwrap().cache_hit);
        let stats = service.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.cache.hits, 2);
    }

    #[test]
    fn prepare_then_query_skips_compilation() {
        let service = university_service();
        let q = parse_query("q(T) :- teaches(T, C), attends(S, C)").unwrap();
        let prepared = service.prepare(&q);
        assert!(!prepared.cache_hit);
        assert_eq!(prepared.plan_kind(), PlanKind::Hybrid);
        assert!(prepared.disjuncts() >= 1);
        assert!(prepared.is_exact_plan());
        let response = service.query(&q).unwrap();
        assert!(response.cache_hit);
        assert_eq!(response.key, prepared.key);
        assert!(response.answers.contains_constants(&["alice"]));
    }

    #[test]
    fn explain_reports_the_plan() {
        let service = university_service();
        let q = parse_query("q(X) :- person(X)").unwrap();
        let (prepared, dump) = service.explain(&q);
        assert_eq!(prepared.plan_kind(), PlanKind::Hybrid);
        assert!(dump.contains("plan: hybrid"), "{dump}");
        assert!(dump.contains("reason:"), "{dump}");
        // The versioned dump carries the cost model's estimates for the
        // current snapshot.
        assert!(dump.contains("cost model: join strategy="), "{dump}");
        assert!(dump.contains("cost model: estimated rows="), "{dump}");
        assert!(dump.contains("cached materialization:"), "{dump}");
        // EXPLAIN warms the cache like PREPARE does.
        assert!(service.query(&q).unwrap().cache_hit);
    }

    #[test]
    fn inserts_are_visible_to_later_queries_only() {
        let service = university_service();
        let q = parse_query("q(X) :- person(X)").unwrap();
        let before = service.query(&q).unwrap();
        let (epoch, added) = service
            .insert_facts(&[Atom::fact("student", &["zoe"])])
            .unwrap();
        assert_eq!((epoch, added), (1, 1));
        let after = service.query(&q).unwrap();
        assert_eq!(after.epoch, 1);
        assert_eq!(after.answers.len(), before.answers.len() + 1);
        assert!(after.answers.contains_constants(&["zoe"]));
    }

    #[test]
    fn non_ground_inserts_are_rejected() {
        let service = university_service();
        let bad = Atom::new("student", vec![Term::variable("X")]);
        let err = service.insert_facts(&[bad]).unwrap_err();
        assert!(matches!(err, ServiceError::BadRequest(_)));
        assert_eq!(service.stats().errors, 1);
        assert_eq!(service.stats().epoch, 0, "no epoch was published");
    }

    #[test]
    fn ontology_reasoning_happens_through_the_cache_path() {
        // person(X) must include professors via faculty ⊆ employee ⊆ person.
        let program = parse_program(
            "[R1] professor(X) -> faculty(X).\n\
             [R2] faculty(X) -> employee(X).\n\
             [R3] employee(X) -> person(X).",
        )
        .unwrap();
        let mut store = RelationalStore::new();
        store.insert_fact("professor", &["kim"]);
        let service = QueryService::new(program, store, ServiceConfig::default());
        let q = parse_query("q(X) :- person(X)").unwrap();
        let cold = service.query(&q).unwrap();
        let warm = service.query(&q).unwrap();
        assert!(cold.answers.contains_constants(&["kim"]));
        assert_eq!(cold.answers, warm.answers);
        assert!(warm.cache_hit);
    }

    #[test]
    fn chase_plans_reuse_the_epoch_materialization() {
        // Example 2: the planner compiles a chase plan; repeated queries on
        // one epoch share the materialization, and a new epoch invalidates
        // it through the version token.
        let program = ontorew_core::examples::example2();
        let mut store = RelationalStore::new();
        store.insert_fact("s", &["c", "c", "a"]);
        store.insert_fact("t", &["d", "a"]);
        let service = QueryService::new(program, store, ServiceConfig::default());
        let q = ontorew_core::examples::example2_query();
        let cold = service.query(&q).unwrap();
        assert_eq!(cold.plan, PlanKind::Chase);
        assert!(cold.exact);
        assert!(cold.answers.as_boolean());
        assert_eq!(cold.provenance.materialization_cached, Some(false));
        let warm = service.query(&q).unwrap();
        assert_eq!(warm.provenance.materialization_cached, Some(true));
        service
            .insert_facts(&[Atom::fact("t", &["d2", "c"])])
            .unwrap();
        let fresh = service.query(&q).unwrap();
        assert_eq!(fresh.epoch, 1);
        assert_eq!(fresh.provenance.materialization_cached, Some(false));
        // The insert was threaded through as a delta edge: the new epoch's
        // materialization extended epoch 0's instead of re-chasing.
        assert!(matches!(
            fresh.provenance.materialization,
            Some(ontorew_plan::MaterializationMode::Incremental { delta_facts: 1, .. })
        ));
    }

    #[test]
    fn insert_then_query_extends_the_materialization_incrementally() {
        // A commit loop on a chase-plan tenant: after the first query, every
        // insert→query cycle rides the incremental path, and the answers
        // always match a scratch evaluation of the same snapshot.
        let program = ontorew_core::examples::example2();
        let service = QueryService::new(
            program.clone(),
            RelationalStore::new(),
            ServiceConfig::default(),
        );
        let q = ontorew_core::examples::example2_query();
        assert!(!service.query(&q).unwrap().answers.as_boolean());
        service
            .insert_facts(&[Atom::fact("t", &["d", "a"])])
            .unwrap();
        service
            .insert_facts(&[Atom::fact("s", &["c", "c", "a"])])
            .unwrap();
        // Two unqueried commits: the miss composes both edges.
        let response = service.query(&q).unwrap();
        assert_eq!(response.epoch, 2);
        assert!(matches!(
            response.provenance.materialization,
            Some(ontorew_plan::MaterializationMode::Incremental { delta_facts: 2, .. })
        ));
        assert!(response.exact);
        assert!(response.answers.as_boolean());
        let scratch = Planner::new(program)
            .prepare(&q)
            .execute(service.snapshot().store());
        assert!(response.answers.iter().eq(scratch.answers.iter()));
    }

    #[test]
    fn deletes_are_visible_and_ride_the_dred_path() {
        let program = ontorew_core::examples::example2();
        let mut store = RelationalStore::new();
        store.insert_fact("s", &["c", "c", "a"]);
        store.insert_fact("t", &["d", "a"]);
        let service = QueryService::new(program.clone(), store, ServiceConfig::default());
        let q = ontorew_core::examples::example2_query();
        assert!(service.query(&q).unwrap().answers.as_boolean());
        let (epoch, removed) = service
            .delete_facts(&[Atom::fact("s", &["c", "c", "a"])])
            .unwrap();
        assert_eq!((epoch, removed), (1, 1));
        let after = service.query(&q).unwrap();
        assert_eq!(after.epoch, 1);
        // The retraction was threaded through as a delete edge: the new
        // epoch's materialization was repaired by DRed, not re-chased.
        assert!(matches!(
            after.provenance.materialization,
            Some(ontorew_plan::MaterializationMode::Dred { from: _, delta_facts: 0, removed_facts }) if removed_facts >= 1
        ));
        let scratch = Planner::new(program)
            .prepare(&q)
            .execute(service.snapshot().store());
        assert!(after.answers.iter().eq(scratch.answers.iter()));
        assert!(
            !after.answers.as_boolean(),
            "the derivation chain collapsed"
        );
    }

    #[test]
    fn deleting_an_absent_fact_still_advances_the_epoch() {
        let service = university_service();
        let (epoch, removed) = service
            .delete_facts(&[Atom::fact("student", &["nobody"])])
            .unwrap();
        assert_eq!((epoch, removed), (1, 0));
        assert_eq!(service.stats().deletes, 1);
    }

    #[test]
    fn non_ground_deletes_are_rejected() {
        let service = university_service();
        let bad = Atom::new("student", vec![Term::variable("X")]);
        let err = service.delete_facts(&[bad]).unwrap_err();
        assert!(matches!(err, ServiceError::BadRequest(_)));
        assert_eq!(service.stats().epoch, 0, "no epoch was published");
    }

    #[test]
    fn why_explains_presence_and_absence() {
        let service = university_service();
        // A derived fact: person(sara) via student(sara) -> person(sara).
        let derived = service
            .explain_fact(&Atom::fact("person", &["sara"]))
            .unwrap();
        assert!(derived.present);
        assert_eq!(derived.epoch, 0);
        assert_eq!(derived.steps[0].fact, Atom::fact("person", &["sara"]));
        assert!(
            derived.steps[0].rule.is_some(),
            "the target is derived, not asserted: {:?}",
            derived.steps
        );
        assert!(derived
            .steps
            .iter()
            .any(|s| s.fact == Atom::fact("student", &["sara"]) && s.rule.is_none()));
        assert!(derived.absent.is_none());
        // A base fact explains as itself.
        let base = service
            .explain_fact(&Atom::fact("student", &["sara"]))
            .unwrap();
        assert!(base.present);
        assert_eq!(base.steps.len(), 1);
        assert!(base.steps[0].rule.is_none());
        // An absent fact reports blocked candidates instead.
        let absent = service
            .explain_fact(&Atom::fact("person", &["bob"]))
            .unwrap();
        assert!(!absent.present);
        assert!(absent.steps.is_empty());
        let why_not = absent.absent.unwrap();
        assert!(
            !why_not.candidates.is_empty(),
            "person has deriving rules, so candidates must be reported"
        );
        assert!(why_not
            .candidates
            .iter()
            .all(|c| !c.missing.is_empty() || c.needs_invented_value));
        assert_eq!(service.stats().whys, 3);
    }

    #[test]
    fn why_tracks_retractions_across_epochs() {
        let service = university_service();
        assert!(
            service
                .explain_fact(&Atom::fact("person", &["sara"]))
                .unwrap()
                .present
        );
        // Withdrawing the assertion alone is not enough: U10 rederives
        // student(sara) from attends(sara, db101), and WHY now explains it
        // as derived instead of asserted.
        service
            .delete_facts(&[Atom::fact("student", &["sara"])])
            .unwrap();
        let rederived = service
            .explain_fact(&Atom::fact("student", &["sara"]))
            .unwrap();
        assert_eq!(rederived.epoch, 1);
        assert!(rederived.present, "U10 rederives the fact from attends");
        assert!(
            rederived.steps[0].rule.is_some(),
            "no longer asserted: {:?}",
            rederived.steps
        );
        // Removing the remaining support makes it genuinely absent.
        service
            .delete_facts(&[Atom::fact("attends", &["sara", "db101"])])
            .unwrap();
        let after = service
            .explain_fact(&Atom::fact("student", &["sara"]))
            .unwrap();
        assert_eq!(after.epoch, 2);
        assert!(!after.present, "the retracted fact must explain as absent");
        assert!(after.absent.is_some());
    }

    #[test]
    fn stats_report_retractions_and_the_provenance_footprint() {
        let program = ontorew_core::examples::example2();
        let mut store = RelationalStore::new();
        store.insert_fact("s", &["c", "c", "a"]);
        store.insert_fact("t", &["d", "a"]);
        let service = QueryService::new(program, store, ServiceConfig::default());
        let q = ontorew_core::examples::example2_query();
        // Before any materialization the footprint is zero.
        assert_eq!(service.stats().provenance.nodes, 0);
        service.query(&q).unwrap();
        let stats = service.stats();
        assert!(stats.provenance.nodes >= 2, "{:?}", stats.provenance);
        assert!(stats.provenance.edges >= 1, "{:?}", stats.provenance);
        assert!(stats.provenance.bytes > 0, "{:?}", stats.provenance);
        assert_eq!(stats.deletes, 0);
        service
            .delete_facts(&[Atom::fact("t", &["d", "a"])])
            .unwrap();
        assert_eq!(service.stats().deletes, 1);
        assert_eq!(service.retractions(), 1);
    }
}
