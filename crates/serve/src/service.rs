//! [`QueryService`]: the embeddable serving engine.
//!
//! One `QueryService` owns an ontology (fixed for the service's lifetime, as
//! a compiled artifact cache demands), the sharded prepared-query cache, the
//! epoch-swapped data store and the metrics. It is entirely `&self`-based
//! and meant to be shared behind an `Arc` by any number of threads — the TCP
//! server does exactly that, but the service is just as usable in-process
//! (the examples and benchmarks drive it directly).
//!
//! The request path is the three-step pipeline the crate docs advertise:
//! **canonicalize** (fingerprint the query), **cache** (fetch or compute the
//! UCQ rewriting), **evaluate** (run the UCQ over an immutable snapshot).

use crate::cache::{CacheConfig, CacheStats, ShardedRewritingCache};
use crate::metrics::{LatencyStats, ServeMetrics};
use crate::snapshot::{EpochStore, Snapshot};
use ontorew_model::prelude::*;
use ontorew_rewrite::fingerprint::query_identity;
use ontorew_rewrite::{
    evaluate_rewriting, fingerprint_program, rewrite, PreparedKey, ProgramFingerprint,
    RewriteConfig, Rewriting,
};
use ontorew_storage::{AnswerSet, RelationalStore};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of a [`QueryService`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceConfig {
    /// Rewriting engine limits used when compiling uncached queries.
    pub rewrite: RewriteConfig,
    /// Prepared-query cache shape.
    pub cache: CacheConfig,
}

/// The result of preparing a query (compiling it to a cached rewriting).
#[derive(Clone)]
pub struct Prepared {
    /// The cache key the rewriting is stored under.
    pub key: PreparedKey,
    /// The compiled rewriting.
    pub rewriting: Arc<Rewriting>,
    /// True if the rewriting was already cached.
    pub cache_hit: bool,
}

/// The result of answering a query.
pub struct QueryResponse {
    /// The answers, evaluated over exactly one snapshot.
    pub answers: AnswerSet,
    /// The epoch of the snapshot the answers came from.
    pub epoch: u64,
    /// The cache key of the rewriting that was evaluated.
    pub key: PreparedKey,
    /// True if the rewriting came from the cache (no rewriting fixpoint ran).
    pub cache_hit: bool,
    /// True if the rewriting is complete (answers are exactly the certain
    /// answers); false means a sound approximation from a depth-bounded run.
    pub exact: bool,
    /// End-to-end service time for this request, microseconds.
    pub micros: u64,
}

/// A point-in-time summary of service state and counters.
#[derive(Clone, Copy, Debug)]
pub struct ServiceStats {
    /// `QUERY` requests served.
    pub queries: u64,
    /// `PREPARE` requests served.
    pub prepares: u64,
    /// `INSERT` requests served.
    pub inserts: u64,
    /// Requests rejected with an error.
    pub errors: u64,
    /// Cache counters.
    pub cache: CacheStats,
    /// Latency percentiles over the recent window.
    pub latency: LatencyStats,
    /// Currently published epoch.
    pub epoch: u64,
    /// Facts in the current epoch.
    pub facts: usize,
}

/// Errors a service request can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The query refers to a predicate with an arity conflicting with the
    /// ontology or data — reported rather than silently answering empty.
    BadRequest(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The concurrent query-answering service. See the module docs.
pub struct QueryService {
    program: TgdProgram,
    program_fp: ProgramFingerprint,
    rewrite_config: RewriteConfig,
    cache: ShardedRewritingCache,
    store: EpochStore,
    metrics: ServeMetrics,
}

impl QueryService {
    /// Build a service for `program` with `initial` data as epoch 0.
    pub fn new(program: TgdProgram, initial: RelationalStore, config: ServiceConfig) -> Self {
        let program_fp = fingerprint_program(&program);
        QueryService {
            program,
            program_fp,
            rewrite_config: config.rewrite,
            cache: ShardedRewritingCache::new(config.cache),
            store: EpochStore::new(initial),
            metrics: ServeMetrics::new(),
        }
    }

    /// The ontology this service answers under.
    pub fn program(&self) -> &TgdProgram {
        &self.program
    }

    /// The fingerprint of the ontology (half of every cache key).
    pub fn program_fingerprint(&self) -> ProgramFingerprint {
        self.program_fp
    }

    /// The current data snapshot (for direct evaluation by embedders).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.store.snapshot()
    }

    /// The cache key `query` resolves to under this service's program,
    /// along with the canonical text that confirms cache hits (the 64-bit
    /// fingerprint pair alone is not collision-resistant).
    fn identity_of(&self, query: &ConjunctiveQuery) -> (PreparedKey, String) {
        let (canonical, fingerprint) = query_identity(query);
        (
            PreparedKey {
                program: self.program_fp,
                query: fingerprint,
            },
            canonical,
        )
    }

    /// The cache key `query` resolves to under this service's program.
    pub fn key_of(&self, query: &ConjunctiveQuery) -> PreparedKey {
        self.identity_of(query).0
    }

    /// Compile `query` into its UCQ rewriting, caching the artifact. Repeat
    /// preparations (of this query or any α-renamed / atom-permuted variant)
    /// are cache hits.
    pub fn prepare(&self, query: &ConjunctiveQuery) -> Prepared {
        let start = Instant::now();
        let (key, canonical) = self.identity_of(query);
        let (rewriting, cache_hit) = self.cache.get_or_compute(key, &canonical, || {
            rewrite(&self.program, query, &self.rewrite_config)
        });
        self.metrics.prepares.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .record_latency_us(start.elapsed().as_micros() as u64);
        Prepared {
            key,
            rewriting,
            cache_hit,
        }
    }

    /// Answer `query`: fetch or compile its rewriting, then evaluate it over
    /// the current snapshot. The entire evaluation runs against one immutable
    /// epoch — concurrent inserts are invisible until the next request.
    pub fn query(&self, query: &ConjunctiveQuery) -> Result<QueryResponse, ServiceError> {
        let start = Instant::now();
        let (key, canonical) = self.identity_of(query);
        let (rewriting, cache_hit) = self.cache.get_or_compute(key, &canonical, || {
            rewrite(&self.program, query, &self.rewrite_config)
        });
        let snapshot = self.store.snapshot();
        let answers = evaluate_rewriting(&rewriting, query, snapshot.store());
        let micros = start.elapsed().as_micros() as u64;
        self.metrics.queries.fetch_add(1, Ordering::Relaxed);
        self.metrics.record_latency_us(micros);
        Ok(QueryResponse {
            answers,
            epoch: snapshot.epoch(),
            key,
            cache_hit,
            exact: rewriting.complete,
            micros,
        })
    }

    /// Ingest a batch of ground facts as one new epoch. The whole batch
    /// becomes visible atomically. Returns `(new epoch, facts added)`.
    pub fn insert_facts(&self, facts: &[Atom]) -> Result<(u64, usize), ServiceError> {
        for fact in facts {
            if !fact.is_ground() {
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::BadRequest(format!(
                    "fact {fact} contains a variable"
                )));
            }
        }
        let (epoch, added) = self.store.commit_facts(facts);
        self.metrics.inserts.fetch_add(1, Ordering::Relaxed);
        Ok((epoch, added))
    }

    /// Count one protocol-level error (bad request line etc.) so it shows in
    /// `STATS`.
    pub fn record_error(&self) {
        self.metrics.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Current counters, cache statistics and latency percentiles.
    pub fn stats(&self) -> ServiceStats {
        let snapshot = self.store.snapshot();
        ServiceStats {
            queries: self.metrics.queries.load(Ordering::Relaxed),
            prepares: self.metrics.prepares.load(Ordering::Relaxed),
            inserts: self.metrics.inserts.load(Ordering::Relaxed),
            errors: self.metrics.errors.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            latency: self.metrics.latency_stats(),
            epoch: snapshot.epoch(),
            facts: snapshot.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::{parse_program, parse_query};

    fn university_service() -> QueryService {
        let program = ontorew_core::examples::university_ontology();
        let mut store = RelationalStore::new();
        store.insert_fact("professor", &["alice"]);
        store.insert_fact("teaches", &["alice", "db101"]);
        store.insert_fact("attends", &["sara", "db101"]);
        store.insert_fact("student", &["sara"]);
        QueryService::new(program, store, ServiceConfig::default())
    }

    #[test]
    fn query_answers_match_answer_by_rewriting() {
        let service = university_service();
        let q = parse_query("q(X) :- person(X)").unwrap();
        let served = service.query(&q).unwrap();
        let direct = ontorew_rewrite::answer_by_rewriting(
            service.program(),
            &q,
            service.snapshot().store(),
            &RewriteConfig::default(),
        );
        assert_eq!(served.answers, direct.answers);
        assert!(served.exact);
        assert_eq!(served.epoch, 0);
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let service = university_service();
        let q = parse_query("q(X) :- person(X)").unwrap();
        assert!(!service.query(&q).unwrap().cache_hit);
        assert!(service.query(&q).unwrap().cache_hit);
        // An α-renamed, atom-permuted variant also hits.
        let v = parse_query("people(Z) :- person(Z)").unwrap();
        assert!(service.query(&v).unwrap().cache_hit);
        let stats = service.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.cache.hits, 2);
    }

    #[test]
    fn prepare_then_query_skips_rewriting() {
        let service = university_service();
        let q = parse_query("q(T) :- teaches(T, C), attends(S, C)").unwrap();
        let prepared = service.prepare(&q);
        assert!(!prepared.cache_hit);
        let response = service.query(&q).unwrap();
        assert!(response.cache_hit);
        assert_eq!(response.key, prepared.key);
        assert!(response.answers.contains_constants(&["alice"]));
    }

    #[test]
    fn inserts_are_visible_to_later_queries_only() {
        let service = university_service();
        let q = parse_query("q(X) :- person(X)").unwrap();
        let before = service.query(&q).unwrap();
        let (epoch, added) = service
            .insert_facts(&[Atom::fact("student", &["zoe"])])
            .unwrap();
        assert_eq!((epoch, added), (1, 1));
        let after = service.query(&q).unwrap();
        assert_eq!(after.epoch, 1);
        assert_eq!(after.answers.len(), before.answers.len() + 1);
        assert!(after.answers.contains_constants(&["zoe"]));
    }

    #[test]
    fn non_ground_inserts_are_rejected() {
        let service = university_service();
        let bad = Atom::new("student", vec![Term::variable("X")]);
        let err = service.insert_facts(&[bad]).unwrap_err();
        assert!(matches!(err, ServiceError::BadRequest(_)));
        assert_eq!(service.stats().errors, 1);
        assert_eq!(service.stats().epoch, 0, "no epoch was published");
    }

    #[test]
    fn ontology_reasoning_happens_through_the_cache_path() {
        // person(X) must include professors via faculty ⊆ employee ⊆ person.
        let program = parse_program(
            "[R1] professor(X) -> faculty(X).\n\
             [R2] faculty(X) -> employee(X).\n\
             [R3] employee(X) -> person(X).",
        )
        .unwrap();
        let mut store = RelationalStore::new();
        store.insert_fact("professor", &["kim"]);
        let service = QueryService::new(program, store, ServiceConfig::default());
        let q = parse_query("q(X) :- person(X)").unwrap();
        let cold = service.query(&q).unwrap();
        let warm = service.query(&q).unwrap();
        assert!(cold.answers.contains_constants(&["kim"]));
        assert_eq!(cold.answers, warm.answers);
        assert!(warm.cache_hit);
    }
}
