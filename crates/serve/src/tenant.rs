//! Multi-tenant serving: one server process, many ontologies.
//!
//! A [`TenantRegistry`] maps tenant names to per-tenant engines — each a
//! [`QueryService`] with its own [`Planner`] (classification, plan
//! compilation, per-epoch materialization cache) and its own `EpochStore` —
//! while **one prepared-plan cache is shared across all tenants**. The cache
//! key is `(program fingerprint, query fingerprint)`, so two tenants serving
//! the same ontology (a common fleet shape: many isolated datasets, one
//! schema) share every compiled plan, and tenants serving different
//! ontologies can never collide. Each tenant gets a unique tag that
//! namespaces its data versions inside shared planners, so per-epoch chase
//! materializations stay tenant-local.
//!
//! The TCP protocol drives this through the `TENANT CREATE/USE/DROP/LIST`
//! verbs; embedders can use the registry directly.
//!
//! [`Planner`]: ontorew_plan::Planner

use crate::cache::{CacheStats, ShardedPlanCache};
use crate::service::{QueryService, ServiceConfig, ServiceError};
use ontorew_model::prelude::*;
use ontorew_rewrite::ProgramFingerprint;
use ontorew_storage::RelationalStore;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The reserved name of the tenant a server starts with (and the one
/// connections speak to before any `TENANT USE`).
pub const DEFAULT_TENANT: &str = "default";

/// A summary row of one registered tenant.
#[derive(Clone, Debug)]
pub struct TenantInfo {
    /// The tenant's name.
    pub name: String,
    /// Fingerprint of the tenant's ontology.
    pub program: ProgramFingerprint,
    /// Rules in the tenant's ontology.
    pub rules: usize,
    /// Currently published epoch of the tenant's store.
    pub epoch: u64,
    /// Facts in the current epoch.
    pub facts: usize,
    /// Retraction epochs (`DELETE` batches) this tenant has committed.
    pub retractions: u64,
}

/// The registry of tenants sharing one server and one prepared-plan cache.
pub struct TenantRegistry {
    config: ServiceConfig,
    cache: Arc<ShardedPlanCache>,
    tenants: RwLock<BTreeMap<String, Arc<QueryService>>>,
    next_tag: AtomicU64,
}

impl TenantRegistry {
    /// A registry whose `default` tenant serves `program` over `initial`.
    pub fn new(program: TgdProgram, initial: RelationalStore, config: ServiceConfig) -> Self {
        let cache = Arc::new(ShardedPlanCache::new(config.cache));
        let default = Arc::new(QueryService::with_shared_cache(
            program,
            initial,
            config,
            Arc::clone(&cache),
            0,
        ));
        let mut tenants = BTreeMap::new();
        tenants.insert(DEFAULT_TENANT.to_string(), default);
        TenantRegistry {
            config,
            cache,
            tenants: RwLock::new(tenants),
            next_tag: AtomicU64::new(1),
        }
    }

    /// Wrap an already-built service as the `default` tenant (the
    /// single-tenant entry path of [`crate::server::serve`]). Later tenants
    /// share the service's cache and inherit its configuration.
    pub fn around(service: Arc<QueryService>) -> Self {
        let cache = Arc::clone(service.cache());
        let config = service.config();
        let mut tenants = BTreeMap::new();
        tenants.insert(DEFAULT_TENANT.to_string(), service);
        TenantRegistry {
            config,
            cache,
            tenants: RwLock::new(tenants),
            next_tag: AtomicU64::new(1),
        }
    }

    /// The shared prepared-plan cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The default tenant (always present).
    pub fn default_tenant(&self) -> Arc<QueryService> {
        self.get(DEFAULT_TENANT)
            .expect("the default tenant is never dropped")
    }

    /// Look up a tenant by name.
    pub fn get(&self, name: &str) -> Option<Arc<QueryService>> {
        self.tenants.read().get(name).cloned()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.read().len()
    }

    /// True when only the default tenant exists... never: the registry
    /// always holds at least the default tenant, so this is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Create a tenant named `name` serving `program` over an empty store.
    /// Fails if the name is taken or invalid (names are `[A-Za-z0-9_-]+`,
    /// at most 64 bytes).
    pub fn create(
        &self,
        name: &str,
        program: TgdProgram,
    ) -> Result<Arc<QueryService>, ServiceError> {
        validate_tenant_name(name)?;
        // Compile the service outside the registry lock (classification can
        // be expensive); losing a creation race is reported as a conflict.
        let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
        let service = Arc::new(QueryService::with_shared_cache(
            program,
            RelationalStore::new(),
            self.config,
            Arc::clone(&self.cache),
            tag,
        ));
        let mut tenants = self.tenants.write();
        if tenants.contains_key(name) {
            return Err(ServiceError::BadRequest(format!(
                "tenant {name:?} already exists"
            )));
        }
        tenants.insert(name.to_string(), Arc::clone(&service));
        Ok(service)
    }

    /// Drop the tenant named `name`. The default tenant cannot be dropped;
    /// connections currently using a dropped tenant keep their handle (and
    /// its store) alive until they switch or disconnect.
    pub fn drop_tenant(&self, name: &str) -> Result<(), ServiceError> {
        if name == DEFAULT_TENANT {
            return Err(ServiceError::BadRequest(
                "the default tenant cannot be dropped".into(),
            ));
        }
        match self.tenants.write().remove(name) {
            Some(_) => Ok(()),
            None => Err(ServiceError::BadRequest(format!("no tenant {name:?}"))),
        }
    }

    /// Summaries of every registered tenant, in name order.
    pub fn list(&self) -> Vec<TenantInfo> {
        self.tenants
            .read()
            .iter()
            .map(|(name, service)| {
                let snapshot = service.snapshot();
                TenantInfo {
                    name: name.clone(),
                    program: service.program_fingerprint(),
                    rules: service.program().len(),
                    epoch: snapshot.epoch(),
                    facts: snapshot.len(),
                    retractions: service.retractions(),
                }
            })
            .collect()
    }
}

/// Tenant names travel on the wire as a single token: alphanumerics plus
/// `-`/`_`, bounded length.
fn validate_tenant_name(name: &str) -> Result<(), ServiceError> {
    if name.is_empty() || name.len() > 64 {
        return Err(ServiceError::BadRequest(
            "tenant names must be 1-64 characters".into(),
        ));
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Err(ServiceError::BadRequest(format!(
            "invalid tenant name {name:?}: use letters, digits, '-' and '_'"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::{parse_program, parse_query};

    fn registry() -> TenantRegistry {
        let program = parse_program("[R1] student(X) -> person(X).").unwrap();
        let mut store = RelationalStore::new();
        store.insert_fact("student", &["sara"]);
        TenantRegistry::new(program, store, ServiceConfig::default())
    }

    #[test]
    fn default_tenant_serves_immediately() {
        let registry = registry();
        assert_eq!(registry.len(), 1);
        let q = parse_query("q(X) :- person(X)").unwrap();
        let response = registry.default_tenant().query(&q).unwrap();
        assert_eq!(response.answers.len(), 1);
    }

    #[test]
    fn tenants_are_isolated_but_share_the_plan_cache() {
        let registry = registry();
        let program = parse_program("[R1] student(X) -> person(X).").unwrap();
        let hr = registry.create("hr", program).unwrap();
        assert_eq!(registry.len(), 2);

        // Same ontology, different data: the plan compiled for the default
        // tenant is a cache hit for the new tenant...
        let q = parse_query("q(X) :- person(X)").unwrap();
        assert!(!registry.default_tenant().query(&q).unwrap().cache_hit);
        let hr_response = hr.query(&q).unwrap();
        assert!(hr_response.cache_hit, "plans are shared across tenants");
        // ...but the data is not.
        assert!(hr_response.answers.is_empty());
        hr.insert_facts(&[Atom::fact("student", &["zoe"])]).unwrap();
        assert!(hr.query(&q).unwrap().answers.contains_constants(&["zoe"]));
        assert_eq!(
            registry.default_tenant().query(&q).unwrap().answers.len(),
            1,
            "default tenant unaffected"
        );
    }

    #[test]
    fn chase_materializations_stay_tenant_local() {
        // Two tenants with the same *chase-plan* ontology and equal-sized
        // stores: the shared plan must not leak one tenant's
        // materialization to the other (the tenant tag namespaces the
        // version token; equal store sizes defeat the size guard, so this
        // test pins the tag logic).
        let program = ontorew_core::examples::example2();
        let registry = TenantRegistry::new(
            program.clone(),
            RelationalStore::new(),
            ServiceConfig::default(),
        );
        let a = registry.create("a", program.clone()).unwrap();
        let b = registry.create("b", program).unwrap();
        // Same fact count in both tenants, different content.
        a.insert_facts(&[
            Atom::fact("s", &["c", "c", "a"]),
            Atom::fact("t", &["d", "a"]),
        ])
        .unwrap();
        b.insert_facts(&[
            Atom::fact("s", &["x", "y", "z"]),
            Atom::fact("t", &["d", "w"]),
        ])
        .unwrap();
        let q = ontorew_core::examples::example2_query();
        let on_a = a.query(&q).unwrap();
        let on_b = b.query(&q).unwrap();
        assert_eq!(on_a.plan, ontorew_plan::PlanKind::Chase);
        assert!(on_a.answers.as_boolean(), "tenant a derives r(a, _)");
        assert!(!on_b.answers.as_boolean(), "tenant b must not see a's data");
    }

    #[test]
    fn wrapped_registries_inherit_the_service_config() {
        // serve() wraps an embedder-built service; tenants created on the
        // wire must compile under the embedder's budgets, not defaults.
        let custom = ontorew_rewrite::RewriteConfig::default().with_max_queries(7);
        let service = Arc::new(QueryService::new(
            parse_program("[R1] student(X) -> person(X).").unwrap(),
            RelationalStore::new(),
            ServiceConfig {
                rewrite: Some(custom),
                ..ServiceConfig::default()
            },
        ));
        let registry = TenantRegistry::around(Arc::clone(&service));
        let tenant = registry
            .create("hr", parse_program("[R1] a(X) -> b(X).").unwrap())
            .unwrap();
        assert_eq!(tenant.planner().rewrite_config().max_queries, 7);
        assert_eq!(service.planner().rewrite_config().max_queries, 7);
    }

    #[test]
    fn create_validates_names_and_rejects_duplicates() {
        let registry = registry();
        let program = parse_program("[R1] a(X) -> b(X).").unwrap();
        assert!(registry.create("ok-name_1", program.clone()).is_ok());
        assert!(registry.create("ok-name_1", program.clone()).is_err());
        assert!(registry.create("", program.clone()).is_err());
        assert!(registry.create("bad name", program.clone()).is_err());
        assert!(registry.create(&"x".repeat(65), program).is_err());
    }

    #[test]
    fn default_tenant_cannot_be_dropped() {
        let registry = registry();
        assert!(registry.drop_tenant(DEFAULT_TENANT).is_err());
        assert!(registry.drop_tenant("ghost").is_err());
        let program = parse_program("[R1] a(X) -> b(X).").unwrap();
        registry.create("temp", program).unwrap();
        assert_eq!(registry.len(), 2);
        registry.drop_tenant("temp").unwrap();
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn list_reports_every_tenant() {
        let registry = registry();
        let program = parse_program("[R1] a(X) -> b(X).").unwrap();
        registry.create("beta", program).unwrap();
        let rows = registry.list();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "beta");
        assert_eq!(rows[1].name, "default");
        assert_eq!(rows[1].facts, 1);
        assert_ne!(rows[0].program, rows[1].program);
    }

    #[test]
    fn retraction_counters_are_per_tenant() {
        let registry = registry();
        let program = parse_program("[R1] a(X) -> b(X).").unwrap();
        let beta = registry.create("beta", program).unwrap();
        beta.insert_facts(&[Atom::fact("a", &["x"])]).unwrap();
        beta.delete_facts(&[Atom::fact("a", &["x"])]).unwrap();
        beta.delete_facts(&[Atom::fact("a", &["ghost"])]).unwrap();
        let rows = registry.list();
        assert_eq!(rows[0].name, "beta");
        assert_eq!(rows[0].retractions, 2);
        assert_eq!(rows[1].retractions, 0, "default tenant never deleted");
    }
}
