//! Multi-tenant serving: one server process, many ontologies.
//!
//! A [`TenantRegistry`] maps tenant names to per-tenant engines — each a
//! [`QueryService`] with its own [`Planner`] (classification, plan
//! compilation, per-epoch materialization cache) and its own `EpochStore` —
//! while **one prepared-plan cache is shared across all tenants**. The cache
//! key is `(program fingerprint, query fingerprint)`, so two tenants serving
//! the same ontology (a common fleet shape: many isolated datasets, one
//! schema) share every compiled plan, and tenants serving different
//! ontologies can never collide. Each tenant gets a unique tag that
//! namespaces its data versions inside shared planners, so per-epoch chase
//! materializations stay tenant-local.
//!
//! The TCP protocol drives this through the `TENANT CREATE/USE/DROP/LIST`
//! verbs; embedders can use the registry directly.
//!
//! [`Planner`]: ontorew_plan::Planner

use crate::cache::{CacheStats, ShardedPlanCache};
use crate::service::{QueryService, ServiceConfig, ServiceError};
use ontorew_model::prelude::*;
use ontorew_rewrite::ProgramFingerprint;
use ontorew_storage::persist::TenantStorage;
use ontorew_storage::{FsyncPolicy, RelationalStore};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The reserved name of the tenant a server starts with (and the one
/// connections speak to before any `TENANT USE`).
pub const DEFAULT_TENANT: &str = "default";

/// A summary row of one registered tenant.
#[derive(Clone, Debug)]
pub struct TenantInfo {
    /// The tenant's name.
    pub name: String,
    /// Fingerprint of the tenant's ontology.
    pub program: ProgramFingerprint,
    /// Rules in the tenant's ontology.
    pub rules: usize,
    /// Currently published epoch of the tenant's store.
    pub epoch: u64,
    /// Facts in the current epoch.
    pub facts: usize,
    /// Retraction epochs (`DELETE` batches) this tenant has committed.
    pub retractions: u64,
}

/// Where and how the registry persists its tenants.
#[derive(Clone, Debug)]
pub struct DurabilitySettings {
    /// The data directory: one subdirectory per tenant.
    pub root: PathBuf,
    /// The WAL fsync cadence every tenant is opened with.
    pub fsync: FsyncPolicy,
}

/// The registry of tenants sharing one server and one prepared-plan cache.
pub struct TenantRegistry {
    config: ServiceConfig,
    cache: Arc<ShardedPlanCache>,
    tenants: RwLock<BTreeMap<String, Arc<QueryService>>>,
    next_tag: AtomicU64,
    /// `Some` when tenants persist to a data directory. Creations and drops
    /// serialize on [`Self::lifecycle`] so two racing `TENANT CREATE`s can
    /// never wipe each other's directory; the read path never touches it.
    durability: Option<DurabilitySettings>,
    lifecycle: Mutex<()>,
}

impl TenantRegistry {
    /// A registry whose `default` tenant serves `program` over `initial`.
    pub fn new(program: TgdProgram, initial: RelationalStore, config: ServiceConfig) -> Self {
        let cache = Arc::new(ShardedPlanCache::new(config.cache));
        let default = Arc::new(QueryService::with_shared_cache(
            program,
            initial,
            config,
            Arc::clone(&cache),
            0,
        ));
        let mut tenants = BTreeMap::new();
        tenants.insert(DEFAULT_TENANT.to_string(), default);
        TenantRegistry {
            config,
            cache,
            tenants: RwLock::new(tenants),
            next_tag: AtomicU64::new(1),
            durability: None,
            lifecycle: Mutex::new(()),
        }
    }

    /// Wrap an already-built service as the `default` tenant (the
    /// single-tenant entry path of [`crate::server::serve`]). Later tenants
    /// share the service's cache and inherit its configuration.
    pub fn around(service: Arc<QueryService>) -> Self {
        let cache = Arc::clone(service.cache());
        let config = service.config();
        let mut tenants = BTreeMap::new();
        tenants.insert(DEFAULT_TENANT.to_string(), service);
        TenantRegistry {
            config,
            cache,
            tenants: RwLock::new(tenants),
            next_tag: AtomicU64::new(1),
            durability: None,
            lifecycle: Mutex::new(()),
        }
    }

    /// A durable registry: recover every tenant under `settings.root`, or
    /// create the `default` tenant from `program` + `initial` on a fresh
    /// data directory. This is the server's startup path — after it
    /// returns, every acknowledged epoch of every non-tombstoned tenant is
    /// back in memory and new commits are write-ahead-logged.
    ///
    /// When the default tenant already exists on disk, its persisted
    /// program and recovered store win over the `program`/`initial`
    /// arguments (restarting with different seed flags must not fork
    /// history).
    pub fn recover(
        program: TgdProgram,
        initial: RelationalStore,
        config: ServiceConfig,
        settings: DurabilitySettings,
    ) -> io::Result<Self> {
        std::fs::create_dir_all(&settings.root)?;
        let cache = Arc::new(ShardedPlanCache::new(config.cache));
        let mut tenants = BTreeMap::new();
        let mut next_tag = 0u64;

        let mut names = TenantStorage::list(&settings.root)?;
        if !names.iter().any(|n| n == DEFAULT_TENANT) {
            // Fresh directory (or the default was tombstoned by hand):
            // create it from the seed arguments, checkpointing the initial
            // store so epoch 0 is durable without ever having been logged.
            let storage = TenantStorage::create(
                &settings.root,
                DEFAULT_TENANT,
                &program.to_string(),
                settings.fsync,
            )?;
            let mut seed = initial;
            seed.freeze();
            storage.checkpoint(&seed, 0)?;
            let service = Arc::new(QueryService::durable(
                program,
                seed,
                0,
                config,
                Arc::clone(&cache),
                next_tag,
                Some(Arc::new(storage)),
            ));
            tenants.insert(DEFAULT_TENANT.to_string(), service);
            next_tag += 1;
            names.retain(|n| n != DEFAULT_TENANT);
        }

        for name in names {
            let recovered = TenantStorage::open(&settings.root, &name, settings.fsync)?
                .expect("list() only yields recoverable tenants");
            let recovered_program = parse_program(&recovered.program_text).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("tenant {name:?}: persisted program does not parse: {e}"),
                )
            })?;
            let service = Arc::new(QueryService::durable(
                recovered_program,
                recovered.store,
                recovered.epoch,
                config,
                Arc::clone(&cache),
                next_tag,
                Some(Arc::new(recovered.storage)),
            ));
            tenants.insert(name, service);
            next_tag += 1;
        }

        Ok(TenantRegistry {
            config,
            cache,
            tenants: RwLock::new(tenants),
            next_tag: AtomicU64::new(next_tag),
            durability: Some(settings),
            lifecycle: Mutex::new(()),
        })
    }

    /// The durability settings, when this registry persists to disk.
    pub fn durability(&self) -> Option<&DurabilitySettings> {
        self.durability.as_ref()
    }

    /// Every registered service (name order) — the compactor and the
    /// shutdown flush iterate these.
    pub fn services(&self) -> Vec<Arc<QueryService>> {
        self.tenants.read().values().cloned().collect()
    }

    /// Fsync every tenant's WAL (graceful shutdown). The first error is
    /// returned, but all tenants are attempted.
    pub fn sync_all(&self) -> io::Result<()> {
        let mut first_err = None;
        for service in self.services() {
            if let Err(e) = service.sync_wal() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The shared prepared-plan cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The default tenant (always present).
    pub fn default_tenant(&self) -> Arc<QueryService> {
        self.get(DEFAULT_TENANT)
            .expect("the default tenant is never dropped")
    }

    /// Look up a tenant by name.
    pub fn get(&self, name: &str) -> Option<Arc<QueryService>> {
        self.tenants.read().get(name).cloned()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.read().len()
    }

    /// True when only the default tenant exists... never: the registry
    /// always holds at least the default tenant, so this is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Create a tenant named `name` serving `program` over an empty store.
    /// Fails if the name is taken or invalid (names are `[A-Za-z0-9_-]+`,
    /// at most 64 bytes).
    pub fn create(
        &self,
        name: &str,
        program: TgdProgram,
    ) -> Result<Arc<QueryService>, ServiceError> {
        validate_tenant_name(name)?;
        // Creations and drops serialize on the lifecycle lock (a durable
        // create wipes any stale directory at this name, so two racing
        // creates must never both reach the disk); the registry lock is
        // only taken for the final insert.
        let _lifecycle = self.lifecycle.lock();
        if self.tenants.read().contains_key(name) {
            return Err(ServiceError::BadRequest(format!(
                "tenant {name:?} already exists"
            )));
        }
        let storage = match &self.durability {
            Some(settings) => {
                let storage = TenantStorage::create(
                    &settings.root,
                    name,
                    &program.to_string(),
                    settings.fsync,
                )
                .map_err(|e| {
                    ServiceError::Unavailable(format!("cannot persist tenant {name:?}: {e}"))
                })?;
                // Checkpoint the (empty) birth state so the manifest exists
                // from the first moment.
                storage
                    .checkpoint(&RelationalStore::new(), 0)
                    .map_err(|e| {
                        ServiceError::Unavailable(format!("cannot persist tenant {name:?}: {e}"))
                    })?;
                Some(Arc::new(storage))
            }
            None => None,
        };
        let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
        let service = Arc::new(QueryService::durable(
            program,
            RelationalStore::new(),
            0,
            self.config,
            Arc::clone(&self.cache),
            tag,
            storage,
        ));
        self.tenants
            .write()
            .insert(name.to_string(), Arc::clone(&service));
        Ok(service)
    }

    /// Drop the tenant named `name`. The default tenant cannot be dropped;
    /// connections currently using a dropped tenant keep their handle (and
    /// its store) alive until they switch or disconnect. Durable tenants
    /// are **tombstoned** on disk — recovery skips them rather than
    /// silently forgetting, and re-creating the name starts from scratch.
    pub fn drop_tenant(&self, name: &str) -> Result<(), ServiceError> {
        if name == DEFAULT_TENANT {
            return Err(ServiceError::BadRequest(
                "the default tenant cannot be dropped".into(),
            ));
        }
        let _lifecycle = self.lifecycle.lock();
        match self.tenants.write().remove(name) {
            Some(service) => {
                if let Some(storage) = service.durability() {
                    storage.tombstone().map_err(|e| {
                        ServiceError::Unavailable(format!(
                            "tenant {name:?} dropped in memory but not tombstoned on disk: {e}"
                        ))
                    })?;
                }
                Ok(())
            }
            None => Err(ServiceError::BadRequest(format!("no tenant {name:?}"))),
        }
    }

    /// Summaries of every registered tenant, in name order.
    pub fn list(&self) -> Vec<TenantInfo> {
        self.tenants
            .read()
            .iter()
            .map(|(name, service)| {
                let snapshot = service.snapshot();
                TenantInfo {
                    name: name.clone(),
                    program: service.program_fingerprint(),
                    rules: service.program().len(),
                    epoch: snapshot.epoch(),
                    facts: snapshot.len(),
                    retractions: service.retractions(),
                }
            })
            .collect()
    }
}

/// Tenant names travel on the wire as a single token: alphanumerics plus
/// `-`/`_`, bounded length.
fn validate_tenant_name(name: &str) -> Result<(), ServiceError> {
    if name.is_empty() || name.len() > 64 {
        return Err(ServiceError::BadRequest(
            "tenant names must be 1-64 characters".into(),
        ));
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Err(ServiceError::BadRequest(format!(
            "invalid tenant name {name:?}: use letters, digits, '-' and '_'"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::{parse_program, parse_query};

    fn registry() -> TenantRegistry {
        let program = parse_program("[R1] student(X) -> person(X).").unwrap();
        let mut store = RelationalStore::new();
        store.insert_fact("student", &["sara"]);
        TenantRegistry::new(program, store, ServiceConfig::default())
    }

    #[test]
    fn default_tenant_serves_immediately() {
        let registry = registry();
        assert_eq!(registry.len(), 1);
        let q = parse_query("q(X) :- person(X)").unwrap();
        let response = registry.default_tenant().query(&q).unwrap();
        assert_eq!(response.answers.len(), 1);
    }

    #[test]
    fn tenants_are_isolated_but_share_the_plan_cache() {
        let registry = registry();
        let program = parse_program("[R1] student(X) -> person(X).").unwrap();
        let hr = registry.create("hr", program).unwrap();
        assert_eq!(registry.len(), 2);

        // Same ontology, different data: the plan compiled for the default
        // tenant is a cache hit for the new tenant...
        let q = parse_query("q(X) :- person(X)").unwrap();
        assert!(!registry.default_tenant().query(&q).unwrap().cache_hit);
        let hr_response = hr.query(&q).unwrap();
        assert!(hr_response.cache_hit, "plans are shared across tenants");
        // ...but the data is not.
        assert!(hr_response.answers.is_empty());
        hr.insert_facts(&[Atom::fact("student", &["zoe"])]).unwrap();
        assert!(hr.query(&q).unwrap().answers.contains_constants(&["zoe"]));
        assert_eq!(
            registry.default_tenant().query(&q).unwrap().answers.len(),
            1,
            "default tenant unaffected"
        );
    }

    #[test]
    fn chase_materializations_stay_tenant_local() {
        // Two tenants with the same *chase-plan* ontology and equal-sized
        // stores: the shared plan must not leak one tenant's
        // materialization to the other (the tenant tag namespaces the
        // version token; equal store sizes defeat the size guard, so this
        // test pins the tag logic).
        let program = ontorew_core::examples::example2();
        let registry = TenantRegistry::new(
            program.clone(),
            RelationalStore::new(),
            ServiceConfig::default(),
        );
        let a = registry.create("a", program.clone()).unwrap();
        let b = registry.create("b", program).unwrap();
        // Same fact count in both tenants, different content.
        a.insert_facts(&[
            Atom::fact("s", &["c", "c", "a"]),
            Atom::fact("t", &["d", "a"]),
        ])
        .unwrap();
        b.insert_facts(&[
            Atom::fact("s", &["x", "y", "z"]),
            Atom::fact("t", &["d", "w"]),
        ])
        .unwrap();
        let q = ontorew_core::examples::example2_query();
        let on_a = a.query(&q).unwrap();
        let on_b = b.query(&q).unwrap();
        assert_eq!(on_a.plan, ontorew_plan::PlanKind::Chase);
        assert!(on_a.answers.as_boolean(), "tenant a derives r(a, _)");
        assert!(!on_b.answers.as_boolean(), "tenant b must not see a's data");
    }

    #[test]
    fn wrapped_registries_inherit_the_service_config() {
        // serve() wraps an embedder-built service; tenants created on the
        // wire must compile under the embedder's budgets, not defaults.
        let custom = ontorew_rewrite::RewriteConfig::default().with_max_queries(7);
        let service = Arc::new(QueryService::new(
            parse_program("[R1] student(X) -> person(X).").unwrap(),
            RelationalStore::new(),
            ServiceConfig {
                rewrite: Some(custom),
                ..ServiceConfig::default()
            },
        ));
        let registry = TenantRegistry::around(Arc::clone(&service));
        let tenant = registry
            .create("hr", parse_program("[R1] a(X) -> b(X).").unwrap())
            .unwrap();
        assert_eq!(tenant.planner().rewrite_config().max_queries, 7);
        assert_eq!(service.planner().rewrite_config().max_queries, 7);
    }

    #[test]
    fn create_validates_names_and_rejects_duplicates() {
        let registry = registry();
        let program = parse_program("[R1] a(X) -> b(X).").unwrap();
        assert!(registry.create("ok-name_1", program.clone()).is_ok());
        assert!(registry.create("ok-name_1", program.clone()).is_err());
        assert!(registry.create("", program.clone()).is_err());
        assert!(registry.create("bad name", program.clone()).is_err());
        assert!(registry.create(&"x".repeat(65), program).is_err());
    }

    #[test]
    fn default_tenant_cannot_be_dropped() {
        let registry = registry();
        assert!(registry.drop_tenant(DEFAULT_TENANT).is_err());
        assert!(registry.drop_tenant("ghost").is_err());
        let program = parse_program("[R1] a(X) -> b(X).").unwrap();
        registry.create("temp", program).unwrap();
        assert_eq!(registry.len(), 2);
        registry.drop_tenant("temp").unwrap();
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn list_reports_every_tenant() {
        let registry = registry();
        let program = parse_program("[R1] a(X) -> b(X).").unwrap();
        registry.create("beta", program).unwrap();
        let rows = registry.list();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "beta");
        assert_eq!(rows[1].name, "default");
        assert_eq!(rows[1].facts, 1);
        assert_ne!(rows[0].program, rows[1].program);
    }

    fn temp_root(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ontorew-registry-{}-{}-{}",
            tag,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn settings(root: &std::path::Path) -> DurabilitySettings {
        DurabilitySettings {
            root: root.to_path_buf(),
            fsync: FsyncPolicy::Off,
        }
    }

    #[test]
    fn durable_registry_recovers_tenants_and_skips_tombstones() {
        let root = temp_root("recover");
        let program = parse_program("[R1] student(X) -> person(X).").unwrap();
        let mut seed = RelationalStore::new();
        seed.insert_fact("student", &["sara"]);
        {
            let registry = TenantRegistry::recover(
                program.clone(),
                seed,
                ServiceConfig::default(),
                settings(&root),
            )
            .unwrap();
            registry
                .default_tenant()
                .insert_facts(&[Atom::fact("student", &["zoe"])])
                .unwrap();
            let hr = registry
                .create(
                    "hr",
                    parse_program("[R1] worksIn(X, D) -> employee(X).").unwrap(),
                )
                .unwrap();
            hr.insert_facts(&[Atom::fact("worksIn", &["ann", "cs"])])
                .unwrap();
            let tmp = registry
                .create("tmp", parse_program("[R1] a(X) -> b(X).").unwrap())
                .unwrap();
            tmp.insert_facts(&[Atom::fact("a", &["x"])]).unwrap();
            registry.drop_tenant("tmp").unwrap();
        }
        // Restart with a *different* seed: the persisted default must win.
        let registry = TenantRegistry::recover(
            program,
            RelationalStore::new(),
            ServiceConfig::default(),
            settings(&root),
        )
        .unwrap();
        assert_eq!(registry.len(), 2, "tombstoned tenant must stay gone");
        assert!(registry.get("tmp").is_none());
        let q = parse_query("q(X) :- person(X)").unwrap();
        let answers = registry.default_tenant().query(&q).unwrap().answers;
        assert!(answers.contains_constants(&["sara"]));
        assert!(answers.contains_constants(&["zoe"]));
        assert_eq!(registry.default_tenant().snapshot().epoch(), 1);
        // The recovered tenant answers through its *persisted* program.
        let hr = registry.get("hr").unwrap();
        let q = parse_query("q(X) :- employee(X)").unwrap();
        assert!(hr.query(&q).unwrap().answers.contains_constants(&["ann"]));
        assert!(hr.stats().durability.recoveries >= 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn dropped_durable_tenant_can_be_recreated_from_scratch() {
        let root = temp_root("recreate");
        let program = parse_program("[R1] student(X) -> person(X).").unwrap();
        let registry = TenantRegistry::recover(
            program,
            RelationalStore::new(),
            ServiceConfig::default(),
            settings(&root),
        )
        .unwrap();
        let beta_program = parse_program("[R1] a(X) -> b(X).").unwrap();
        let beta = registry.create("beta", beta_program.clone()).unwrap();
        beta.insert_facts(&[Atom::fact("a", &["old"])]).unwrap();
        registry.drop_tenant("beta").unwrap();
        // Recreating the name starts empty — no ghost of the old store.
        let beta = registry.create("beta", beta_program).unwrap();
        assert_eq!(beta.snapshot().len(), 0);
        assert_eq!(beta.snapshot().epoch(), 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn retraction_counters_are_per_tenant() {
        let registry = registry();
        let program = parse_program("[R1] a(X) -> b(X).").unwrap();
        let beta = registry.create("beta", program).unwrap();
        beta.insert_facts(&[Atom::fact("a", &["x"])]).unwrap();
        beta.delete_facts(&[Atom::fact("a", &["x"])]).unwrap();
        beta.delete_facts(&[Atom::fact("a", &["ghost"])]).unwrap();
        let rows = registry.list();
        assert_eq!(rows[0].name, "beta");
        assert_eq!(rows[0].retractions, 2);
        assert_eq!(rows[1].retractions, 0, "default tenant never deleted");
    }
}
