//! Concurrency integration tests: QUERY traffic hammered from N threads
//! while a writer commits INSERT batches that swap the snapshot epoch.
//!
//! The invariant under test is snapshot isolation: every response must be
//! internally consistent — all answers drawn from exactly one epoch, never a
//! torn read. The workload makes tears detectable: each epoch `k` commits
//! the *pair* of facts `marker(mk, a)` and `marker(mk, b)` in one batch, so
//! in any published epoch `e` the relation holds exactly `2e` rows and every
//! key has both its `a` and its `b` row. A reader that observed a store
//! mid-mutation (or mixed two epochs) would see an unpaired key or a row
//! count that disagrees with the epoch it reports.

use ontorew_model::parse_query;
use ontorew_model::prelude::*;
use ontorew_serve::{serve, QueryService, ServeClient, ServerConfig, ServiceConfig};
use ontorew_storage::RelationalStore;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Check one response: `rows` (key, tag) pairs claimed to come from `epoch`.
/// Panics with a description of the tear if the invariant is violated.
fn assert_snapshot_consistent(rows: &[(String, String)], epoch: u64, context: &str) {
    assert_eq!(
        rows.len() as u64,
        epoch * 2,
        "{context}: epoch {epoch} must hold exactly {} marker rows, saw {}",
        epoch * 2,
        rows.len()
    );
    let mut by_key: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (key, tag) in rows {
        by_key.entry(key).or_default().push(tag);
    }
    for (key, mut tags) in by_key {
        tags.sort();
        assert_eq!(
            tags,
            vec!["a", "b"],
            "{context}: key {key} is unpaired — torn read"
        );
    }
}

#[test]
fn service_queries_never_observe_torn_epochs() {
    // An empty ontology keeps the rewriting trivial: the test isolates the
    // snapshot machinery, not the rewriting engine.
    let service = Arc::new(QueryService::new(
        TgdProgram::new(),
        RelationalStore::new(),
        ServiceConfig::default(),
    ));
    let query = parse_query("q(X, Y) :- marker(X, Y)").unwrap();
    const EPOCHS: usize = 300;
    const READERS: usize = 4;

    let writer_done = Arc::new(AtomicBool::new(false));
    let writer = {
        let service = Arc::clone(&service);
        let writer_done = Arc::clone(&writer_done);
        std::thread::spawn(move || {
            for k in 0..EPOCHS {
                let key = format!("m{k}");
                let (epoch, added) = service
                    .insert_facts(&[
                        Atom::fact("marker", &[&key, "a"]),
                        Atom::fact("marker", &[&key, "b"]),
                    ])
                    .expect("insert batch");
                assert_eq!(epoch, k as u64 + 1);
                assert_eq!(added, 2);
            }
            writer_done.store(true, Ordering::SeqCst);
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let service = Arc::clone(&service);
            let writer_done = Arc::clone(&writer_done);
            std::thread::spawn(move || {
                let query = parse_query("q(X, Y) :- marker(X, Y)").unwrap();
                let mut last_epoch = 0u64;
                let mut observed = 0usize;
                while !writer_done.load(Ordering::SeqCst) || observed == 0 {
                    let response = service.query(&query).expect("query");
                    assert!(
                        response.epoch >= last_epoch,
                        "reader {r}: epochs went backwards"
                    );
                    last_epoch = response.epoch;
                    let rows: Vec<(String, String)> = response
                        .answers
                        .iter()
                        .map(|row| (row[0].to_string(), row[1].to_string()))
                        .collect();
                    let rows: Vec<(String, String)> = rows
                        .iter()
                        .map(|(k, t)| (k.trim_matches('"').into(), t.trim_matches('"').into()))
                        .collect();
                    assert_snapshot_consistent(&rows, response.epoch, &format!("reader {r}"));
                    observed += 1;
                }
                observed
            })
        })
        .collect();

    writer.join().unwrap();
    let mut total_reads = 0usize;
    for r in readers {
        total_reads += r.join().unwrap();
    }
    assert!(total_reads >= READERS, "every reader made progress");
    // Final state: all epochs landed.
    let final_response = service.query(&query).unwrap();
    assert_eq!(final_response.epoch, EPOCHS as u64);
    assert_eq!(final_response.answers.len(), EPOCHS * 2);
}

#[test]
fn retraction_epochs_are_never_half_applied() {
    // A writer alternates INSERT and DELETE epochs over one marker pair:
    // epoch 2k+1 commits `marker(mk, a)` + `marker(mk, b)` as one batch,
    // epoch 2k+2 retracts the same pair as one batch. The invariant for
    // every reader — including ones holding old snapshots across many later
    // retractions — is that the marker relation holds exactly 2 rows on odd
    // epochs and 0 on even ones, with every present key fully paired. A
    // half-applied retraction (one of the pair gone, the other visible)
    // would break the pairing or the parity.
    let service = Arc::new(QueryService::new(
        TgdProgram::new(),
        RelationalStore::new(),
        ServiceConfig::default(),
    ));
    let query = parse_query("q(X, Y) :- marker(X, Y)").unwrap();
    const CYCLES: usize = 150;
    const READERS: usize = 4;

    let writer_done = Arc::new(AtomicBool::new(false));
    let writer = {
        let service = Arc::clone(&service);
        let writer_done = Arc::clone(&writer_done);
        std::thread::spawn(move || {
            for k in 0..CYCLES {
                let key = format!("m{k}");
                let pair = [
                    Atom::fact("marker", &[&key, "a"]),
                    Atom::fact("marker", &[&key, "b"]),
                ];
                let (epoch, added) = service.insert_facts(&pair).expect("insert batch");
                assert_eq!((epoch, added), (2 * k as u64 + 1, 2));
                let (epoch, removed) = service.delete_facts(&pair).expect("delete batch");
                assert_eq!((epoch, removed), (2 * k as u64 + 2, 2));
            }
            writer_done.store(true, Ordering::SeqCst);
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let service = Arc::clone(&service);
            let writer_done = Arc::clone(&writer_done);
            std::thread::spawn(move || {
                let query = parse_query("q(X, Y) :- marker(X, Y)").unwrap();
                let mut last_epoch = 0u64;
                let mut held = Vec::new();
                let mut observed = 0usize;
                while !writer_done.load(Ordering::SeqCst) || observed == 0 {
                    let response = service.query(&query).expect("query");
                    assert!(
                        response.epoch >= last_epoch,
                        "reader {r}: epochs went backwards"
                    );
                    last_epoch = response.epoch;
                    let expected = if response.epoch % 2 == 1 { 2 } else { 0 };
                    let rows: Vec<(String, String)> = response
                        .answers
                        .iter()
                        .map(|row| {
                            (
                                row[0].to_string().trim_matches('"').to_string(),
                                row[1].to_string().trim_matches('"').to_string(),
                            )
                        })
                        .collect();
                    assert_eq!(
                        rows.len(),
                        expected,
                        "reader {r}: epoch {} should hold {expected} marker rows — \
                         half-applied retraction",
                        response.epoch
                    );
                    if !rows.is_empty() {
                        assert_snapshot_consistent(
                            &rows,
                            1, // one pair present on odd epochs
                            &format!("reader {r} at epoch {}", response.epoch),
                        );
                    }
                    // Hold snapshots across later retraction epochs.
                    if observed.is_multiple_of(16) {
                        held.push(service.snapshot());
                    }
                    observed += 1;
                }
                // Held snapshots still answer exactly as of their epoch: the
                // parity invariant holds no matter how many retractions have
                // been committed since.
                for snap in &held {
                    let count = snap
                        .store()
                        .relation(Predicate::new("marker", 2))
                        .map_or(0, |rel| rel.scan().count());
                    let expected = if snap.epoch() % 2 == 1 { 2 } else { 0 };
                    assert_eq!(
                        count,
                        expected,
                        "reader {r}: held snapshot of epoch {} mutated under a later \
                         retraction",
                        snap.epoch()
                    );
                }
                observed
            })
        })
        .collect();

    writer.join().unwrap();
    for r in readers {
        assert!(r.join().unwrap() >= 1);
    }
    // Final state: every pair retracted, the store is empty again.
    let final_response = service.query(&query).unwrap();
    assert_eq!(final_response.epoch, 2 * CYCLES as u64);
    assert!(final_response.answers.is_empty());
    assert_eq!(service.stats().deletes, CYCLES as u64);
}

#[test]
fn segmented_store_hammer_under_single_fact_commits() {
    // The worst case for the segmented copy-on-write store: one-fact
    // commits, so every epoch freezes a tiny tail and the size-tiered merge
    // policy constantly rebuilds segments, while readers hold snapshots of
    // many different epochs and probe them through both index candidates
    // and full scans. A torn segment (a reader observing a half-built merge
    // or a moving tail) would show up as a wrong row count, an unpaired
    // probe, or a panic.
    use ontorew_serve::EpochStore;

    let mut initial = RelationalStore::new();
    for i in 0..64 {
        initial.insert_fact("base", &[&format!("b{i}"), "seed"]);
    }
    let store = Arc::new(EpochStore::new(initial));
    const COMMITS: usize = 400;
    const READERS: usize = 4;

    let writer_done = Arc::new(AtomicBool::new(false));
    let writer = {
        let store = Arc::clone(&store);
        let writer_done = Arc::clone(&writer_done);
        std::thread::spawn(move || {
            for k in 0..COMMITS {
                let receipt = store.commit_facts(&[Atom::fact("base", &[&format!("k{k}"), "x"])]);
                assert_eq!(receipt.epoch, k as u64 + 1);
                assert_eq!(receipt.facts, 64 + k + 1);
            }
            writer_done.store(true, Ordering::SeqCst);
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let store = Arc::clone(&store);
            let writer_done = Arc::clone(&writer_done);
            std::thread::spawn(move || {
                let p = Predicate::new("base", 2);
                let mut held = Vec::new();
                let mut observed = 0usize;
                while !writer_done.load(Ordering::SeqCst) || observed == 0 {
                    let snap = store.snapshot();
                    let rel = snap.store().relation(p).expect("base relation");
                    // Scan count must match the epoch exactly.
                    assert_eq!(
                        rel.scan().count() as u64,
                        64 + snap.epoch(),
                        "reader {r}: scan disagrees with epoch {}",
                        snap.epoch()
                    );
                    // Index probes against frozen and freshly merged
                    // segments: the seed rows are always there.
                    assert_eq!(rel.lookup_count(1, Term::constant("seed")), 64);
                    let probe = [Term::variable("K"), Term::constant("seed")];
                    assert_eq!(rel.candidates(&probe).count(), 64);
                    // Hold every 32nd snapshot to keep old segment stacks
                    // alive across later merges.
                    if observed.is_multiple_of(32) {
                        held.push(snap);
                    }
                    observed += 1;
                }
                // Held snapshots still answer exactly as of their epoch.
                for snap in &held {
                    let rel = snap.store().relation(p).expect("base relation");
                    assert_eq!(rel.scan().count() as u64, 64 + snap.epoch());
                }
                observed
            })
        })
        .collect();

    writer.join().unwrap();
    for r in readers {
        assert!(r.join().unwrap() >= 1);
    }
    let final_snap = store.snapshot();
    assert_eq!(final_snap.len(), 64 + COMMITS);
    // The size-tiered merge kept the segment stack logarithmic despite 400
    // one-fact commits.
    let rel = final_snap
        .store()
        .relation(Predicate::new("base", 2))
        .unwrap();
    assert!(
        rel.segment_count() <= 16,
        "segment stack should stay logarithmic, got {}",
        rel.segment_count()
    );
}

#[test]
fn tcp_queries_never_observe_torn_epochs() {
    let service = Arc::new(QueryService::new(
        TgdProgram::new(),
        RelationalStore::new(),
        ServiceConfig::default(),
    ));
    let handle = serve(
        service,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 6,
            ..Default::default()
        },
    )
    .expect("server binds");
    let addr = handle.addr();
    const EPOCHS: usize = 120;
    const READERS: usize = 3;

    let writer_done = Arc::new(AtomicBool::new(false));
    let writer = {
        let writer_done = Arc::clone(&writer_done);
        std::thread::spawn(move || {
            let mut client = ServeClient::connect(addr).expect("writer connects");
            for k in 0..EPOCHS {
                let (added, epoch) = client
                    .insert(&format!("marker(m{k}, a); marker(m{k}, b)"))
                    .expect("insert");
                assert_eq!((added, epoch), (2, k as u64 + 1));
            }
            writer_done.store(true, Ordering::SeqCst);
            client.quit().expect("writer quits");
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let writer_done = Arc::clone(&writer_done);
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("reader connects");
                let mut last_epoch = 0u64;
                let mut observed = 0usize;
                while !writer_done.load(Ordering::SeqCst) || observed == 0 {
                    let reply = client.query("q(X, Y) :- marker(X, Y)").expect("query");
                    assert!(reply.epoch >= last_epoch, "reader {r}: epoch regression");
                    last_epoch = reply.epoch;
                    let rows: Vec<(String, String)> = reply
                        .rows
                        .iter()
                        .map(|row| (row[0].clone(), row[1].clone()))
                        .collect();
                    assert_snapshot_consistent(&rows, reply.epoch, &format!("tcp reader {r}"));
                    observed += 1;
                }
                client.quit().expect("reader quits");
                observed
            })
        })
        .collect();

    writer.join().unwrap();
    for r in readers {
        assert!(r.join().unwrap() >= 1);
    }
    // The cache served the repeated query shape: exactly one distinct query
    // was ever compiled.
    let stats = handle.service().stats();
    assert_eq!(stats.cache.entries, 1);
    assert!(stats.cache.hits >= (READERS as u64), "{stats:?}");
    handle.shutdown();
}
