//! Service-level crash-recovery tests: a durable [`TenantRegistry`] is
//! driven through random `INSERT`/`DELETE`/`QUERY` traffic, killed at every
//! commit-path crash point (including torn WAL writes), recovered, and
//! compared against an in-memory oracle that applied exactly the
//! acknowledged operations. The recovered service must answer queries
//! identically to the oracle — or to the oracle plus the single in-flight
//! operation when the crash hit after the WAL record was complete but
//! before the commit was acknowledged (the at-least-once window). It must
//! never answer from a half-applied epoch.
//!
//! A separate deterministic test pins the documented recovery semantics of
//! the planner layer: chase materializations are **not** persisted — after
//! a restart the first chase-backed query rebuilds them from scratch.

use ontorew_model::prelude::*;
use ontorew_plan::MaterializationMode;
use ontorew_serve::{DurabilitySettings, QueryService, ServiceConfig, TenantRegistry};
use ontorew_storage::persist::{failpoint, FailAction};
use ontorew_storage::{FsyncPolicy, RelationalStore};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_root(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ontorew-servecrash-{}-{}-{}",
        tag,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn settings(root: &Path) -> DurabilitySettings {
    DurabilitySettings {
        root: root.to_path_buf(),
        fsync: FsyncPolicy::Off,
    }
}

fn program() -> TgdProgram {
    parse_program("[R1] edge(X, Y) -> node(X). [R2] node(X) -> thing(X).").unwrap()
}

#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<Atom>),
    Delete(Vec<Atom>),
    Query,
}

fn fact_strategy() -> impl Strategy<Value = Atom> {
    (
        prop::sample::select(vec!["edge", "node"]),
        prop::sample::select(vec!["a", "b", "c", "d"]),
        prop::sample::select(vec!["a", "b", "c", "d"]),
    )
        .prop_map(|(p, x, y)| {
            if p == "node" {
                Atom::fact(p, &[x])
            } else {
                Atom::fact(p, &[x, y])
            }
        })
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop::collection::vec(fact_strategy(), 1..5).prop_map(Op::Insert),
        prop::collection::vec(fact_strategy(), 1..3).prop_map(Op::Delete),
        prop::strategy::Just(Op::Query),
    ]
}

const COMMIT_POINTS: &[&str] = &["wal.append.before_write", "wal.append.before_sync"];

fn answers_of(service: &QueryService) -> Vec<Vec<Term>> {
    let q = parse_query("q(X) :- thing(X)").unwrap();
    let mut rows: Vec<Vec<Term>> = service.query(&q).unwrap().answers.iter().cloned().collect();
    rows.sort();
    rows
}

/// Drive `ops` against a durable default tenant, optionally crashing the
/// commit path at step `crash_at`, then recover the registry from disk and
/// compare against the in-memory oracle.
fn run_workload(tag: &str, ops: &[Op], crash_at: Option<usize>, point_idx: usize, torn: usize) {
    let _serialize = failpoint::test_lock().lock();
    failpoint::clear_all();

    let root = temp_root(tag);
    let registry = TenantRegistry::recover(
        program(),
        RelationalStore::new(),
        ServiceConfig::default(),
        settings(&root),
    )
    .unwrap();
    let service = registry.default_tenant();
    let oracle = QueryService::new(program(), RelationalStore::new(), ServiceConfig::default());
    let mut in_flight: Option<Op> = None;

    for (i, op) in ops.iter().enumerate() {
        let armed = crash_at == Some(i);
        let mut broke = false;
        match op {
            Op::Insert(facts) | Op::Delete(facts) => {
                if armed {
                    let point = COMMIT_POINTS[point_idx % COMMIT_POINTS.len()];
                    let action = if torn > 0 && point == "wal.append.before_write" {
                        FailAction::Torn(torn)
                    } else {
                        FailAction::Crash
                    };
                    failpoint::arm(point, action);
                }
                let result = match op {
                    Op::Insert(_) => service.insert_facts(facts),
                    _ => service.delete_facts(facts),
                };
                match result {
                    Ok(_) => {
                        match op {
                            Op::Insert(_) => oracle.insert_facts(facts).unwrap(),
                            _ => oracle.delete_facts(facts).unwrap(),
                        };
                    }
                    Err(e) => {
                        assert!(armed, "only the armed step may fail, got: {e}");
                        in_flight = Some(op.clone());
                        broke = true;
                    }
                }
            }
            Op::Query => {
                assert_eq!(
                    answers_of(&service),
                    answers_of(&oracle),
                    "live service diverged from the oracle"
                );
            }
        }
        if armed {
            failpoint::clear_all();
        }
        if broke {
            break;
        }
    }
    failpoint::clear_all();
    drop(service);
    drop(registry);

    // "Restart the process": recover everything from the data directory.
    let recovered = TenantRegistry::recover(
        program(),
        RelationalStore::new(),
        ServiceConfig::default(),
        settings(&root),
    )
    .unwrap();
    let service = recovered.default_tenant();
    let got = service.snapshot().store().to_instance();
    let acked = oracle.snapshot().store().to_instance();
    if got != acked {
        // The only legitimate divergence: the crash hit after the WAL
        // record was complete but before the acknowledgement, so recovery
        // replayed the in-flight operation. Advance the oracle by it and
        // the stores must agree.
        let op =
            in_flight.expect("recovered store differs from the oracle with no in-flight operation");
        match op {
            Op::Insert(facts) => oracle.insert_facts(&facts).unwrap(),
            Op::Delete(facts) => oracle.delete_facts(&facts).unwrap(),
            Op::Query => unreachable!("queries never crash the commit path"),
        };
        assert_eq!(
            got,
            oracle.snapshot().store().to_instance(),
            "recovered store is neither the acknowledged oracle nor oracle+in-flight"
        );
    }
    // The recovered service answers like the (now aligned) oracle.
    assert_eq!(answers_of(&service), answers_of(&oracle));
    let _ = std::fs::remove_dir_all(&root);
}

proptest! {
    /// Without a crash, a restart round-trips the whole workload.
    #[test]
    fn restart_recovers_the_service_exactly(
        ops in prop::collection::vec(op_strategy(), 1..15),
    ) {
        run_workload("clean", &ops, None, 0, 0);
    }

    /// Killing the server at any commit-path crash point (including torn
    /// WAL tails of every length) never surfaces a half-applied epoch
    /// through the query API after recovery.
    #[test]
    fn commit_path_crashes_are_all_or_nothing_at_the_service_level(
        ops in prop::collection::vec(op_strategy(), 1..15),
        crash_at in 0usize..15,
        point in 0usize..2,
        torn in 0usize..40,
    ) {
        run_workload("crash", &ops, Some(crash_at % ops.len()), point, torn);
    }
}

/// A failed fsync on one commit — with the server *still running* — must
/// not poison later commits: the service aborts that epoch, the epoch
/// number is reused by the next successful commit, and recovery replays
/// every acknowledged epoch while the aborted batch leaves no trace.
#[test]
fn io_error_on_one_commit_keeps_later_acked_commits_recoverable() {
    let _serialize = failpoint::test_lock().lock();
    failpoint::clear_all();
    let root = temp_root("io-transient");
    {
        let registry = TenantRegistry::recover(
            program(),
            RelationalStore::new(),
            ServiceConfig::default(),
            settings(&root),
        )
        .unwrap();
        let service = registry.default_tenant();
        service
            .insert_facts(&[Atom::fact("edge", &["a", "b"])])
            .unwrap();
        failpoint::arm("wal.append.before_sync", FailAction::IoError);
        assert!(service
            .insert_facts(&[Atom::fact("edge", &["x", "y"])])
            .is_err());
        failpoint::clear_all();
        // The server keeps accepting commits after the transient failure.
        service
            .insert_facts(&[Atom::fact("edge", &["c", "d"])])
            .unwrap();
        service.insert_facts(&[Atom::fact("node", &["e"])]).unwrap();
    }

    let recovered = TenantRegistry::recover(
        program(),
        RelationalStore::new(),
        ServiceConfig::default(),
        settings(&root),
    )
    .unwrap();
    let service = recovered.default_tenant();
    let store = service.snapshot().store().to_instance();
    for fact in [
        Atom::fact("edge", &["a", "b"]),
        Atom::fact("edge", &["c", "d"]),
        Atom::fact("node", &["e"]),
    ] {
        assert!(store.contains(&fact), "acknowledged fact {fact} lost");
    }
    assert!(
        !store.contains(&Atom::fact("edge", &["x", "y"])),
        "aborted batch resurfaced"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// The durability telemetry moves with the service: committing against a
/// durable tenant advances the WAL append/fsync series, and a restart
/// advances the recovery counters — asserted as **deltas**, because the
/// registry is process-global and other tests in this binary feed the same
/// series.
#[test]
fn wal_and_recovery_counters_advance_across_a_restart() {
    let _serialize = failpoint::test_lock().lock();
    failpoint::clear_all();
    let registry = ontorew_telemetry::global_registry();
    let appends = registry.counter("wal_appends_total", "", &[]);
    let bytes = registry.counter("wal_append_bytes_total", "", &[]);
    let fsyncs = registry.histogram_us("wal_fsync_seconds", "", &[]);
    let recoveries = registry.counter("recoveries_total", "", &[]);
    let replayed = registry.counter("recovery_replayed_records_total", "", &[]);
    let (appends0, bytes0, fsyncs0, recoveries0, replayed0) = (
        appends.get(),
        bytes.get(),
        fsyncs.count(),
        recoveries.get(),
        replayed.get(),
    );

    let root = temp_root("telemetry");
    // Fsync on every commit so the latency histogram must move too.
    let durable = DurabilitySettings {
        root: root.clone(),
        fsync: FsyncPolicy::Always,
    };
    {
        let tenants = TenantRegistry::recover(
            program(),
            RelationalStore::new(),
            ServiceConfig::default(),
            durable.clone(),
        )
        .unwrap();
        let service = tenants.default_tenant();
        service
            .insert_facts(&[Atom::fact("edge", &["a", "b"])])
            .unwrap();
        service.insert_facts(&[Atom::fact("node", &["c"])]).unwrap();
    }
    assert!(appends.get() >= appends0 + 2, "appends did not advance");
    assert!(bytes.get() > bytes0, "append bytes did not advance");
    assert!(
        fsyncs.count() >= fsyncs0 + 2,
        "fsync latencies not recorded"
    );

    // "Restart": recovery replays both acknowledged records.
    let tenants = TenantRegistry::recover(
        program(),
        RelationalStore::new(),
        ServiceConfig::default(),
        durable,
    )
    .unwrap();
    assert_eq!(tenants.default_tenant().snapshot().store().len(), 2);
    assert!(recoveries.get() > recoveries0, "no recovery counted");
    assert!(
        replayed.get() >= replayed0 + 2,
        "replayed records not counted"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Chase materializations are rebuilt from scratch after recovery — they
/// are never persisted, and the first chase-backed query of the recovered
/// process must not claim an incremental extension of a pre-crash version.
#[test]
fn materializations_are_rebuilt_from_scratch_after_recovery() {
    let _serialize = failpoint::test_lock().lock();
    failpoint::clear_all();
    let root = temp_root("scratch");
    let program = ontorew_core::examples::example2();
    let query = ontorew_core::examples::example2_query();
    {
        let registry = TenantRegistry::recover(
            program.clone(),
            RelationalStore::new(),
            ServiceConfig::default(),
            settings(&root),
        )
        .unwrap();
        let service = registry.default_tenant();
        service
            .insert_facts(&[
                Atom::fact("s", &["c", "c", "a"]),
                Atom::fact("t", &["d", "a"]),
            ])
            .unwrap();
        let cold = service.query(&query).unwrap();
        assert_eq!(
            cold.provenance.materialization,
            Some(MaterializationMode::Scratch)
        );
        // Advance an epoch and query again: the live process extends the
        // cached materialization incrementally.
        service
            .insert_facts(&[Atom::fact("t", &["d", "b"])])
            .unwrap();
        let warm = service.query(&query).unwrap();
        assert!(
            matches!(
                warm.provenance.materialization,
                Some(MaterializationMode::Incremental { .. })
            ),
            "{:?}",
            warm.provenance.materialization
        );
    }
    // Restart: same data, but the materialization cache starts empty, so
    // the first query chases from scratch (and still answers identically).
    let registry = TenantRegistry::recover(
        program,
        RelationalStore::new(),
        ServiceConfig::default(),
        settings(&root),
    )
    .unwrap();
    let service = registry.default_tenant();
    let fresh = service.query(&query).unwrap();
    assert_eq!(
        fresh.provenance.materialization,
        Some(MaterializationMode::Scratch),
        "recovered process must rebuild, not extend a pre-crash version"
    );
    assert!(fresh.answers.as_boolean());
    let _ = std::fs::remove_dir_all(&root);
}
