//! # ontorew
//!
//! Umbrella crate for the `ontorew` workspace — a from-scratch Rust
//! reproduction of *"Query Answering over Ontologies Specified via Database
//! Dependencies"* (Civili, SIGMOD 2014 PhD Symposium).
//!
//! The workspace is organised as one crate per subsystem; this crate simply
//! re-exports them so applications can depend on a single package:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`model`] | `ontorew-model` | terms, atoms, TGDs, queries, instances, parser |
//! | [`unify`] | `ontorew-unify` | MGUs, homomorphisms, CQ containment, piece unification |
//! | [`storage`] | `ontorew-storage` | indexed relational store, CQ/UCQ evaluation, SQL rendering |
//! | [`chase`] | `ontorew-chase` | oblivious/restricted chase, weak acyclicity, certain answers |
//! | [`magic`] | `ontorew-magic` | magic-sets/SIP adornment for goal-driven chase evaluation |
//! | [`rewrite`] | `ontorew-rewrite` | UCQ rewriting engine, answering by rewriting, query patterns |
//! | [`core`] | `ontorew-core` | position graph, SWR, P-node graph, WR, baseline classes, classifier |
//! | [`plan`] | `ontorew-plan` | classification-driven planner: `Planner`, `PreparedQuery`, plan provenance |
//! | [`obda`] | `ontorew-obda` | ontology + mappings + source facade (a shim over the planner) |
//! | [`workloads`] | `ontorew-workloads` | synthetic ontology and data generators |
//! | [`serve`] | `ontorew-serve` | concurrent multi-tenant query service: prepared-plan cache, snapshot stores, TCP server |
//!
//! ```
//! // Example 3 of the paper: outside every previously known FO-rewritable
//! // class, yet Weakly Recursive, hence FO-rewritable.
//! let report = ontorew::core::classify(&ontorew::core::examples::example3());
//! assert!(!report.swr.is_swr);
//! assert_eq!(report.wr.is_wr(), Some(true));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use ontorew_chase as chase;
pub use ontorew_core as core;
pub use ontorew_magic as magic;
pub use ontorew_model as model;
pub use ontorew_obda as obda;
pub use ontorew_plan as plan;
pub use ontorew_rewrite as rewrite;
pub use ontorew_serve as serve;
pub use ontorew_storage as storage;
pub use ontorew_unify as unify;
pub use ontorew_workloads as workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use ontorew_chase::{
        certain_answers, chase, equivalent_up_to_null_renaming, ChaseConfig, ChaseStrategy,
    };
    pub use ontorew_core::{classify, is_swr, is_wr, PNodeGraph, PNodeGraphConfig, PositionGraph};
    pub use ontorew_model::prelude::*;
    pub use ontorew_obda::{ObdaSystem, Strategy};
    pub use ontorew_plan::{
        Execution, PlanKind, Planner, PlannerConfig, PreparedQuery, QueryPlan, StrategyTaken,
    };
    pub use ontorew_rewrite::{answer_by_rewriting, rewrite, RewriteConfig};
    pub use ontorew_serve::{QueryService, ServeClient, ServiceConfig, TenantRegistry};
    pub use ontorew_storage::{evaluate_cq, evaluate_ucq, RelationalStore};
}
