//! Modelling with Description Logic axioms on top of TGDs: which constructs
//! keep FO-rewritability (§6's "new FO-rewritable DL languages") and which
//! force a fallback to materialization or approximation.
//!
//! Run with `cargo run --example dl_modeling`.

use ontorew::core::{classify, DlLiteOntology, ExtendedConcept, ExtendedOntology};
use ontorew::obda::{ObdaSystem, Strategy};
use ontorew::prelude::*;

fn show(name: &str, program: &TgdProgram) {
    let report = classify(program);
    println!(
        "{name:<28} {:>2} rules  FO-rewritable = {:<5}  classes = {:?}",
        program.len(),
        report.fo_rewritable(),
        report.member_classes()
    );
}

fn main() {
    // 1. Plain DL-Lite_R: always Linear, always FO-rewritable.
    let dl_lite = DlLiteOntology::new()
        .subclass("phdStudent", "student")
        .subclass("student", "person")
        .mandatory_role("student", "enrolledIn")
        .domain("enrolledIn", "student")
        .range("enrolledIn", "programme")
        .subrole("supervises", "knows");
    show("DL-Lite_R TBox", &dl_lite.to_tgds());

    // 2. Qualified existentials and a role chain: outside DL-Lite and outside
    //    Linear, yet still certified FO-rewritable by the graph-based classes.
    let extended = ExtendedOntology::new()
        .subclass("phdStudent", "researcher")
        .include(
            ExtendedConcept::atomic("researcher"),
            ExtendedConcept::exists("memberOf"),
        )
        .some_values("phdStudent", "advisedBy", "professor")
        .some_values_domain("advises", "phdStudent", "supervisor")
        .role_chain("memberOf", "partOfFaculty", "affiliatedWith")
        .subrole("advises", "knows");
    let extended_tgds = extended.to_tgds();
    show("qualified-existential TBox", &extended_tgds);

    // 3. Adding transitivity breaks FO-rewritability: the classifier reports
    //    it honestly and the OBDA facade would switch strategy.
    let with_transitivity = ExtendedOntology::new()
        .subclass("phdStudent", "researcher")
        .transitive("partOfFaculty");
    show("with transitive role", &with_transitivity.to_tgds());

    // 4. Answer a query over the extended ontology end to end.
    let mut data = Instance::new();
    data.insert_fact("phdStudent", &["dana"]);
    data.insert_fact("advises", &["rossi", "dana"]);
    let system = ObdaSystem::new(extended_tgds, data);
    let query = parse_query("q(X) :- researcher(X)").expect("query parses");
    let result = system.answer(&query, Strategy::Auto);
    println!(
        "\nq(X) :- researcher(X) over {{phdStudent(dana), advises(rossi, dana)}}: {:?} (exact = {})",
        result
            .answers
            .iter()
            .map(|row| format!("{row:?}"))
            .collect::<Vec<_>>(),
        result.exact
    );
    // The professor invented for dana's advisor is existential knowledge. It
    // lives in a two-atom head sharing an existential variable, which the
    // single-head rewriting steps cannot join across — the rewriting is
    // reported incomplete — so ask the chase (materialization) instead.
    let boolean = parse_query("q() :- advisedBy(dana, Y), professor(Y)").expect("query parses");
    let by_rewriting = system.answer(&boolean, Strategy::Rewriting);
    let by_chase = system.answer(&boolean, Strategy::Materialization);
    println!(
        "q() :- advisedBy(dana, Y), professor(Y): rewriting = {} (exact = {}), chase = {} (exact = {})",
        by_rewriting.answers.as_boolean(),
        by_rewriting.exact,
        by_chase.answers.as_boolean(),
        by_chase.exact
    );
}
