//! An Optique-style OBDA pipeline over a sensor-network ontology: classify
//! the ontology, rewrite the monitoring queries, export them as SQL, answer
//! them over generated data and check integrity constraints.
//!
//! Run with `cargo run --example sensor_pipeline`.

use ontorew::obda::{
    check_constraints, ConstraintSet, Egd, NegativeConstraint, ObdaSystem, Strategy,
};
use ontorew::storage::ucq_to_sql;
use ontorew::workloads::{sensor_network_abox, sensor_network_ontology, sensor_network_queries};

fn main() {
    // 1. The ontology: joins and navigation chains beyond DL-Lite.
    let ontology = sensor_network_ontology();
    let report = ontorew::core::classify(&ontology);
    println!("sensor ontology: {} rules", ontology.len());
    println!("classes: {:?}", report.member_classes());
    println!("FO-rewritable: {}\n", report.fo_rewritable());

    // 2. Data: 40 sensors on 8 pieces of equipment, 2000 measurements.
    let data = sensor_network_abox(40, 8, 2_000, 42);
    println!("generated ABox: {} facts", data.len());
    let system = ObdaSystem::new(ontology.clone(), data);

    // 3. The monitoring queries, answered by rewriting; show the SQL that a
    //    real OBDA deployment would push to the DBMS.
    for query in sensor_network_queries() {
        let rewriting = ontorew::rewrite::rewrite(
            &ontology,
            &query,
            &ontorew::rewrite::RewriteConfig::default(),
        );
        let result = system.answer(&query, Strategy::Auto);
        println!(
            "\nquery {query}\n  rewriting: {} disjuncts (complete = {})",
            rewriting.ucq.len(),
            rewriting.complete
        );
        println!(
            "  answers: {} (exact = {})",
            result.answers.len(),
            result.exact
        );
        let sql = ucq_to_sql(&rewriting.ucq);
        let first_line = sql.lines().next().unwrap_or_default();
        println!("  SQL (first disjunct): {first_line}");
    }

    // 4. Integrity: a measurement must not be produced by two sensors, and a
    //    device must not be both a temperature and a pressure sensor.
    let mut constraints = ConstraintSet::new();
    constraints.push_egd(Egd::functional("producedBy"));
    constraints.push_nc(
        NegativeConstraint::parse("temperatureSensor(X), pressureSensor(X)")
            .expect("constraint parses"),
    );
    let report = check_constraints(&system, &constraints, Strategy::Auto);
    println!(
        "\nintegrity: {} constraints checked, consistent = {}",
        report.checked,
        report.is_consistent()
    );
    for violation in &report.violations {
        println!(
            "  violated: {} ({:?})",
            violation.constraint, violation.kind
        );
    }
}
