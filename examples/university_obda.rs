//! A full OBDA scenario: a university ontology over a legacy relational
//! schema, bridged by mappings, answered by rewriting and cross-checked
//! against chase materialization.
//!
//! Run with `cargo run --example university_obda`.

use ontorew::core::examples::university_ontology;
use ontorew::obda::{cross_check, Mapping, MappingSet, ObdaSystem, Strategy};
use ontorew::prelude::*;
use ontorew_model::Predicate;

fn main() {
    // 1. The ontology: DL-Lite style TGDs about a university domain.
    let ontology = university_ontology();
    let report = ontorew::core::classify(&ontology);
    println!("ontology classes: {:?}", report.member_classes());

    // 2. A legacy source schema that does NOT match the ontology vocabulary:
    //    people(id, name, role) and enrolment(person, course, grade).
    let mut source = RelationalStore::new();
    source.insert_fact("people", &["p1", "Ada", "professor"]);
    source.insert_fact("people", &["p2", "Grace", "lecturer"]);
    source.insert_fact("people", &["s1", "Tim", "student"]);
    source.insert_fact("people", &["s2", "Barbara", "student"]);
    source.insert_fact("teaching", &["p1", "logic101"]);
    source.insert_fact("teaching", &["p2", "db201"]);
    source.insert_fact("enrolment", &["s1", "logic101", "A"]);
    source.insert_fact("enrolment", &["s2", "logic101", "B"]);
    source.insert_fact("enrolment", &["s2", "db201", "A"]);

    // 3. Mappings: populate the ontology predicates from the legacy columns.
    //    (Role-based filtering would need conditional mappings; here the demo
    //    keeps the common projection case and feeds professors explicitly.)
    let mut mappings = MappingSet::new();
    mappings.push(Mapping::new(
        Predicate::new("teaching", 2),
        Predicate::new("teaches", 2),
        vec![0, 1],
    ));
    mappings.push(Mapping::new(
        Predicate::new("enrolment", 3),
        Predicate::new("attends", 2),
        vec![0, 1],
    ));
    mappings.push(Mapping::new(
        Predicate::new("teaching", 2),
        Predicate::new("professor", 1),
        vec![0],
    ));

    let system = ObdaSystem::with_mappings(ontology, mappings, source);
    println!("retrieved ABox: {} facts", system.retrieved_abox().len());

    // 4. Queries over the *ontology* vocabulary, answered by rewriting.
    let queries = [
        (
            "who teaches something attended by someone",
            "q(T) :- teaches(T, C), attends(S, C)",
        ),
        ("who is a person", "q(X) :- person(X)"),
        ("which courses exist", "q(C) :- course(C)"),
        ("who is an employee", "q(X) :- employee(X)"),
    ];
    for (label, text) in queries {
        let query = parse_query(text).expect("query parses");
        let result = system.answer(&query, Strategy::Auto);
        println!(
            "\n{label}  [{text}]  ->  {} answers (exact = {})",
            result.answers.len(),
            result.exact
        );
        for row in result.answers.iter() {
            println!("   {row:?}");
        }
        // Cross-check the two strategies (Theorem 1 in executable form).
        let check = cross_check(&system, &query);
        assert!(check.is_consistent(), "strategies disagree: {check:?}");
    }
    println!("\nrewriting and materialization agreed on every query.");
}
