//! Serve ontological queries over TCP, in process: spawn the query server,
//! drive it with the blocking client, and watch the prepared-query cache
//! amortise the rewriting.
//!
//! ```text
//! cargo run --example query_server
//! ```

use ontorew::core::examples::university_ontology;
use ontorew::serve::{serve, QueryService, ServeClient, ServerConfig, ServiceConfig};
use ontorew::storage::RelationalStore;
use std::sync::Arc;

fn main() {
    // A service over the university ontology with a handful of facts.
    let mut store = RelationalStore::new();
    store.insert_fact("professor", &["alice"]);
    store.insert_fact("teaches", &["alice", "db101"]);
    store.insert_fact("attends", &["sara", "db101"]);
    store.insert_fact("phdStudent", &["gina"]);
    store.insert_fact("advisedBy", &["gina", "alice"]);
    let service = Arc::new(QueryService::new(
        university_ontology(),
        store,
        ServiceConfig::default(),
    ));

    // Bind an ephemeral port and connect a client to it.
    let handle = serve(Arc::clone(&service), ServerConfig::default()).expect("server binds");
    println!("server listening on {}", handle.addr());
    let mut client = ServeClient::connect(handle.addr()).expect("client connects");

    // First time a query shape is seen, the UCQ rewriting is compiled...
    let q = "q(X) :- person(X)";
    let cold = client.query(q).expect("cold query");
    println!(
        "cold  {q}: {} answers (cache {})",
        cold.count,
        if cold.cache_hit { "hit" } else { "miss" }
    );
    for row in &cold.rows {
        println!("      -> {}", row.join(", "));
    }

    // ... every α-renamed / atom-permuted variant after that skips straight
    // to evaluation.
    for variant in ["q(X) :- person(X)", "people(Someone) :- person(Someone)"] {
        let warm = client.query(variant).expect("warm query");
        println!(
            "warm  {variant}: {} answers (cache {})",
            warm.count,
            if warm.cache_hit { "hit" } else { "miss" }
        );
    }

    // Ingestion swaps a new snapshot epoch; readers never block.
    let (added, epoch) = client
        .insert("student(zoe); attends(zoe, db101)")
        .expect("insert");
    println!("insert: {added} facts added, now at epoch {epoch}");
    let after = client.query(q).expect("query after insert");
    println!(
        "warm  {q}: {} answers at epoch {}",
        after.count, after.epoch
    );

    // EXPLAIN dumps the plan the cache is serving (the university ontology
    // is FO-rewritable *and* weakly acyclic, so the planner compiled a
    // hybrid plan).
    let explained = client.explain(q).expect("explain");
    println!(
        "explain {q}: plan={} ({} info lines)",
        explained
            .fields
            .get("plan")
            .map(String::as_str)
            .unwrap_or("?"),
        explained.info.len()
    );

    // One server can host many ontologies: tenants have isolated stores and
    // planners, but share the prepared-plan cache.
    client
        .tenant_create("hr", "[H1] worksIn(X, D) -> employee(X).")
        .expect("tenant create");
    client.tenant_use("hr").expect("tenant use");
    client.insert("worksIn(ann, cs)").expect("tenant insert");
    let hr = client.query("q(X) :- employee(X)").expect("tenant query");
    println!("tenant hr: {} employees (isolated from default)", hr.count);
    client.tenant_use("default").expect("back to default");

    // The service-side view of all of this.
    let stats = service.stats();
    println!(
        "stats: {} queries, cache {} hits / {} misses (hit rate {:.0}%), p50 {}us",
        stats.queries,
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.hit_rate() * 100.0,
        stats.latency.p50_us
    );

    client.quit().expect("quit");
    handle.shutdown();
    println!("server stopped");
}
