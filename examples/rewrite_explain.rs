//! Watch the rewriting diverge: Example 2 of the paper and its unbounded
//! chain of existential join variables, contrasted with the terminating
//! rewriting of Example 3.
//!
//! Run with `cargo run --example rewrite_explain`.

use ontorew::core::examples::{example2, example2_query, example3};
use ontorew::prelude::*;
use ontorew::rewrite::{analyze_patterns, rewriting_growth};

fn main() {
    // Example 2: q() :- r("a", X) has no finite rewriting; the number of
    // generated CQs keeps growing with the depth bound (the paper's
    // "unbounded chain").
    let program = example2();
    let query = example2_query();
    println!("Example 2 ontology:\n{program}");
    println!("query: {query}\n");
    println!("depth  generated CQs  complete?");
    for (depth, generated, complete) in rewriting_growth(&program, &query, &[1, 2, 3, 4, 5, 6]) {
        println!("{depth:>5}  {generated:>13}  {complete}");
    }

    let analysis = analyze_patterns(&program, &query, 6);
    println!(
        "\nquery patterns observed: {} (recurrent: {})",
        analysis.observed.len(),
        analysis.recurrent_patterns().len()
    );
    println!(
        "pattern-based verdict: looks FO-rewritable = {}",
        analysis.looks_fo_rewritable()
    );

    // Example 3: the recursion is only apparent; the rewriting terminates.
    let program3 = example3();
    let query3 = parse_query("ans(A, B) :- s(A, A, B)").expect("query parses");
    let rewriting = rewrite(&program3, &query3, &RewriteConfig::default());
    println!(
        "\nExample 3: rewriting of {query3} terminates with {} disjuncts (complete = {}):",
        rewriting.ucq.len(),
        rewriting.complete
    );
    for disjunct in rewriting.ucq.iter() {
        println!("  {disjunct}");
    }
}
