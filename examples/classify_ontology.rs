//! Reproduce the paper's three examples and figures from the command line.
//!
//! Prints, for each of Examples 1–3: the classification against every
//! implemented class, the position graph (Figures 1 and 2) and the P-node
//! graph (Figure 3) in Graphviz DOT format.
//!
//! Run with `cargo run --example classify_ontology`.

use ontorew::core::examples::{example1, example2, example3};
use ontorew::core::{
    classify, pnode_graph_to_dot, position_graph_to_dot, PNodeGraph, PNodeGraphConfig,
    PositionGraph,
};
use ontorew_model::TgdProgram;

fn show(name: &str, figure: &str, program: &TgdProgram) {
    println!("==================================================================");
    println!("{name}\n{program}");
    let report = classify(program);
    println!("simple TGDs      : {}", report.simple);
    println!("member classes   : {:?}", report.member_classes());
    println!("SWR              : {}", report.swr.is_swr);
    println!("WR               : {:?}", report.wr.verdict);
    println!("FO-rewritability : {:?}", report.fo_rewritability_verdict());

    let position_graph = PositionGraph::build(program);
    println!(
        "\nposition graph ({} nodes, {} edges) — {}:",
        position_graph.node_count(),
        position_graph.edge_count(),
        figure
    );
    println!("{}", position_graph_to_dot(&position_graph, figure));

    let pnode_graph = PNodeGraph::build(program, &PNodeGraphConfig::default());
    println!(
        "P-node graph ({} nodes, {} edges):",
        pnode_graph.node_count(),
        pnode_graph.edge_count()
    );
    println!(
        "{}",
        pnode_graph_to_dot(&pnode_graph, &format!("{figure}-pnode"))
    );
}

fn main() {
    show("Example 1 (SWR, Figure 1)", "figure1", &example1());
    show(
        "Example 2 (not WR, Figures 2 and 3)",
        "figure2",
        &example2(),
    );
    show(
        "Example 3 (WR but outside the known classes)",
        "example3",
        &example3(),
    );
}
