//! Quickstart: parse an ontology, classify it, rewrite a query and answer it.
//!
//! Run with `cargo run --example quickstart`.

use ontorew::prelude::*;

fn main() {
    // 1. The ontology: a handful of TGDs (existential rules). `Y` in E2 is an
    //    existential head variable — every person has some (possibly unknown)
    //    parent.
    let ontology = parse_program(
        "[E1] student(X) -> person(X).\n\
         [E2] person(X) -> hasParent(X, Y).\n\
         [E3] hasParent(X, Y) -> person(Y).",
    )
    .expect("ontology parses");

    // 2. Classify it: which known classes does it fall in, and is query
    //    answering FO-rewritable?
    let report = ontorew::core::classify(&ontology);
    println!("classes        : {:?}", report.member_classes());
    println!("FO-rewritable  : {}", report.fo_rewritable());
    println!("chase terminates: {}", report.chase_terminates());

    // 3. The data: a tiny extensional database.
    let mut data = Instance::new();
    data.insert_fact("student", &["sara"]);
    data.insert_fact("hasParent", &["sara", "ben"]);

    // 4. A conjunctive query: who is known to be a person?
    let query = parse_query("q(X) :- person(X)").expect("query parses");

    // 5. Rewrite the query under the ontology and show the rewriting.
    let rewriting = ontorew::rewrite::rewrite(&ontology, &query, &RewriteConfig::default());
    println!("\nperfect rewriting ({} disjuncts):", rewriting.ucq.len());
    for disjunct in rewriting.ucq.iter() {
        println!("  {disjunct}");
    }
    println!(
        "\nas SQL:\n{}",
        ontorew::storage::ucq_to_sql(&rewriting.ucq)
    );

    // 6. Answer through the OBDA facade (strategy chosen automatically).
    let system = ObdaSystem::new(ontology, data);
    let result = system.answer(&query, Strategy::Auto);
    println!(
        "\nanswers ({} tuples, exact = {}):",
        result.answers.len(),
        result.exact
    );
    for row in result.answers.iter() {
        println!("  {row:?}");
    }
}
