//! The unified answering API: one `Planner`, a plan per query, uniform
//! provenance.
//!
//! Walks the paper's trichotomy with the planner: Example 1 (SWR and weakly
//! acyclic — hybrid plan), Example 2 (outside WR, weakly acyclic — chase
//! plan), a DL-Lite-style ontology (FO-rewritable only — rewrite plan), and
//! an unclassified program (best-effort plan), printing each plan's
//! `EXPLAIN` dump and executing it.
//!
//! ```text
//! cargo run --example planner_explain
//! ```

use ontorew::prelude::*;

fn show(title: &str, program: TgdProgram, query: &str, load: &[(&str, &[&str])]) {
    let planner = Planner::new(program);
    let query = parse_query(query).expect("query parses");
    let prepared = planner.prepare(&query);
    println!("=== {title} ===");
    print!("{}", prepared.explain());

    let mut store = RelationalStore::new();
    for (predicate, constants) in load {
        store.insert_fact(predicate, constants);
    }
    let execution = prepared.execute(&store);
    println!(
        "executed: strategy={:?} exact={} answers={}",
        execution.provenance.strategy,
        execution.provenance.exact,
        execution.answers.len()
    );
    for row in execution.answers.iter() {
        let cells: Vec<String> = row.iter().map(|t| format!("{t}")).collect();
        println!("  ({})", cells.join(", "));
    }
    println!();
}

fn main() {
    // Example 1: SWR (hence FO-rewritable) and weakly acyclic — both
    // guarantees hold, the plan is hybrid, cost signals pick the pipeline.
    show(
        "Example 1 — hybrid",
        ontorew::core::examples::example1(),
        "ans(X, Z) :- r(X, Z)",
        &[("s", &["a", "b", "c"]), ("t", &["d"])],
    );

    // Example 2: provably outside WR but weakly acyclic — materialization
    // is the only complete strategy.
    show(
        "Example 2 — chase",
        ontorew::core::examples::example2(),
        r#"q() :- r("a", X)"#,
        &[("s", &["c", "c", "a"]), ("t", &["d", "a"])],
    );

    // DL-Lite-style ontology with an infinite ancestor chain: the chase
    // cannot terminate, rewriting is perfect — a pure rewrite plan.
    show(
        "DL-Lite ancestors — rewrite",
        parse_program(
            "[R1] student(X) -> person(X).\n\
             [R2] person(X) -> hasParent(X, Y).\n\
             [R3] hasParent(X, Y) -> person(Y).",
        )
        .expect("ontology parses"),
        "q(X) :- person(X)",
        &[("student", &["sara"]), ("hasParent", &["sara", "ana"])],
    );

    // No guarantee at all: Example 2 plus a rule that breaks weak
    // acyclicity — the planner degrades to a sound best-effort pipeline
    // and says so.
    show(
        "Unclassified — best effort",
        parse_program(
            "[R1] t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).\n\
             [R2] s(Y1, Y1, Y2) -> r(Y2, Y3).\n\
             [R3] r(X, Y) -> t(Y, Z).",
        )
        .expect("ontology parses"),
        r#"q() :- r("a", X)"#,
        &[("s", &["c", "c", "a"]), ("t", &["d", "a"])],
    );
}
