//! Integration tests: the paper's examples and figures, end to end.
//!
//! These tests span every crate of the workspace: parse the example programs,
//! build the graphs of Figures 1–3, classify, rewrite, chase and compare the
//! two answering strategies.

use ontorew::core::examples::{example1, example2, example2_query, example3};
use ontorew::core::{
    classify, pnode_graph_to_dot, position_graph_to_dot, FoRewritabilityVerdict, PNodeGraph,
    PNodeGraphConfig, PositionGraph, WrVerdict,
};
use ontorew::prelude::*;
use ontorew::rewrite::rewriting_growth;

#[test]
fn example1_full_pipeline() {
    let program = example1();
    let report = classify(&program);
    assert!(report.simple);
    assert!(report.swr.is_swr);
    assert_eq!(report.wr.verdict, WrVerdict::WeaklyRecursive);
    assert_eq!(
        report.fo_rewritability_verdict(),
        FoRewritabilityVerdict::Rewritable
    );

    // Figure 1: the position graph has no s-edges, so every cycle is harmless.
    let graph = PositionGraph::build(&program);
    assert_eq!(graph.s_edge_count(), 0);
    assert!(graph.has_any_cycle());
    assert!(!graph.has_dangerous_cycle());

    // Theorem 1 in action: the rewriting of a query over the head predicate
    // terminates, and its answers agree with the chase.
    let query = parse_query("ans(X, Z) :- r(X, Z)").unwrap();
    let rewriting = rewrite(&program, &query, &RewriteConfig::default());
    assert!(rewriting.complete);

    let mut data = Instance::new();
    data.insert_fact("v", &["a", "b"]);
    data.insert_fact("q", &["b"]);
    data.insert_fact("t", &["w"]);
    data.insert_fact("r", &["x", "y"]);
    let store = RelationalStore::from_instance(&data);
    let by_rewriting = evaluate_ucq(&store, &rewriting.ucq);
    let by_chase = certain_answers(&program, &data, &query, &ChaseConfig::default());
    assert!(by_chase.complete);
    let rewriting_rows: Vec<_> = by_rewriting.iter().cloned().collect();
    let chase_rows: Vec<_> = by_chase.answers.iter().cloned().collect();
    assert_eq!(rewriting_rows, chase_rows);
    // r(x, y) is a fact; v(a,b), q(b) derive s(a, _, b) and t(w) holds, so
    // r(a, b) is certain as well.
    assert!(by_chase.answers.contains_constants(&["x", "y"]));
    assert!(by_chase.answers.contains_constants(&["a", "b"]));
}

#[test]
fn example2_full_pipeline() {
    let program = example2();
    let report = classify(&program);
    assert!(!report.simple);
    assert!(!report.swr.is_swr);
    assert_eq!(report.wr.verdict, WrVerdict::NotWeaklyRecursive);
    assert_eq!(
        report.fo_rewritability_verdict(),
        FoRewritabilityVerdict::NotKnownRewritable
    );

    // Figure 2: the position graph alone sees no danger...
    let position_graph = PositionGraph::build(&program);
    assert!(!position_graph.has_dangerous_cycle());
    // ...but Figure 3: the P-node graph detects the d+m+s cycle.
    let pnode_graph = PNodeGraph::build(&program, &PNodeGraphConfig::default());
    assert!(pnode_graph.has_dangerous_cycle());

    // The rewriting of q() :- r("a", x) keeps growing with the depth bound.
    let growth = rewriting_growth(&program, &example2_query(), &[1, 3, 5, 7]);
    assert!(growth.windows(2).all(|w| w[1].1 > w[0].1));
    assert!(growth.iter().all(|(_, _, complete)| !complete));

    // Even though rewriting diverges, the chase terminates here (the program
    // is weakly acyclic), so certain answers are still computable.
    assert!(report.weakly_acyclic);
    let mut data = Instance::new();
    data.insert_fact("s", &["c", "c", "a"]);
    data.insert_fact("t", &["d", "a"]);
    let by_chase = certain_answers(&program, &data, &example2_query(), &ChaseConfig::default());
    assert!(by_chase.complete);
    assert!(by_chase.answers.as_boolean());
}

#[test]
fn example3_full_pipeline() {
    let program = example3();
    let report = classify(&program);
    // Outside every baseline class the paper lists...
    assert!(!report.linear);
    assert!(!report.multilinear);
    assert!(!report.sticky);
    assert!(!report.sticky_join);
    assert!(!report.swr.is_swr);
    // ...but WR, hence FO-rewritable.
    assert_eq!(report.wr.verdict, WrVerdict::WeaklyRecursive);
    assert!(report.fo_rewritable());

    // The rewriting indeed terminates, and it agrees with the chase.
    let query = parse_query("ans(A, B) :- s(A, A, B)").unwrap();
    let rewriting = rewrite(&program, &query, &RewriteConfig::default());
    assert!(rewriting.complete);

    let mut data = Instance::new();
    data.insert_fact("u", &["n"]);
    data.insert_fact("t", &["n", "n", "m"]);
    data.insert_fact("s", &["p", "p", "q"]);
    data.insert_fact("r", &["p", "q"]);
    let store = RelationalStore::from_instance(&data);
    let by_rewriting = evaluate_ucq(&store, &rewriting.ucq);
    let by_chase = certain_answers(&program, &data, &query, &ChaseConfig::restricted(16));
    let rewriting_rows: Vec<_> = by_rewriting.iter().cloned().collect();
    let chase_rows: Vec<_> = by_chase.answers.iter().cloned().collect();
    assert_eq!(rewriting_rows, chase_rows);
    assert!(by_chase.answers.contains_constants(&["n", "m"]));
    assert!(by_chase.answers.contains_constants(&["p", "q"]));
}

#[test]
fn figures_render_to_dot() {
    let fig1 = position_graph_to_dot(&PositionGraph::build(&example1()), "figure1");
    assert!(fig1.contains("s[2]"));
    let fig2 = position_graph_to_dot(&PositionGraph::build(&example2()), "figure2");
    assert!(fig2.contains("r[2]"));
    let fig3 = pnode_graph_to_dot(
        &PNodeGraph::build(&example2(), &PNodeGraphConfig::default()),
        "figure3",
    );
    assert!(fig3.contains("s(z, z, x1)"));
    assert!(fig3.contains("d,m,s"));
}

#[test]
fn semi_naive_chase_matches_naive_on_the_paper_examples() {
    use ontorew::core::examples::{university_ontology, university_query};
    use ontorew::workloads::university_abox;

    // (program, database) pairs covering Examples 1–3 and the university
    // workload: Datalog joins, existential invention, and repeated variables.
    let mut ex1_data = Instance::new();
    ex1_data.insert_fact("v", &["a", "b"]);
    ex1_data.insert_fact("q", &["b"]);
    ex1_data.insert_fact("t", &["w"]);
    ex1_data.insert_fact("r", &["x", "y"]);
    let mut ex2_data = Instance::new();
    ex2_data.insert_fact("s", &["c", "c", "a"]);
    ex2_data.insert_fact("t", &["d", "a"]);
    let mut ex3_data = Instance::new();
    ex3_data.insert_fact("u", &["n"]);
    ex3_data.insert_fact("t", &["n", "n", "m"]);
    ex3_data.insert_fact("s", &["p", "p", "q"]);
    ex3_data.insert_fact("r", &["p", "q"]);
    let cases = [
        (example1(), ex1_data),
        (example2(), ex2_data),
        (example3(), ex3_data),
        (university_ontology(), university_abox(60, 7, 13, 5)),
    ];

    for (program, data) in &cases {
        let semi = ontorew::chase::chase(program, data, &ChaseConfig::default());
        let naive = ontorew::chase::chase(program, data, &ChaseConfig::naive());
        assert_eq!(semi.outcome, naive.outcome);
        assert_eq!(semi.rounds, naive.rounds);
        assert_eq!(semi.fired, naive.fired);
        assert!(
            equivalent_up_to_null_renaming(&semi.instance, &naive.instance),
            "naive and semi-naive chases diverged on {program}"
        );
    }

    // And the certain answers of the university query agree exactly.
    let (program, data) = &cases[3];
    let query = university_query();
    let semi = certain_answers(program, data, &query, &ChaseConfig::default());
    let naive = certain_answers(program, data, &query, &ChaseConfig::naive());
    assert!(semi.complete && naive.complete);
    assert_eq!(semi.answers, naive.answers);
}

#[test]
fn obda_system_over_the_paper_examples() {
    // Example 2 through the OBDA facade: Auto must fall back to
    // materialization and still produce the certain answer.
    let mut data = Instance::new();
    data.insert_fact("s", &["c", "c", "a"]);
    data.insert_fact("t", &["d", "a"]);
    let system = ObdaSystem::new(example2(), data);
    let result = system.answer(&example2_query(), Strategy::Auto);
    assert_eq!(result.strategy, Strategy::Materialization);
    assert!(result.exact);
    assert!(result.answers.as_boolean());
}
