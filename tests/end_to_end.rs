//! Cross-crate integration tests on synthetic workloads: rewriting vs chase
//! agreement, classification of generated families, and the OBDA facade.

use ontorew::prelude::*;
use ontorew::workloads::{
    chain_program, hierarchy_program, random_abox, random_program, star_program,
    sticky_family_program, university_abox, AboxConfig, RandomProgramConfig,
};

#[test]
fn chain_rewriting_has_linear_size_and_agrees_with_chase() {
    for n in [1usize, 4, 8, 16] {
        let program = chain_program(n);
        let query = parse_query(&format!("q(X) :- p{n}(X)")).unwrap();
        let rewriting = rewrite(&program, &query, &RewriteConfig::default());
        assert!(rewriting.complete);
        assert_eq!(rewriting.ucq.len(), n + 1, "chain of length {n}");

        let mut data = Instance::new();
        data.insert_fact("p0", &["seed"]);
        data.insert_fact(&format!("p{n}"), &["top"]);
        let store = RelationalStore::from_instance(&data);
        let by_rewriting = evaluate_ucq(&store, &rewriting.ucq);
        let by_chase = certain_answers(&program, &data, &query, &ChaseConfig::default());
        assert!(by_chase.complete);
        assert_eq!(by_rewriting.len(), by_chase.answers.len());
        assert!(by_rewriting.contains_constants(&["seed"]));
        assert!(by_rewriting.contains_constants(&["top"]));
    }
}

#[test]
fn generated_families_classify_as_expected() {
    let chain = chain_program(10);
    let report = ontorew::core::classify(&chain);
    assert!(report.linear && report.swr.is_swr && report.weakly_acyclic);

    let hierarchy = hierarchy_program(3);
    let report = ontorew::core::classify(&hierarchy);
    assert!(report.linear && report.swr.is_swr);

    let star = star_program(5);
    let report = ontorew::core::classify(&star);
    // Star rules drop an existential join variable: not sticky, but each rule
    // is harmless (no recursion), so the program stays SWR and acyclic-GRD.
    assert!(!report.sticky);
    assert!(report.swr.is_swr);
    assert!(report.acyclic_grd);

    let sticky_open = sticky_family_program(6, false);
    let report = ontorew::core::classify(&sticky_open);
    assert!(report.linear && report.sticky && report.swr.is_swr);
    assert!(report.weakly_acyclic);

    let sticky_closed = sticky_family_program(6, true);
    let report = ontorew::core::classify(&sticky_closed);
    assert!(report.linear && report.swr.is_swr);
    // The closed family has a cyclic rule-dependency graph, but it is still
    // weakly acyclic: the invented value always lands in the second position,
    // which no rule ever propagates.
    assert!(report.weakly_acyclic);
    assert!(!report.acyclic_grd);
}

#[test]
fn swr_random_programs_have_terminating_rewritings() {
    // Over a spread of seeds: whenever the classifier says SWR, the rewriting
    // engine must reach a fixpoint (Theorem 1), within a generous budget.
    let mut checked = 0;
    for seed in 0..12u64 {
        let program = random_program(&RandomProgramConfig {
            rules: 8,
            predicates: 6,
            max_arity: 2,
            max_body_atoms: 2,
            existential_probability: 0.3,
            seed,
        });
        if !ontorew::core::is_swr(&program) {
            continue;
        }
        let signature = program.signature();
        let predicate = signature.predicates().next().unwrap();
        let vars: Vec<String> = (0..predicate.arity).map(|i| format!("V{i}")).collect();
        let query = parse_query(&format!(
            "q({}) :- {}({})",
            vars.join(", "),
            predicate.name,
            vars.join(", ")
        ))
        .unwrap();
        // Subsumption pruning is O(n²) containment checks over the final UCQ;
        // for this stress test only termination matters, so skip it.
        let rewriting = rewrite(
            &program,
            &query,
            &RewriteConfig::with_depth(20)
                .with_max_queries(20_000)
                .without_pruning(),
        );
        assert!(
            rewriting.complete,
            "SWR program with diverging rewriting (seed {seed}):\n{program}"
        );
        checked += 1;
    }
    assert!(checked >= 3, "too few SWR draws to be meaningful");
}

#[test]
fn rewriting_agrees_with_chase_on_random_swr_programs() {
    for seed in 0..8u64 {
        let program = random_program(&RandomProgramConfig {
            rules: 6,
            predicates: 5,
            max_arity: 2,
            max_body_atoms: 2,
            existential_probability: 0.25,
            seed,
        });
        if !ontorew::core::is_swr(&program) || !ontorew_chase::is_weakly_acyclic(&program) {
            continue;
        }
        let data = random_abox(
            &program,
            &AboxConfig {
                facts: 120,
                constants: 25,
                seed,
            },
        );
        // Boolean query over the first predicate.
        let predicate = program.signature().predicates().next().unwrap();
        let vars: Vec<String> = (0..predicate.arity).map(|i| format!("V{i}")).collect();
        let query =
            parse_query(&format!("q() :- {}({})", predicate.name, vars.join(", "))).unwrap();

        let store = RelationalStore::from_instance(&data);
        let by_rewriting = answer_by_rewriting(&program, &query, &store, &RewriteConfig::default());
        let by_chase = certain_answers(&program, &data, &query, &ChaseConfig::default());
        if by_rewriting.is_exact() && by_chase.complete {
            assert_eq!(
                by_rewriting.answers.as_boolean(),
                by_chase.answers.as_boolean(),
                "disagreement on seed {seed}:\n{program}"
            );
        }
    }
}

#[test]
fn university_obda_scales_and_stays_consistent() {
    let ontology = ontorew::core::examples::university_ontology();
    let data = university_abox(200, 10, 30, 9);
    let system = ObdaSystem::new(ontology, data);
    for text in [
        "q(X) :- person(X)",
        "q(T) :- teaches(T, C), attends(S, C)",
        "q(S, P) :- advisedBy(S, P), professor(P)",
    ] {
        let query = parse_query(text).unwrap();
        let report = ontorew::obda::cross_check(&system, &query);
        assert!(report.is_consistent(), "{text}: {report:?}");
    }
}

#[test]
fn sql_rendering_of_a_real_rewriting_mentions_every_relation() {
    let program = chain_program(3);
    let query = parse_query("q(X) :- p3(X)").unwrap();
    let rewriting = rewrite(&program, &query, &RewriteConfig::default());
    let sql = ontorew::storage::ucq_to_sql(&rewriting.ucq);
    for relation in ["p0", "p1", "p2", "p3"] {
        assert!(
            sql.contains(&format!("FROM {relation} AS")),
            "missing {relation} in:\n{sql}"
        );
    }
    assert_eq!(sql.matches("SELECT DISTINCT").count(), 4);
}
