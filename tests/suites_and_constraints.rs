//! Cross-crate integration tests for the workload suites, the extended class
//! landscape, constraint checking and the instrumented evaluator.

use ontorew::core::{classify, ExtendedOntology};
use ontorew::model::{parse_query, Instance};
use ontorew::obda::{
    check_constraints, cross_check, ConstraintSet, Egd, NegativeConstraint, ObdaSystem, Strategy,
};
use ontorew::rewrite::{rewrite, RewriteConfig};
use ontorew::storage::{evaluate_cq_instrumented, EvalConfig, RelationalStore, StoreStatistics};
use ontorew::workloads::{
    lubm_style_abox, lubm_style_ontology, lubm_style_queries, sensor_network_abox,
    sensor_network_ontology, sensor_network_queries, supply_chain_abox, supply_chain_ontology,
};

#[test]
fn lubm_suite_is_fo_rewritable_and_both_strategies_agree() {
    let ontology = lubm_style_ontology();
    let report = classify(&ontology);
    assert!(report.linear);
    assert!(report.swr.is_swr);
    assert!(report.fo_rewritable());

    let system = ObdaSystem::new(ontology, lubm_style_abox(80, 8, 16, 5));
    for query in lubm_style_queries() {
        let check = cross_check(&system, &query);
        assert!(check.is_consistent(), "query {query}: {check:?}");
    }
}

#[test]
fn sensor_suite_is_swr_despite_joins() {
    let ontology = sensor_network_ontology();
    let report = classify(&ontology);
    assert!(!report.linear, "the sensor suite has join rules");
    assert!(report.swr.is_swr);
    assert!(report.fo_rewritable());

    let system = ObdaSystem::new(ontology, sensor_network_abox(30, 6, 500, 9));
    for query in sensor_network_queries() {
        let result = system.answer(&query, Strategy::Auto);
        assert!(result.exact, "query {query} should be answered exactly");
        let check = cross_check(&system, &query);
        assert!(check.is_consistent(), "query {query}: {check:?}");
    }
}

#[test]
fn sensor_queries_have_terminating_rewritings() {
    let ontology = sensor_network_ontology();
    for query in sensor_network_queries() {
        let rewriting = rewrite(&ontology, &query, &RewriteConfig::default());
        assert!(rewriting.complete, "rewriting of {query} must terminate");
        assert!(!rewriting.ucq.is_empty());
    }
}

#[test]
fn supply_chain_suite_requires_a_fallback_strategy() {
    let ontology = supply_chain_ontology();
    let report = classify(&ontology);
    assert!(
        !report.fo_rewritable(),
        "the transitive part-of rule must not be certified FO-rewritable: {:?}",
        report.member_classes()
    );

    // The bounded rewriting is sound: everything it finds is also found by
    // the chase (run on the same data).
    let data = supply_chain_abox(60, 2);
    let system = ObdaSystem::new(ontology, data);
    let query = parse_query("q(X) :- component(X)").unwrap();
    let by_rewriting = system.answer(&query, Strategy::Rewriting);
    let by_chase = system.answer(&query, Strategy::Materialization);
    for row in by_rewriting.answers.iter() {
        assert!(
            by_chase.answers.contains(row),
            "unsound rewriting answer {row:?}"
        );
    }
}

#[test]
fn constraint_checking_over_the_lubm_suite() {
    let ontology = lubm_style_ontology();
    let mut data = lubm_style_abox(40, 4, 8, 11);
    let system = ObdaSystem::new(ontology.clone(), data.clone());

    // Students and professors both become persons, but nothing forces an
    // individual into both roles in the generated data.
    let mut constraints = ConstraintSet::new();
    constraints.push_nc(NegativeConstraint::parse("student(X), professor(X)").unwrap());
    constraints.push_egd(Egd::functional("worksFor"));
    let report = check_constraints(&system, &constraints, Strategy::Auto);
    assert!(
        report.is_consistent(),
        "violations: {:?}",
        report.violations
    );

    // Injecting a conflicting assertion is detected through inference
    // (graduateStudent ⊑ student, fullProfessor ⊑ professor).
    data.insert_fact("graduateStudent", &["prof0"]);
    let dirty = ObdaSystem::new(ontology, data);
    let report = check_constraints(&dirty, &constraints, Strategy::Auto);
    assert!(!report.is_consistent());
}

#[test]
fn extended_dl_ontologies_classify_and_answer_end_to_end() {
    let ontology = ExtendedOntology::new()
        .subclass("robot", "device")
        .some_values("robot", "controlledBy", "controller")
        .some_values_domain("maintains", "robot", "technician")
        .role_chain("controlledBy", "locatedIn", "operatesIn")
        .to_tgds();
    let report = classify(&ontology);
    assert!(
        report.fo_rewritable(),
        "classes: {:?}",
        report.member_classes()
    );

    let mut data = Instance::new();
    data.insert_fact("robot", &["r2"]);
    data.insert_fact("maintains", &["mika", "r2"]);
    let system = ObdaSystem::new(ontology, data);
    let technicians = system.answer(
        &parse_query("q(X) :- technician(X)").unwrap(),
        Strategy::Auto,
    );
    assert!(technicians.answers.contains_constants(&["mika"]));
    let devices = system.answer(&parse_query("q(X) :- device(X)").unwrap(), Strategy::Auto);
    assert!(devices.answers.contains_constants(&["r2"]));
}

#[test]
fn instrumented_evaluation_matches_default_evaluation_on_suite_queries() {
    let ontology = sensor_network_ontology();
    let store = RelationalStore::from_instance(&sensor_network_abox(25, 5, 400, 13));
    let stats = StoreStatistics::collect(&store);
    for query in sensor_network_queries() {
        let rewriting = rewrite(&ontology, &query, &RewriteConfig::default());
        for disjunct in rewriting.ucq.iter() {
            let baseline = ontorew::storage::evaluate_cq(&store, disjunct);
            for config in [
                EvalConfig {
                    reorder_atoms: false,
                    use_indexes: false,
                    ..EvalConfig::default()
                },
                EvalConfig {
                    statistics: Some(&stats),
                    ..EvalConfig::default()
                },
            ] {
                let (answers, counters) = evaluate_cq_instrumented(&store, disjunct, &config);
                assert_eq!(answers, baseline, "config {config:?} on {disjunct}");
                assert_eq!(counters.atoms, disjunct.len());
            }
        }
    }
}
