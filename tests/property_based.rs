//! Property-based tests (proptest) over the core data structures and the
//! reasoning invariants that the paper's results rely on.

use ontorew::chase::{certain_answers, chase, ChaseConfig};
use ontorew::model::prelude::*;
use ontorew::rewrite::{answer_by_rewriting, RewriteConfig};
use ontorew::storage::RelationalStore;
use ontorew::unify;
use proptest::prelude::*;

/// Strategy: a small vocabulary of variable names.
fn variable_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["X", "Y", "Z", "W", "U", "V"]).prop_map(|s| s.to_string())
}

/// Strategy: a small vocabulary of constant names.
fn constant_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "c", "d"]).prop_map(|s| s.to_string())
}

/// Strategy: a term (variable or constant).
fn term() -> impl Strategy<Value = Term> {
    prop_oneof![
        variable_name().prop_map(|n| Term::variable(&n)),
        constant_name().prop_map(|n| Term::constant(&n)),
    ]
}

/// Strategy: an atom over a small signature (predicates p1/1, p2/2, p3/3).
fn atom() -> impl Strategy<Value = Atom> {
    (1usize..=3, prop::collection::vec(term(), 3)).prop_map(|(arity, terms)| {
        Atom::new(
            &format!("p{arity}"),
            terms.into_iter().take(arity).collect(),
        )
    })
}

/// Strategy: a ground atom.
fn ground_atom() -> impl Strategy<Value = Atom> {
    (1usize..=3, prop::collection::vec(constant_name(), 3)).prop_map(|(arity, names)| {
        Atom::new(
            &format!("p{arity}"),
            names
                .into_iter()
                .take(arity)
                .map(|n| Term::constant(&n))
                .collect(),
        )
    })
}

proptest! {
    /// A most general unifier really unifies: applying it to both atoms gives
    /// syntactically equal atoms.
    #[test]
    fn mgu_unifies(a in atom(), b in atom()) {
        if let Some(mgu) = unify::unify_atoms(&a, &b) {
            prop_assert_eq!(mgu.apply_atom_deep(&a), mgu.apply_atom_deep(&b));
        }
    }

    /// Unification is symmetric in *existence*: a unifier for (a, b) exists
    /// iff one exists for (b, a).
    #[test]
    fn unifiability_is_symmetric(a in atom(), b in atom()) {
        prop_assert_eq!(
            unify::unify_atoms(&a, &b).is_some(),
            unify::unify_atoms(&b, &a).is_some()
        );
    }

    /// Substitution composition law: (s1 ∘ s2)(t) = s2(s1(t)) for single-level
    /// substitutions produced from bindings to ground terms.
    #[test]
    fn substitution_composition(
        bindings1 in prop::collection::vec((variable_name(), constant_name()), 0..4),
        bindings2 in prop::collection::vec((variable_name(), constant_name()), 0..4),
        t in term(),
    ) {
        let s1 = Substitution::from_bindings(
            bindings1.into_iter().map(|(v, c)| (Variable::new(&v), Term::constant(&c))),
        );
        let s2 = Substitution::from_bindings(
            bindings2.into_iter().map(|(v, c)| (Variable::new(&v), Term::constant(&c))),
        );
        let composed = s1.compose(&s2);
        prop_assert_eq!(composed.apply_term(t), s2.apply_term(s1.apply_term(t)));
    }

    /// Freezing a query body yields a ground instance of the same size (up to
    /// duplicate atoms).
    #[test]
    fn freezing_grounds_atoms(atoms in prop::collection::vec(atom(), 1..5)) {
        let frozen = unify::freeze_atoms(&atoms);
        prop_assert!(frozen.atoms().all(|a| a.is_ground()));
        prop_assert!(frozen.len() <= atoms.len());
    }

    /// Every query is contained in itself, and containment is reflexive under
    /// variable renaming.
    #[test]
    fn containment_is_reflexive(atoms in prop::collection::vec(atom(), 1..4)) {
        let vars = ontorew_model::atom::variables_of(&atoms);
        let answer = vars.first().copied().into_iter().collect::<Vec<_>>();
        let q = ConjunctiveQuery::new(answer, atoms);
        prop_assert!(unify::is_contained_in(&q, &q));
        prop_assert!(unify::is_contained_in(&q.freshen(), &q));
    }

    /// Minimization preserves equivalence and never grows the body.
    #[test]
    fn minimization_preserves_equivalence(atoms in prop::collection::vec(atom(), 1..4)) {
        let q = ConjunctiveQuery::boolean(atoms);
        let m = unify::minimize(&q);
        prop_assert!(m.body.len() <= q.body.len());
        prop_assert!(unify::are_equivalent(&q, &m));
    }

    /// The instance insert/contains contract: everything inserted is found,
    /// and the size equals the number of distinct atoms.
    #[test]
    fn instance_round_trip(facts in prop::collection::vec(ground_atom(), 0..20)) {
        let instance: Instance = facts.clone().into_iter().collect();
        for f in &facts {
            prop_assert!(instance.contains(f));
        }
        let distinct: std::collections::BTreeSet<_> = facts.into_iter().collect();
        prop_assert_eq!(instance.len(), distinct.len());
    }

    /// The chase of a Datalog (full) program is a model of the program and a
    /// superset of the input.
    #[test]
    fn chase_of_full_programs_is_a_model(facts in prop::collection::vec(ground_atom(), 1..15)) {
        let program = parse_program(
            "[R1] p2(X, Y) -> p1(X).\n\
             [R2] p3(X, Y, Z) -> p2(X, Z).\n\
             [R3] p2(X, Y) -> p2(Y, X).",
        ).unwrap();
        let data: Instance = facts.into_iter().collect();
        let result = chase(&program, &data, &ChaseConfig::default());
        prop_assert!(result.is_universal_model());
        prop_assert!(result.instance.contains_instance(&data));
        prop_assert!(ontorew_chase::is_model(&program, &result.instance));
    }

    /// Parser round-trip: rendering a parsed program and re-parsing it yields
    /// a program of the same shape.
    #[test]
    fn parser_round_trip(n_rules in 1usize..5) {
        // Build a small random-ish but valid program text.
        let mut text = String::new();
        for i in 0..n_rules {
            text.push_str(&format!("[T{i}] p2(X, Y), p1(Y) -> p2(Y, Z{i}).\n"));
        }
        let parsed = parse_program(&text).unwrap();
        let reparsed = parse_program(&parsed.to_string()).unwrap();
        prop_assert_eq!(parsed.len(), reparsed.len());
        prop_assert_eq!(parsed.total_atoms(), reparsed.total_atoms());
    }

    /// Rewriting soundness on the linear chain family: for every chain length
    /// and every fact position, the rewriting-based answer equals the
    /// chase-based certain answer.
    #[test]
    fn chain_rewriting_matches_chase(n in 1usize..6, seed_level in 0usize..6) {
        let level = seed_level.min(n);
        let program = ontorew::workloads::chain_program(n);
        let query = parse_query(&format!("q(X) :- p{n}(X)")).unwrap();
        let mut data = Instance::new();
        data.insert_fact(&format!("p{level}"), &["v"]);
        let store = RelationalStore::from_instance(&data);
        let rewriting = answer_by_rewriting(&program, &query, &store, &RewriteConfig::default());
        let chase_answers = certain_answers(&program, &data, &query, &ChaseConfig::default());
        prop_assert!(rewriting.is_exact());
        prop_assert!(chase_answers.complete);
        prop_assert_eq!(rewriting.answers.len(), chase_answers.answers.len());
    }

    /// SWR membership is invariant under rule reordering (it is a property of
    /// the *set* of TGDs).
    #[test]
    fn swr_is_order_invariant(shuffle_seed in 0u64..32) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let program = ontorew::core::examples::example1();
        let mut rules: Vec<_> = program.rules().to_vec();
        let mut rng = rand::rngs::StdRng::seed_from_u64(shuffle_seed);
        rules.shuffle(&mut rng);
        let shuffled = TgdProgram::from_rules(rules);
        prop_assert_eq!(
            ontorew::core::is_swr(&program),
            ontorew::core::is_swr(&shuffled)
        );
    }
}
