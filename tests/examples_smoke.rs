//! Smoke test: every example binary builds, runs to completion and prints
//! something. Examples are living documentation; this keeps them from
//! silently rotting when APIs change.
//!
//! Each test shells out to `cargo run --example <name>` (using the same
//! `cargo` that is running this test), so a broken example fails `cargo test`
//! rather than only failing whoever next copies the snippet.

use std::path::Path;
use std::process::Command;

/// Runs one example to completion and returns its stdout.
fn run_example(name: &str) -> String {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--example", name])
        .current_dir(manifest_dir)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    assert!(
        !stdout.trim().is_empty(),
        "example {name} succeeded but printed nothing"
    );
    stdout
}

#[test]
fn example_quickstart_runs() {
    let out = run_example("quickstart");
    assert!(out.contains("sara"), "quickstart output changed: {out}");
}

#[test]
fn example_classify_ontology_runs() {
    run_example("classify_ontology");
}

#[test]
fn example_dl_modeling_runs() {
    run_example("dl_modeling");
}

#[test]
fn example_rewrite_explain_runs() {
    run_example("rewrite_explain");
}

#[test]
fn example_sensor_pipeline_runs() {
    let out = run_example("sensor_pipeline");
    assert!(
        out.contains("consistent = true"),
        "sensor_pipeline no longer reports a consistent pipeline: {out}"
    );
}

#[test]
fn example_query_server_runs() {
    let out = run_example("query_server");
    assert!(
        out.contains("cache hit") && out.contains("server stopped"),
        "query_server no longer demonstrates cache hits and a clean shutdown: {out}"
    );
}

#[test]
fn example_planner_explain_runs() {
    let out = run_example("planner_explain");
    for expected in [
        "plan: hybrid",
        "plan: chase",
        "plan: rewrite",
        "plan: besteffort",
        "strategy=Materialization exact=true",
    ] {
        assert!(
            out.contains(expected),
            "planner_explain no longer prints {expected:?}: {out}"
        );
    }
}

#[test]
fn example_university_obda_runs() {
    let out = run_example("university_obda");
    assert!(
        out.contains("agreed on every query"),
        "university_obda no longer reports rewriting/materialization agreement: {out}"
    );
}
