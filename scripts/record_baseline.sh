#!/usr/bin/env bash
# Regenerates a benchmark snapshot from the experiment harness.
#
# Usage: scripts/record_baseline.sh [output-file]
#
# Runs every experiment of crates/bench (E1-E19) in release mode through
# `run_experiments --json` (NDJSON, one object per experiment — no scraping
# of the human-formatted tables) and wraps the reports into a JSON document
# with machine metadata, so future perf PRs can diff their numbers against
# the checked-in baseline.
#
# Per-PR snapshots are recorded next to BENCH_baseline.json under a PR
# suffix, e.g. `scripts/record_baseline.sh BENCH_pr3.json` for the PR that
# added the serving layer (registering E12, the serve-throughput
# experiment). Compare rows of the same experiment across snapshots recorded
# on the same machine.
set -euo pipefail

out="${1:-BENCH_baseline.json}"
repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

report="$(mktemp)"
trap 'rm -f "$report"' EXIT

cargo run -q --release -p ontorew-bench --bin run_experiments -- --json > "$report"

python3 - "$report" "$out" <<'PY'
import json
import platform
import subprocess
import sys

report_path, out_path = sys.argv[1], sys.argv[2]
experiments = {}
with open(report_path) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        experiments[obj["id"]] = obj["report"]

rustc = subprocess.run(
    ["rustc", "--version"], capture_output=True, text=True, check=True
).stdout.strip()

doc = {
    "_comment": (
        "Benchmark baseline recorded by scripts/record_baseline.sh. "
        "Numbers are wall-clock and machine-dependent; compare trends, "
        "not absolutes, and re-record when hardware changes."
    ),
    "rustc": rustc,
    "platform": platform.platform(),
    "profile": "release",
    "experiments": experiments,
}

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} with {len(experiments)} experiments")
PY
