#!/usr/bin/env bash
# Regenerates a benchmark snapshot from the experiment harness.
#
# Usage: scripts/record_baseline.sh [output-file]
#
# Runs every experiment of crates/bench (E1-E11) in release mode and wraps
# the per-experiment reports into a JSON document with machine metadata, so
# future perf PRs can diff their numbers against the checked-in baseline.
#
# Per-PR snapshots are recorded next to BENCH_baseline.json under a PR
# suffix, e.g. `scripts/record_baseline.sh BENCH_pr2.json` for the PR that
# made the chase semi-naive (re-running E8 and adding the E11 naive-vs-semi
# scaling table). Compare rows of the same experiment across snapshots
# recorded on the same machine.
set -euo pipefail

out="${1:-BENCH_baseline.json}"
repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

report="$(mktemp)"
trap 'rm -f "$report"' EXIT

cargo run -q --release -p ontorew-bench --bin run_experiments > "$report"

python3 - "$report" "$out" <<'PY'
import json
import platform
import re
import subprocess
import sys

report_path, out_path = sys.argv[1], sys.argv[2]
with open(report_path) as f:
    text = f.read()

# Reports are separated by blank lines before each "E<n> ..." header.
experiments = {}
current = None
for line in text.splitlines():
    header = re.match(r"^(E\d+)\b", line)
    if header:
        current = header.group(1)
        experiments[current] = []
    if current is not None:
        experiments[current].append(line)

rustc = subprocess.run(
    ["rustc", "--version"], capture_output=True, text=True, check=True
).stdout.strip()

doc = {
    "_comment": (
        "Benchmark baseline recorded by scripts/record_baseline.sh. "
        "Numbers are wall-clock and machine-dependent; compare trends, "
        "not absolutes, and re-record when hardware changes."
    ),
    "rustc": rustc,
    "platform": platform.platform(),
    "profile": "release",
    "experiments": {
        key: "\n".join(lines).strip() for key, lines in experiments.items()
    },
}

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} with {len(experiments)} experiments")
PY
