#!/usr/bin/env bash
# Smoke-test the TCP query server end to end.
#
# Usage: scripts/serve_smoke.sh [port]
#
# Phase 1 (in-memory): builds the server and the bench client in release
# mode, starts the server on the given port (default 7411) with the
# university ontology and an empty store, runs the scripted exchange
# (`load_gen smoke`: PREPARE/QUERY/INSERT/QUERY, an EXPLAIN plan dump, a
# two-tenant TENANT CREATE/USE/DROP round trip, an insert-heavy phase — a
# 24-commit loop with interleaved queries that exercises the copy-on-write
# O(batch) epoch publish and the incremental materialization path over the
# wire — a WHY/WHY NOT explanation round trip against the derivation graph,
# a delete-heavy phase that retracts every bulk insert again through
# the DRed path, and a goal-driven phase on a registrar tenant — the
# selective query's EXPLAIN must report the magic-sets plan with its
# adorned-program dump and plan_plans_total{kind="goal_driven"} must be
# non-zero in METRICS; exact answer counts, epochs, retraction counters, cache
# behavior and tenant isolation are all asserted, and a final METRICS
# scrape fails if the core telemetry families — queries_total,
# chase_rounds_total, plan_plans_total, the per-tenant request histograms —
# are absent or zero), and lets the exchange's final SHUTDOWN stop the
# server. The phase-1 server also runs with `--slow-query-ms` and
# `--trace-ring` so the observability flags are exercised every CI run.
#
# Phase 2 (durable): starts the server again with `--data-dir` on a fresh
# temporary directory and `--fsync always` (so every commit observably
# lands in wal_fsync_seconds), seeds a deterministic two-tenant workload
# (`load_gen persist-seed`), kills the server with SIGKILL mid-service,
# restarts it from the same data directory, and asserts every acknowledged
# commit survived (`load_gen persist-verify`: answer counts, epochs, the
# tenant list, the recovery counter, and a METRICS scrape asserting the
# wal_appends_total / wal_fsync_seconds / recoveries_total families are
# non-zero), ending with a clean SHUTDOWN.
#
# Fails if any server does not come up, any check fails, or a server does
# not exit cleanly when asked.
set -euo pipefail

port="${1:-7411}"
repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

cargo build --release -q -p ontorew-serve -p ontorew-bench --bins

log="$(mktemp)"
data_dir="$(mktemp -d)"
cleanup() {
    if [[ -n "${server_pid:-}" ]] && kill -0 "$server_pid" 2>/dev/null; then
        kill "$server_pid" 2>/dev/null || true
    fi
    rm -f "$log"
    rm -rf "$data_dir"
}
trap cleanup EXIT

# Start the server with the given extra flags, truncating the log, and wait
# (up to ~10s) for the readiness line. Sets $server_pid.
start_server() {
    : >"$log"
    target/release/ontorew-server --addr "127.0.0.1:$port" --students 0 "$@" >>"$log" 2>&1 &
    server_pid=$!
    for _ in $(seq 1 100); do
        if grep -q "listening on" "$log"; then
            return 0
        fi
        if ! kill -0 "$server_pid" 2>/dev/null; then
            echo "server exited before becoming ready:" >&2
            cat "$log" >&2
            exit 1
        fi
        sleep 0.1
    done
    echo "server never became ready" >&2
    cat "$log" >&2
    exit 1
}

# Wait (up to ~10s) for the server to exit on its own after a SHUTDOWN.
wait_shutdown() {
    for _ in $(seq 1 100); do
        if ! kill -0 "$server_pid" 2>/dev/null; then
            wait "$server_pid" 2>/dev/null || true
            unset server_pid
            return 0
        fi
        sleep 0.1
    done
    echo "server did not shut down after SHUTDOWN" >&2
    exit 1
}

# ---- Phase 1: in-memory scripted exchange --------------------------------
start_server --slow-query-ms 500 --trace-ring 32
target/release/load_gen smoke --addr "127.0.0.1:$port"
wait_shutdown
echo "serve smoke: server shut down cleanly"

# ---- Phase 2: durability — seed, SIGKILL, restart, verify ----------------
start_server --data-dir "$data_dir" --fsync always
target/release/load_gen persist-seed --addr "127.0.0.1:$port"
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
unset server_pid

start_server --data-dir "$data_dir" --fsync always
grep -q "recovery #" "$log" || {
    echo "restarted server did not report a recovery:" >&2
    cat "$log" >&2
    exit 1
}
target/release/load_gen persist-verify --addr "127.0.0.1:$port"
wait_shutdown
echo "serve smoke: crash-recovery phase survived SIGKILL"
