#!/usr/bin/env bash
# Smoke-test the TCP query server end to end.
#
# Usage: scripts/serve_smoke.sh [port]
#
# Builds the server and the bench client in release mode, starts the server
# on the given port (default 7411) with the university ontology and an empty
# store, runs the scripted exchange (`load_gen smoke`: PREPARE/QUERY/INSERT/
# QUERY, an EXPLAIN plan dump, a two-tenant TENANT CREATE/USE/DROP round
# trip, an insert-heavy phase — a 24-commit loop with interleaved queries
# that exercises the copy-on-write O(batch) epoch publish and the
# incremental materialization path over the wire — a WHY/WHY NOT
# explanation round trip against the derivation graph, and a delete-heavy
# phase that retracts every bulk insert again through the DRed path; exact
# answer counts, epochs, retraction counters, cache behavior and tenant
# isolation are all asserted), and lets the exchange's final SHUTDOWN stop
# the server. Fails if the server does not come up, any check fails, or the
# server does not exit cleanly.
set -euo pipefail

port="${1:-7411}"
repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

cargo build --release -q -p ontorew-serve -p ontorew-bench --bins

log="$(mktemp)"
cleanup() {
    if [[ -n "${server_pid:-}" ]] && kill -0 "$server_pid" 2>/dev/null; then
        kill "$server_pid" 2>/dev/null || true
    fi
    rm -f "$log"
}
trap cleanup EXIT

target/release/ontorew-server --addr "127.0.0.1:$port" --students 0 >"$log" 2>&1 &
server_pid=$!

# Wait (up to ~10s) for the readiness line.
for _ in $(seq 1 100); do
    if grep -q "listening on" "$log"; then
        break
    fi
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "server exited before becoming ready:" >&2
        cat "$log" >&2
        exit 1
    fi
    sleep 0.1
done
grep -q "listening on" "$log" || { echo "server never became ready" >&2; cat "$log" >&2; exit 1; }

target/release/load_gen smoke --addr "127.0.0.1:$port"

# The smoke exchange ends with SHUTDOWN; the server must exit on its own.
for _ in $(seq 1 100); do
    if ! kill -0 "$server_pid" 2>/dev/null; then
        wait "$server_pid" 2>/dev/null || true
        unset server_pid
        echo "serve smoke: server shut down cleanly"
        exit 0
    fi
    sleep 0.1
done
echo "server did not shut down after SHUTDOWN" >&2
exit 1
