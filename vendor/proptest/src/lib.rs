//! Offline mini-proptest.
//!
//! The container this workspace builds in cannot fetch the real `proptest`
//! from crates.io, so this crate re-implements the subset its property suites
//! use:
//!
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer ranges,
//!   tuples and boxed strategies;
//! * [`collection::vec`] and [`sample::select`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`]
//!   and [`prop_assume!`] macros.
//!
//! Differences from real proptest, deliberately accepted: cases are generated
//! from a fixed per-test seed (fully deterministic across runs), there is no
//! shrinking (a failure reports the generated inputs via the assertion
//! message instead of a minimized counterexample), and the case count is a
//! compile-time constant ([`test_runner::CASES`]) rather than configurable.

#![warn(missing_docs)]

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking; a strategy
    /// simply produces a value from the test rng.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Uniform choice among boxed alternative strategies (see [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof!
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// An empty union; populate with [`Union::or`].
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Union { arms: Vec::new() }
        }

        /// Adds an alternative.
        pub fn or(mut self, s: impl Strategy<Value = T> + 'static) -> Self {
            self.arms.push(Box::new(s));
            self
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
            let i = rng.rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A collection-size specification: an exact size or a size range.
    ///
    /// Mirrors proptest's `SizeRange` so call sites can pass `3`, `0..20` or
    /// `1..=4` for the length argument of [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        length: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `length` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, length: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            length: length.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.gen_range(self.length.lo..self.length.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies that sample from explicit value lists.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy returned by [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Picks uniformly among `options` (which must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.rng.gen_range(0..self.options.len());
            self.options[i].clone()
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] expansion.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Number of cases each property runs.
    pub const CASES: usize = 64;

    /// The rng handed to strategies. Deterministic per test name.
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// Creates a deterministic rng whose stream depends on `name`
        /// (so different properties exercise different data).
        pub fn deterministic(name: &str) -> TestRng {
            // FNV-1a over the test path gives a stable per-test seed.
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(seed),
            }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// An assertion failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module alias so `prop::collection::vec` etc. resolve, as in real
    /// proptest's prelude.
    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

/// Defines property tests.
///
/// Accepts the real-proptest surface used in this workspace:
///
/// ```ignore
/// proptest! {
///     /// docs
///     #[test]
///     fn my_property(x in 0usize..10, mut v in prop::collection::vec(0u32..5, 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..$crate::test_runner::CASES {
                    let ($($arg,)+) = (
                        $($crate::strategy::Strategy::generate(&($strat), &mut rng),)+
                    );
                    let outcome = (move ||
                        -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            $crate::test_runner::CASES,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// This mini-proptest counts an assumed-away case as passing (real proptest
/// re-draws; without shrinking the distinction is immaterial).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice among alternative strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($strat))+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_word() -> impl Strategy<Value = String> {
        prop::sample::select(vec!["a", "b", "c"]).prop_map(String::from)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 2usize..9) {
            prop_assert!((2..9).contains(&x));
        }

        #[test]
        fn tuples_and_vecs_compose(
            (w, v) in (small_word(), prop::collection::vec(0u32..5, 1..4)),
        ) {
            prop_assert!(["a", "b", "c"].contains(&w.as_str()));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_picks_each_arm(mut tag in prop_oneof![0usize..1, 5usize..6]) {
            tag += 1;
            prop_assert!(tag == 1 || tag == 6);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_rng_is_stable() {
        use crate::strategy::Strategy;
        let s = 0usize..1000;
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
