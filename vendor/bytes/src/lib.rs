//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset used by this workspace: [`Bytes`] (a cheaply clonable,
//! immutable, `Arc`-backed byte buffer), [`BytesMut`] (a growable builder that
//! freezes into `Bytes`), and the [`BufMut`] write helpers.

#![warn(missing_docs)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer.
///
/// Clones share the same allocation; equality, ordering and hashing are by
/// byte content, matching the real `bytes::Bytes`.
#[derive(Clone, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0[..] == other.0[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0[..].cmp(&other.0[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty builder with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Appends `data`.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write-side helpers, implemented for [`BytesMut`] and `Vec<u8>`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = BytesMut::with_capacity(9);
        b.put_u8(7);
        b.put_u64_le(0xDEAD_BEEF);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 9);
        assert_eq!(frozen[0], 7);
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&frozen[1..9]);
        assert_eq!(u64::from_le_bytes(raw), 0xDEAD_BEEF);
    }

    #[test]
    fn clones_compare_by_content() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = a.clone();
        let c = Bytes::copy_from_slice(b"abc");
        assert_eq!(a, b);
        assert_eq!(a, c);
    }
}
