//! Offline stand-in for the `serde` crate.
//!
//! The workspace annotates its model types with `#[derive(Serialize,
//! Deserialize)]` and hand-writes one impl pair (for interned symbols), but
//! never actually drives a serializer — there is no `serde_json` in the tree.
//! This stub therefore provides just enough to compile those items: the four
//! core traits with the exact method shapes the hand-written impls use, plus
//! no-op derive macros re-exported from `serde_derive`.
//!
//! If a future PR needs real serialization, replace this stub with the real
//! crate (requires network) or extend the traits and derives here.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A data format that can serialize values (stub subset).
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error;

    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;

    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
}

/// A value that can be serialized (stub subset).
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can deserialize values (stub subset).
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error;

    /// Deserializes an owned string.
    fn deserialize_string(self) -> Result<String, Self::Error>;

    /// Deserializes a `u64`.
    fn deserialize_u64(self) -> Result<u64, Self::Error>;
}

/// A value that can be deserialized (stub subset).
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for &str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for u64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_string()
    }
}

impl<'de> Deserialize<'de> for u64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_u64()
    }
}

/// `serde::ser` module alias for path compatibility.
pub mod ser {
    pub use crate::{Serialize, Serializer};
}

/// `serde::de` module alias for path compatibility.
pub mod de {
    pub use crate::{Deserialize, Deserializer};
}
