//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with honest but simple
//! wall-clock measurement: each benchmark runs a fixed warm-up followed by
//! timed iterations, and reports the mean time per iteration on stdout.
//! There is no statistical analysis, HTML report, or saved baseline; the
//! numbers are indicative, which is all the offline container can support.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

/// Identifies a parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter, for groups benchmarking one function.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Throughput annotation (recorded but only echoed, not analyzed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it for a warm-up pass and then `iters` timed
    /// iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(name: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed / (b.iters as u32)
    } else {
        Duration::ZERO
    };
    println!("bench: {name:<50} {per_iter:>12.2?}/iter ({iters} iters)");
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size as u64, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count used for each benchmark in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the group's throughput annotation (echoed only).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        println!("bench: {} throughput: {throughput:?}", self.name);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(&full, self.sample_size as u64, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(&full, self.sample_size as u64, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (no-op beyond parity with criterion).
    pub fn finish(self) {}
}

/// Anything usable as a benchmark identifier (`&str`, `String`,
/// [`BenchmarkId`]).
pub struct BenchId(String);

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.id)
    }
}

impl From<&str> for BenchId {
    fn from(id: &str) -> Self {
        BenchId(id.to_owned())
    }
}

impl From<String> for BenchId {
    fn from(id: String) -> Self {
        BenchId(id)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(5);
        group.throughput(Throughput::Elements(3));
        group.bench_with_input(BenchmarkId::new("sum", 3), &3u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| black_box(2 * 2)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
