//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! handful of `parking_lot` APIs the workspace uses are re-implemented here on
//! top of `std::sync`. Semantics match `parking_lot` where it matters for this
//! codebase: `lock()`/`read()`/`write()` return guards directly (poisoning is
//! swallowed, as `parking_lot` has no poisoning).

#![warn(missing_docs)]

use std::sync;

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock with the `parking_lot` API surface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock wrapping `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A mutual-exclusion lock with the `parking_lot` API surface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
