//! No-op `Serialize`/`Deserialize` derive macros for the offline serde stub.
//!
//! The workspace never drives a serializer, so deriving an actual impl is
//! unnecessary — these derives accept the annotation (including `#[serde(...)]`
//! helper attributes) and expand to nothing. Types relying on the derive do
//! not implement the stub traits; only hand-written impls do.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
