//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset the workload generators use: [`rngs::StdRng`] seeded
//! via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen_range` (over half-open and inclusive integer ranges) and `gen_bool`.
//! The generator is SplitMix64 — statistically fine for synthetic-workload
//! generation, deterministic per seed, and dependency-free. Streams differ
//! from the real `StdRng` (ChaCha12), so seeds produce different (but still
//! reproducible) workloads than upstream rand would.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Rngs that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Creates an rng deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                if span > u64::MAX as u128 {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start + (reduce(rng.next_u64(), span as u64) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, u16, u8);

/// Maps a random `u64` into `[0, span)` (multiply-shift reduction).
fn reduce(value: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((value as u128 * span as u128) >> 64) as u64
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 random bits → uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait providing random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Concrete rng implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard rng of this stub: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1..=4u64);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((700..1300).contains(&hits), "suspicious bias: {hits}");
    }
}
