//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the scoped-thread API used by this workspace is provided, implemented
//! on top of `std::thread::scope` (stable since Rust 1.63). The call shape
//! matches `crossbeam::thread::scope`: the closure receives a scope handle
//! whose `spawn` takes a closure that itself receives the scope (ignored by
//! all call sites here), and `scope` returns a `Result` like crossbeam does.

#![warn(missing_docs)]

/// Scoped threads (crossbeam-utils compatible subset).
pub mod thread {
    use std::thread as std_thread;

    /// Handle passed to the [`scope`] closure; spawns scoped workers.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (`Err` if the
        /// thread panicked).
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The worker closure receives the scope
        /// handle for nested spawning, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Runs `f` with a scope in which scoped threads can be spawned; all
    /// spawned threads are joined before `scope` returns.
    ///
    /// Unlike crossbeam, a panicking child propagates at the end of
    /// `std::thread::scope`, so the `Err` branch here is never produced — the
    /// `Result` wrapper exists only for call-site compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join() {
        let data = [1, 2, 3, 4];
        let total: usize = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<usize>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
